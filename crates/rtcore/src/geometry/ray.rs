//! Rays and ray intervals.

use super::{Point3, Vec3, EPSILON_RAY_TMAX};

/// The parametric validity interval `[t_min, t_max]` of a ray.
///
/// A point on the ray is `origin + t * direction` with
/// `t ∈ [t_min, t_max]`, matching the definition in Section II-B2 of the
/// paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayInterval {
    /// Start of the valid parameter range.
    pub t_min: f32,
    /// End of the valid parameter range.
    pub t_max: f32,
}

impl RayInterval {
    /// Construct an interval.
    #[inline]
    pub const fn new(t_min: f32, t_max: f32) -> Self {
        RayInterval { t_min, t_max }
    }

    /// The infinitesimal interval `[0, 1e-16]` used by the neighbour-search
    /// reduction (Algorithm 2, Line 4).
    #[inline]
    pub const fn epsilon() -> Self {
        RayInterval {
            t_min: 0.0,
            t_max: EPSILON_RAY_TMAX,
        }
    }

    /// True if `t` lies inside the interval.
    #[inline]
    pub fn contains(&self, t: f32) -> bool {
        t >= self.t_min && t <= self.t_max
    }

    /// Length of the interval (clamped at zero).
    #[inline]
    pub fn length(&self) -> f32 {
        (self.t_max - self.t_min).max(0.0)
    }
}

/// A ray: origin, direction and validity interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin (the query point, for neighbour searches).
    pub origin: Point3,
    /// Ray direction.  For 2-D datasets the paper fixes this to +z.
    pub direction: Vec3,
    /// Valid parameter range.
    pub interval: RayInterval,
}

impl Ray {
    /// Construct a general ray.
    #[inline]
    pub fn new(origin: Point3, direction: Vec3, t_min: f32, t_max: f32) -> Self {
        Ray {
            origin,
            direction,
            interval: RayInterval::new(t_min, t_max),
        }
    }

    /// Construct the infinitesimally short query ray of the paper's
    /// neighbour-search reduction: origin at the query point, direction +z,
    /// interval `[0, 1e-16]`.
    #[inline]
    pub fn epsilon_ray(origin: Point3) -> Self {
        Ray {
            origin,
            direction: Vec3::UNIT_Z,
            interval: RayInterval::epsilon(),
        }
    }

    /// The point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f32) -> Point3 {
        self.origin + self.direction * t
    }

    /// True if this is a degenerate (point-like) query ray whose extent is at
    /// most the epsilon interval.  Such rays reduce every intersection test
    /// to a containment test at the origin.
    #[inline]
    pub fn is_point_query(&self) -> bool {
        self.interval.t_max <= EPSILON_RAY_TMAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let i = RayInterval::new(1.0, 3.0);
        assert!(i.contains(1.0));
        assert!(i.contains(2.5));
        assert!(!i.contains(0.5));
        assert!(!i.contains(3.5));
        assert_eq!(i.length(), 2.0);
        assert_eq!(RayInterval::new(3.0, 1.0).length(), 0.0);
    }

    #[test]
    fn epsilon_interval_matches_paper() {
        let e = RayInterval::epsilon();
        assert_eq!(e.t_min, 0.0);
        assert_eq!(e.t_max, EPSILON_RAY_TMAX);
    }

    #[test]
    fn ray_at_parameter() {
        let r = Ray::new(
            Point3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 2.0, 0.0),
            0.0,
            10.0,
        );
        assert_eq!(r.at(0.0), Point3::new(1.0, 0.0, 0.0));
        assert_eq!(r.at(1.5), Point3::new(1.0, 3.0, 0.0));
    }

    #[test]
    fn epsilon_ray_is_point_query_with_unit_z_direction() {
        let q = Point3::new(4.0, 5.0, 0.0);
        let r = Ray::epsilon_ray(q);
        assert!(r.is_point_query());
        assert_eq!(r.origin, q);
        assert_eq!(r.direction, Vec3::UNIT_Z);
        let long = Ray::new(q, Vec3::UNIT_Z, 0.0, 1.0);
        assert!(!long.is_point_query());
    }
}

//! BVH builders.

use crate::bvh::{Bvh, BvhNode, NodeKind};
use crate::error::{Error, Result};
use crate::geometry::{
    morton_encode_3d, radix_sort_by_code_parallel, Aabb, MortonCode, SendPtr, Sphere,
};
use crate::hardware::sat_bump;
use crate::hardware::WorkCounters;
use crate::telemetry::{PhaseKind, Telemetry};
use rayon::prelude::*;

/// Identifies which construction algorithm produced a [`Bvh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuilderKind {
    /// Morton-curve linear BVH (GPU-style fast build).
    Lbvh,
    /// Binned Surface Area Heuristic build.
    BinnedSah,
    /// Longest-axis median split.
    MedianSplit,
}

impl std::fmt::Display for BuilderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuilderKind::Lbvh => write!(f, "LBVH"),
            BuilderKind::BinnedSah => write!(f, "binned-SAH"),
            BuilderKind::MedianSplit => write!(f, "median-split"),
        }
    }
}

/// How much logical parallelism an acceleration-structure build may use.
///
/// The value is a *chunk count*, not a physical thread count: the thread
/// pool runs `min(cores, chunks)` workers, and every parallel build stage is
/// written so its output depends only on the chunk decomposition — which is
/// itself chosen so the result is bit-identical to the sequential build.
/// `Sequential` is the default everywhere, so existing counter-identity
/// guarantees are unaffected unless a caller opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BuildParallelism {
    /// Single-threaded build (the default; exact legacy code path).
    #[default]
    Sequential,
    /// One logical chunk per available core.
    Auto,
    /// A fixed logical chunk count (clamped to at least 1).
    Threads(usize),
}

impl BuildParallelism {
    /// The logical worker count this setting resolves to.
    pub fn resolved(self) -> usize {
        match self {
            BuildParallelism::Sequential => 1,
            BuildParallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            BuildParallelism::Threads(t) => t.max(1),
        }
    }

    /// Derive the parallelism each of `shard_count` nested builds may use
    /// when the shards themselves already run in parallel: the budget is
    /// divided so the total stays at `self` and the pool is never
    /// oversubscribed.  With at least as many shards as workers this
    /// degrades to `Sequential` per shard (the pre-existing behaviour).
    pub fn for_nested(self, shard_count: usize) -> BuildParallelism {
        let per_shard = self.resolved() / shard_count.max(1);
        if per_shard <= 1 {
            BuildParallelism::Sequential
        } else {
            BuildParallelism::Threads(per_shard)
        }
    }
}

/// Common interface of every builder.
pub trait BvhBuilder: Sync {
    /// Build a hierarchy over the given primitives.
    ///
    /// Fails with [`Error::EmptyScene`] if `prims` is empty and
    /// [`Error::InvalidPrimitive`] if any primitive has non-finite geometry
    /// or a negative radius.
    fn build(&self, prims: Vec<Sphere>) -> Result<Bvh>;

    /// The kind tag recorded in the produced [`Bvh`].
    fn kind(&self) -> BuilderKind;
}

/// Validate primitives before building.
pub(crate) fn validate_prims(prims: &[Sphere]) -> Result<()> {
    if prims.is_empty() {
        return Err(Error::EmptyScene);
    }
    for (i, s) in prims.iter().enumerate() {
        if !s.center.is_finite() {
            return Err(Error::InvalidPrimitive {
                index: i,
                reason: "non-finite sphere centre".into(),
            });
        }
        if !s.radius.is_finite() || s.radius < 0.0 {
            return Err(Error::InvalidPrimitive {
                index: i,
                reason: format!("invalid radius {}", s.radius),
            });
        }
    }
    Ok(())
}

/// Bounds of a contiguous primitive range.
fn range_bounds(prims: &[Sphere]) -> Aabb {
    prims
        .iter()
        .fold(Aabb::EMPTY, |acc, s| acc.union(&s.bounds()))
}

/// Bounds of the primitive *centroids* in a range (used for splitting).
fn centroid_bounds(prims: &[Sphere]) -> Aabb {
    prims
        .iter()
        .fold(Aabb::EMPTY, |acc, s| acc.grown_to_include(s.center))
}

/// Shared recursive emitter: given a primitive array that the builder is
/// allowed to reorder, recursively partition `[start, end)` and append nodes.
///
/// `split` decides where to partition a range; it returns `None` to force a
/// leaf.  Returns the index of the node created for the range.
fn emit_node<S>(
    prims: &mut [Sphere],
    start: usize,
    end: usize,
    max_leaf_size: usize,
    nodes: &mut Vec<BvhNode>,
    counters: &mut WorkCounters,
    split: &S,
) -> u32
where
    S: Fn(&mut [Sphere], usize, usize, &mut WorkCounters) -> Option<usize>,
{
    let node_index = nodes.len() as u32;
    let bounds = range_bounds(&prims[start..end]);
    sat_bump(&mut counters.build_node_ops, 1);
    // Placeholder, patched below once children are known.
    nodes.push(BvhNode {
        bounds,
        kind: NodeKind::Leaf {
            first_prim: start as u32,
            prim_count: (end - start) as u32,
        },
    });

    let count = end - start;
    if count <= max_leaf_size {
        return node_index;
    }
    let mid = match split(prims, start, end, counters) {
        Some(mid) if mid > start && mid < end => mid,
        _ => return node_index, // could not split further: keep as leaf
    };
    let left = emit_node(prims, start, mid, max_leaf_size, nodes, counters, split);
    let right = emit_node(prims, mid, end, max_leaf_size, nodes, counters, split);
    nodes[node_index as usize].kind = NodeKind::Internal { left, right };
    node_index
}

fn finish_build(
    kind: BuilderKind,
    mut prims: Vec<Sphere>,
    max_leaf_size: usize,
    split: impl Fn(&mut [Sphere], usize, usize, &mut WorkCounters) -> Option<usize>,
    mut counters: WorkCounters,
) -> Bvh {
    let mut nodes = Vec::with_capacity(2 * prims.len().max(1));
    sat_bump(&mut counters.build_prims, prims.len() as u64);
    let n = prims.len();
    emit_node(
        &mut prims,
        0,
        n,
        max_leaf_size.max(1),
        &mut nodes,
        &mut counters,
        &split,
    );
    Bvh {
        nodes,
        primitives: prims,
        builder: kind,
        build_counters: counters,
    }
}

// ---------------------------------------------------------------------------
// Median split
// ---------------------------------------------------------------------------

/// Longest-axis median-split builder.
///
/// Simple and predictable; used as the reference in tests and as an ablation
/// point in the benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct MedianSplitBuilder {
    /// Maximum number of primitives per leaf.
    pub max_leaf_size: usize,
}

impl Default for MedianSplitBuilder {
    fn default() -> Self {
        MedianSplitBuilder { max_leaf_size: 4 }
    }
}

impl BvhBuilder for MedianSplitBuilder {
    fn build(&self, prims: Vec<Sphere>) -> Result<Bvh> {
        validate_prims(&prims)?;
        let max_leaf = self.max_leaf_size;
        Ok(finish_build(
            BuilderKind::MedianSplit,
            prims,
            max_leaf,
            |prims, start, end, counters| {
                let cb = centroid_bounds(&prims[start..end]);
                let axis = cb.longest_axis();
                let (ex, ey, ez) = cb.extent();
                if ex <= 0.0 && ey <= 0.0 && ez <= 0.0 {
                    // All centroids coincide; split the range in half anyway
                    // so heavily duplicated data still yields a shallow tree.
                    return Some((start + end) / 2);
                }
                let range = &mut prims[start..end];
                sat_bump(&mut counters.build_sort_ops, range.len() as u64);
                let mid = range.len() / 2;
                range.select_nth_unstable_by(mid, |a, b| {
                    a.center[axis]
                        .partial_cmp(&b.center[axis])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                Some(start + mid)
            },
            WorkCounters::ZERO,
        ))
    }

    fn kind(&self) -> BuilderKind {
        BuilderKind::MedianSplit
    }
}

// ---------------------------------------------------------------------------
// Binned SAH
// ---------------------------------------------------------------------------

/// Binned Surface-Area-Heuristic builder.
///
/// This is the "high quality" builder standing in for whatever OptiX does in
/// its opaque hardware-assisted build: primitives are partitioned so that the
/// expected traversal cost (child surface area × child primitive count) is
/// minimised over a fixed number of candidate planes.
#[derive(Debug, Clone, Copy)]
pub struct SahBuilder {
    /// Maximum number of primitives per leaf.
    pub max_leaf_size: usize,
    /// Number of candidate bins per axis.
    pub bins: usize,
}

impl Default for SahBuilder {
    fn default() -> Self {
        SahBuilder {
            max_leaf_size: 4,
            bins: 16,
        }
    }
}

impl BvhBuilder for SahBuilder {
    fn build(&self, prims: Vec<Sphere>) -> Result<Bvh> {
        validate_prims(&prims)?;
        let max_leaf = self.max_leaf_size;
        let bins = self.bins.max(2);
        Ok(finish_build(
            BuilderKind::BinnedSah,
            prims,
            max_leaf,
            move |prims, start, end, counters| {
                let cb = centroid_bounds(&prims[start..end]);
                let axis = cb.longest_axis();
                let min = cb.min[axis];
                let extent = cb.max[axis] - min;
                let range = &mut prims[start..end];
                sat_bump(&mut counters.build_sort_ops, range.len() as u64);
                if extent <= 0.0 {
                    // Degenerate: all centroids identical along every axis
                    // (centroid_bounds picks the longest). Fall back to an
                    // even split.
                    return Some((start + end) / 2);
                }

                // Bin primitives by centroid.
                let mut bin_counts = vec![0usize; bins];
                let mut bin_bounds = vec![Aabb::EMPTY; bins];
                let bin_of = |c: f32| -> usize {
                    let t = ((c - min) / extent * bins as f32) as usize;
                    t.min(bins - 1)
                };
                for s in range.iter() {
                    let b = bin_of(s.center[axis]);
                    bin_counts[b] += 1;
                    bin_bounds[b] = bin_bounds[b].union(&s.bounds());
                }

                // Sweep to find the cheapest split plane.
                let mut left_area = vec![0.0f32; bins];
                let mut left_count = vec![0usize; bins];
                let mut acc = Aabb::EMPTY;
                let mut cnt = 0usize;
                for b in 0..bins {
                    acc = acc.union(&bin_bounds[b]);
                    cnt += bin_counts[b];
                    left_area[b] = if acc.is_empty() {
                        0.0
                    } else {
                        acc.surface_area()
                    };
                    left_count[b] = cnt;
                }
                let mut best_cost = f32::INFINITY;
                let mut best_bin = None;
                let mut acc = Aabb::EMPTY;
                let mut cnt = 0usize;
                for b in (1..bins).rev() {
                    acc = acc.union(&bin_bounds[b]);
                    cnt += bin_counts[b];
                    let right_area = if acc.is_empty() {
                        0.0
                    } else {
                        acc.surface_area()
                    };
                    let lc = left_count[b - 1];
                    let rc = cnt;
                    if lc == 0 || rc == 0 {
                        continue;
                    }
                    let cost = left_area[b - 1] * lc as f32 + right_area * rc as f32;
                    if cost < best_cost {
                        best_cost = cost;
                        best_bin = Some(b);
                    }
                }
                let split_bin = best_bin?;

                // Partition in place around the chosen plane.
                let mid = itertools_partition(range, |s| bin_of(s.center[axis]) < split_bin);
                if mid == 0 || mid == range.len() {
                    // SAH failed to separate anything (can happen with many
                    // coincident centroids); fall back to an even split.
                    return Some((start + end) / 2);
                }
                Some(start + mid)
            },
            WorkCounters::ZERO,
        ))
    }

    fn kind(&self) -> BuilderKind {
        BuilderKind::BinnedSah
    }
}

/// In-place stable-enough partition: moves elements satisfying `pred` to the
/// front, returns the number of such elements.
fn itertools_partition<T, F: Fn(&T) -> bool>(slice: &mut [T], pred: F) -> usize {
    let mut next_front = 0usize;
    for i in 0..slice.len() {
        if pred(&slice[i]) {
            slice.swap(i, next_front);
            next_front += 1;
        }
    }
    next_front
}

// ---------------------------------------------------------------------------
// LBVH (Morton order)
// ---------------------------------------------------------------------------

/// Linear BVH builder: Morton-code sort followed by top-down emission that
/// splits each range at the most significant bit in which its codes differ.
///
/// This is the classic GPU construction (Lauterbach et al. / Karras) and the
/// structure ArborX — the library behind the FDBSCAN baseline — uses.
#[derive(Debug, Clone, Copy)]
pub struct LbvhBuilder {
    /// Maximum number of primitives per leaf.
    pub max_leaf_size: usize,
    /// Logical parallelism of the encode/sort/emit pipeline.  The output is
    /// bit-identical for every setting; `Sequential` (the default) runs the
    /// legacy single-threaded path.
    pub parallelism: BuildParallelism,
}

impl Default for LbvhBuilder {
    fn default() -> Self {
        LbvhBuilder {
            max_leaf_size: 4,
            parallelism: BuildParallelism::Sequential,
        }
    }
}

impl LbvhBuilder {
    /// Find the split position of a sorted Morton-code range: one past the
    /// last element that shares the highest differing bit with the first
    /// element.  Returns the midpoint when all codes are identical.
    pub(crate) fn morton_split(codes: &[u32], start: usize, end: usize) -> usize {
        let first = codes[start];
        let last = codes[end - 1];
        if first == last {
            return (start + end) / 2;
        }
        let common_prefix = (first ^ last).leading_zeros();
        // Binary search for the first element whose prefix differs from
        // `first` at bit position `common_prefix`.
        let mut lo = start;
        let mut hi = end - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let prefix = (first ^ codes[mid]).leading_zeros();
            if prefix > common_prefix {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo.clamp(start + 1, end - 1)
    }
}

/// Shared Morton-order preparation for every LBVH-style consumer (the flat
/// builder and the sharded TLAS planner): scene bounds over the centroids,
/// per-primitive Morton encode, stable radix sort, and a fused gather that
/// fills the sorted primitive and code lanes in one pass.
///
/// `workers` is the logical chunk count; `1` is the exact legacy sequential
/// path.  For any `workers` value the output is bit-identical: the bounds
/// reduction only reassociates `min`/`max` folds over the fixed index order
/// (associative for the finite inputs `validate_prims` guarantees), the
/// encode and gather write each lane index independently, and the parallel
/// radix sort is stable with the same region order as the sequential one.
pub(crate) fn morton_order(
    prims: &[Sphere],
    workers: usize,
    counters: &mut WorkCounters,
) -> (Vec<Sphere>, Vec<u32>) {
    let n = prims.len();
    let workers = workers.min(n).max(1);
    let chunk = n.div_ceil(workers.max(1)).max(1);

    // 1. Scene bounds via a chunked min/max reduction over the centroids.
    let scene = if workers <= 1 {
        prims
            .iter()
            .fold(Aabb::EMPTY, |acc, s| acc.grown_to_include(s.center))
    } else {
        let partials: Vec<Aabb> = (0..workers)
            .into_par_iter()
            .map(|t| {
                let lo = (t * chunk).min(n);
                let hi = ((t + 1) * chunk).min(n);
                prims[lo..hi]
                    .iter()
                    .fold(Aabb::EMPTY, |acc, s| acc.grown_to_include(s.center))
            })
            .collect();
        partials.iter().fold(Aabb::EMPTY, |acc, b| acc.union(b))
    };
    let extent = scene.extent();

    // 2. Chunk-parallel Morton encode into a preallocated lane.
    let mut codes: Vec<MortonCode> = if workers <= 1 {
        prims
            .iter()
            .enumerate()
            .map(|(i, s)| MortonCode {
                code: morton_encode_3d(s.center, scene.min, extent),
                index: i as u32,
            })
            .collect()
    } else {
        let mut codes = vec![MortonCode { code: 0, index: 0 }; n];
        let out = SendPtr::new(codes.as_mut_ptr());
        (0..workers).into_par_iter().for_each(|t| {
            let lo = (t * chunk).min(n);
            let hi = ((t + 1) * chunk).min(n);
            for (i, s) in prims[lo..hi].iter().enumerate() {
                // SAFETY: chunks partition `[0, n)` into disjoint index
                // ranges; worker `t` only writes lane slots `lo..hi`, and
                // the lane is only read after the pool joins.
                unsafe {
                    *out.get().add(lo + i) = MortonCode {
                        code: morton_encode_3d(s.center, scene.min, extent),
                        index: (lo + i) as u32,
                    };
                }
            }
        });
        codes
    };
    sat_bump(&mut counters.misc_ops, n as u64); // code computation

    // 3. Radix sort by code (stable; bit-identical for any chunk count).
    let sort_stats = radix_sort_by_code_parallel(&mut codes, workers);
    sat_bump(&mut counters.build_sort_ops, sort_stats.scatter_ops);
    sat_bump(&mut counters.build_chunk_merges, sort_stats.chunk_merges);

    // 4. Fused gather: fill both the sorted primitive and the sorted code
    // lane in one pass (the codes are needed again by `morton_split`).
    if workers <= 1 {
        let mut sorted_prims: Vec<Sphere> = Vec::with_capacity(n);
        let mut sorted_codes: Vec<u32> = Vec::with_capacity(n);
        for c in &codes {
            sorted_prims.push(prims[c.index as usize]);
            sorted_codes.push(c.code);
        }
        (sorted_prims, sorted_codes)
    } else {
        let mut sorted_prims: Vec<Sphere> = vec![prims[0]; n];
        let mut sorted_codes: Vec<u32> = vec![0u32; n];
        let prims_out = SendPtr::new(sorted_prims.as_mut_ptr());
        let codes_out = SendPtr::new(sorted_codes.as_mut_ptr());
        let codes_ref: &[MortonCode] = &codes;
        (0..workers).into_par_iter().for_each(|t| {
            let lo = (t * chunk).min(n);
            let hi = ((t + 1) * chunk).min(n);
            for (i, c) in codes_ref[lo..hi].iter().enumerate() {
                // SAFETY: chunks partition `[0, n)`; worker `t` writes only
                // slots `lo..hi` of both lanes, which are read again only
                // after the pool joins.
                unsafe {
                    *prims_out.get().add(lo + i) = prims[c.index as usize];
                    *codes_out.get().add(lo + i) = c.code;
                }
            }
        });
        (sorted_prims, sorted_codes)
    }
}

/// Minimum treelet size for the parallel emitter: below this the per-arena
/// bookkeeping costs more than the subtree emit itself.
const MIN_TREELET: usize = 64;

/// One subtree emitted independently by a parallel treelet worker, in local
/// node indices (index 0 is the treelet root).
struct TreeletArena {
    nodes: Vec<BvhNode>,
    counters: WorkCounters,
}

/// The top of the tree above the treelets, in the same pre-order the
/// sequential emitter would produce.
enum TopPlan {
    Internal {
        left: Box<TopPlan>,
        right: Box<TopPlan>,
    },
    Treelet {
        idx: usize,
    },
}

/// Descend the sorted range along `morton_split` boundaries until every
/// subtree holds at most `target` primitives; those ranges become treelets.
/// The descent mirrors the sequential recursion exactly, so the treelet
/// ranges are subtree ranges of the sequential tree.
fn plan_treelets(
    codes: &[u32],
    start: usize,
    end: usize,
    target: usize,
    ranges: &mut Vec<(usize, usize)>,
) -> TopPlan {
    if end - start <= target {
        let idx = ranges.len();
        ranges.push((start, end));
        return TopPlan::Treelet { idx };
    }
    let mid = LbvhBuilder::morton_split(codes, start, end);
    let left = plan_treelets(codes, start, mid, target, ranges);
    let right = plan_treelets(codes, mid, end, target, ranges);
    TopPlan::Internal {
        left: Box::new(left),
        right: Box::new(right),
    }
}

/// Emit one treelet subtree in pre-order with *bottom-up* bounds: a leaf
/// folds its primitive range exactly like the sequential emitter, and an
/// internal node unions its children's bounds instead of re-folding its
/// whole range.  The two are bit-identical because the fold is a min/max
/// reduction over a fixed index order — reassociating it cannot change the
/// result on the finite values `validate_prims` admits — and it turns the
/// emitter's O(n·depth) bound refolds into O(n + nodes), which is where the
/// parallel build's single-thread win comes from.
fn emit_treelet_node(
    prims: &[Sphere],
    codes: &[u32],
    start: usize,
    end: usize,
    max_leaf_size: usize,
    nodes: &mut Vec<BvhNode>,
    counters: &mut WorkCounters,
) -> (u32, Aabb) {
    let node_index = nodes.len() as u32;
    sat_bump(&mut counters.build_node_ops, 1);
    let count = end - start;
    if count <= max_leaf_size {
        let bounds = range_bounds(&prims[start..end]);
        nodes.push(BvhNode {
            bounds,
            kind: NodeKind::Leaf {
                first_prim: start as u32,
                prim_count: count as u32,
            },
        });
        return (node_index, bounds);
    }
    // Placeholder, patched below once the children (and their bounds) exist.
    nodes.push(BvhNode {
        bounds: Aabb::EMPTY,
        kind: NodeKind::Leaf {
            first_prim: start as u32,
            prim_count: count as u32,
        },
    });
    let mid = LbvhBuilder::morton_split(codes, start, end);
    let (left, lb) = emit_treelet_node(prims, codes, start, mid, max_leaf_size, nodes, counters);
    let (right, rb) = emit_treelet_node(prims, codes, mid, end, max_leaf_size, nodes, counters);
    let bounds = lb.union(&rb);
    nodes[node_index as usize] = BvhNode {
        bounds,
        kind: NodeKind::Internal { left, right },
    };
    (node_index, bounds)
}

/// Stitch the top levels sequentially and splice the treelet arenas into the
/// final node array, fixing up each arena's local child indices by its base
/// offset.  The walk is the same pre-order as the sequential emitter, so the
/// final array is bit-identical to the sequential layout.
fn splice_top(
    plan: &TopPlan,
    arenas: &[TreeletArena],
    nodes: &mut Vec<BvhNode>,
    counters: &mut WorkCounters,
) -> (u32, Aabb) {
    match plan {
        TopPlan::Treelet { idx } => {
            let arena = &arenas[*idx];
            let base = nodes.len() as u32;
            for node in &arena.nodes {
                let mut patched = *node;
                if let NodeKind::Internal { left, right } = patched.kind {
                    patched.kind = NodeKind::Internal {
                        left: left + base,
                        right: right + base,
                    };
                }
                nodes.push(patched);
            }
            sat_bump(&mut counters.build_splice_ops, arena.nodes.len() as u64);
            (base, arena.nodes[0].bounds)
        }
        TopPlan::Internal { left, right } => {
            let node_index = nodes.len() as u32;
            sat_bump(&mut counters.build_node_ops, 1);
            nodes.push(BvhNode {
                bounds: Aabb::EMPTY,
                kind: NodeKind::Leaf {
                    first_prim: 0,
                    prim_count: 0,
                },
            });
            let (l, lb) = splice_top(left, arenas, nodes, counters);
            let (r, rb) = splice_top(right, arenas, nodes, counters);
            let bounds = lb.union(&rb);
            nodes[node_index as usize] = BvhNode {
                bounds,
                kind: NodeKind::Internal { left: l, right: r },
            };
            (node_index, bounds)
        }
    }
}

/// Treelet-parallel LBVH emit over an already-sorted range: plan treelets at
/// high Morton-bit boundaries, emit every treelet's subtree in parallel into
/// its own arena (each under its own `lbvh_build` telemetry span), then
/// stitch and splice sequentially.
fn emit_treelets_parallel(
    prims: &[Sphere],
    codes: &[u32],
    max_leaf_size: usize,
    workers: usize,
    counters: &mut WorkCounters,
    telemetry: &Telemetry,
) -> Vec<BvhNode> {
    let n = prims.len();
    let target = (n / (workers.max(1) * 4))
        .max(max_leaf_size)
        .max(MIN_TREELET);
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let plan = plan_treelets(codes, 0, n, target, &mut ranges);
    let arenas: Vec<TreeletArena> = (0..ranges.len())
        .into_par_iter()
        .map(|i| {
            let (start, end) = ranges[i];
            let mut span = telemetry.span(PhaseKind::LbvhBuild);
            let mut arena = TreeletArena {
                nodes: Vec::with_capacity(2 * (end - start)),
                counters: WorkCounters::ZERO,
            };
            emit_treelet_node(
                prims,
                codes,
                start,
                end,
                max_leaf_size,
                &mut arena.nodes,
                &mut arena.counters,
            );
            span.add_counters(arena.counters);
            arena
        })
        .collect();
    for arena in &arenas {
        *counters += arena.counters;
    }
    let mut nodes = Vec::with_capacity(2 * n.max(1));
    splice_top(&plan, &arenas, &mut nodes, counters);
    nodes
}

/// Build an LBVH over primitives that are *already* in Morton order — the
/// single internal entry point every LBVH consumer funnels through
/// ([`LbvhBuilder::build`] after its encode/sort, and the sharded backend
/// for each BLAS slice).
///
/// Because `morton_split` depends only on the codes within a range (and
/// splits identical-code runs at the range midpoint, which is invariant
/// under re-indexing), every BLAS is bit-identical to the corresponding
/// subtree of the flat LBVH over the same data — the property the sharded
/// backend's counter-identity guarantees rest on.
///
/// `counters` seeds the build counters (the caller charges the global encode
/// and sort there); the emit adds `build_prims` and `build_node_ops` on top.
/// `parallelism` selects between the sequential recursive emit and the
/// treelet-parallel emit; both produce bit-identical nodes, primitive order
/// and counters (the parallel path additionally charges the parallel-only
/// `build_splice_ops`).
pub(crate) fn lbvh_from_sorted(
    sorted_prims: Vec<Sphere>,
    sorted_codes: Vec<u32>,
    max_leaf_size: usize,
    counters: WorkCounters,
    parallelism: BuildParallelism,
    telemetry: &Telemetry,
) -> Result<Bvh> {
    validate_prims(&sorted_prims)?;
    debug_assert_eq!(sorted_prims.len(), sorted_codes.len());
    let workers = parallelism.resolved();
    if workers <= 1 {
        return Ok(finish_build(
            BuilderKind::Lbvh,
            sorted_prims,
            max_leaf_size,
            move |_prims, start, end, _counters| {
                Some(LbvhBuilder::morton_split(&sorted_codes, start, end))
            },
            counters,
        ));
    }
    let mut counters = counters;
    sat_bump(&mut counters.build_prims, sorted_prims.len() as u64);
    let nodes = emit_treelets_parallel(
        &sorted_prims,
        &sorted_codes,
        max_leaf_size.max(1),
        workers,
        &mut counters,
        telemetry,
    );
    Ok(Bvh {
        nodes,
        primitives: sorted_prims,
        builder: BuilderKind::Lbvh,
        build_counters: counters,
    })
}

impl LbvhBuilder {
    /// Build with an explicit telemetry handle so the parallel emitter can
    /// record its per-treelet spans; [`BvhBuilder::build`] delegates here
    /// with telemetry disabled.
    pub fn build_with_telemetry(&self, prims: Vec<Sphere>, telemetry: &Telemetry) -> Result<Bvh> {
        validate_prims(&prims)?;
        let mut counters = WorkCounters::ZERO;
        let workers = self.parallelism.resolved();
        let (sorted_prims, sorted_codes) = morton_order(&prims, workers, &mut counters);
        lbvh_from_sorted(
            sorted_prims,
            sorted_codes,
            self.max_leaf_size,
            counters,
            self.parallelism,
            telemetry,
        )
    }
}

impl BvhBuilder for LbvhBuilder {
    fn build(&self, prims: Vec<Sphere>) -> Result<Bvh> {
        self.build_with_telemetry(prims, &Telemetry::disabled())
    }

    fn kind(&self) -> BuilderKind {
        BuilderKind::Lbvh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bvh::validate;
    use crate::geometry::Point3;

    fn grid_spheres(n_side: usize, radius: f32) -> Vec<Sphere> {
        let mut out = Vec::new();
        let mut idx = 0u32;
        for i in 0..n_side {
            for j in 0..n_side {
                out.push(Sphere::new(
                    Point3::new(i as f32, j as f32, 0.0),
                    radius,
                    idx,
                ));
                idx += 1;
            }
        }
        out
    }

    fn builders() -> Vec<(&'static str, Box<dyn BvhBuilder>)> {
        vec![
            ("median", Box::new(MedianSplitBuilder::default())),
            ("sah", Box::new(SahBuilder::default())),
            ("lbvh", Box::new(LbvhBuilder::default())),
        ]
    }

    #[test]
    fn empty_scene_is_rejected() {
        for (name, b) in builders() {
            assert_eq!(b.build(vec![]).unwrap_err(), Error::EmptyScene, "{name}");
        }
    }

    #[test]
    fn invalid_primitives_are_rejected() {
        let bad_center = vec![Sphere::new(Point3::new(f32::NAN, 0.0, 0.0), 1.0, 0)];
        let bad_radius = vec![Sphere::new(Point3::ORIGIN, -1.0, 0)];
        for (name, b) in builders() {
            assert!(
                matches!(
                    b.build(bad_center.clone()),
                    Err(Error::InvalidPrimitive { index: 0, .. })
                ),
                "{name} centre"
            );
            assert!(
                matches!(
                    b.build(bad_radius.clone()),
                    Err(Error::InvalidPrimitive { index: 0, .. })
                ),
                "{name} radius"
            );
        }
    }

    #[test]
    fn single_primitive_builds_single_leaf() {
        for (name, b) in builders() {
            let bvh = b
                .build(vec![Sphere::new(Point3::new(1.0, 2.0, 3.0), 0.5, 0)])
                .unwrap();
            assert_eq!(bvh.node_count(), 1, "{name}");
            assert!(bvh.nodes[0].is_leaf(), "{name}");
            validate(&bvh).unwrap();
        }
    }

    #[test]
    fn all_builders_produce_valid_trees_on_grid() {
        let spheres = grid_spheres(20, 0.4);
        for (name, b) in builders() {
            let bvh = b.build(spheres.clone()).unwrap();
            validate(&bvh).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(bvh.primitive_count(), 400, "{name}");
            assert_eq!(bvh.builder, b.kind(), "{name}");
            assert!(bvh.build_counters.build_prims == 400, "{name}");
            assert!(bvh.build_counters.build_node_ops > 0, "{name}");
        }
    }

    #[test]
    fn all_builders_handle_coincident_points() {
        // 1000 copies of the same point — the NGSIM-style degenerate case.
        let spheres: Vec<Sphere> = (0..1000)
            .map(|i| Sphere::new(Point3::new(5.0, 5.0, 0.0), 0.1, i as u32))
            .collect();
        for (name, b) in builders() {
            let bvh = b.build(spheres.clone()).unwrap();
            validate(&bvh).unwrap_or_else(|e| panic!("{name}: {e}"));
            // The tree must stay shallow-ish (no linear chains).
            assert!(bvh.depth() < 64, "{name}: depth {}", bvh.depth());
        }
    }

    #[test]
    fn leaf_size_is_respected_where_splittable() {
        let spheres = grid_spheres(8, 0.3);
        let bvh = SahBuilder {
            max_leaf_size: 2,
            bins: 8,
        }
        .build(spheres)
        .unwrap();
        for node in &bvh.nodes {
            if let NodeKind::Leaf { prim_count, .. } = node.kind {
                // Grid points are distinct, so every leaf can reach the target.
                assert!(prim_count <= 2, "leaf of size {prim_count}");
            }
        }
    }

    #[test]
    fn sah_tree_is_no_worse_than_median_on_clustered_data() {
        // Two well-separated clusters: SAH must separate them at the root.
        let mut spheres = Vec::new();
        for i in 0..64 {
            spheres.push(Sphere::new(
                Point3::new(i as f32 * 0.01, 0.0, 0.0),
                0.1,
                i as u32,
            ));
        }
        for i in 0..64 {
            spheres.push(Sphere::new(
                Point3::new(100.0 + i as f32 * 0.01, 0.0, 0.0),
                0.1,
                64 + i as u32,
            ));
        }
        let sah = SahBuilder::default().build(spheres).unwrap();
        if let NodeKind::Internal { left, right } = sah.nodes[0].kind {
            let lb = sah.nodes[left as usize].bounds;
            let rb = sah.nodes[right as usize].bounds;
            assert!(!lb.intersects_aabb(&rb), "SAH should separate the clusters");
        } else {
            panic!("root should be internal");
        }
    }

    #[test]
    fn morton_split_midpoint_for_identical_codes() {
        let codes = vec![7u32; 10];
        assert_eq!(LbvhBuilder::morton_split(&codes, 0, 10), 5);
    }

    #[test]
    fn morton_split_separates_differing_prefix() {
        let codes = vec![0, 0, 0, 8, 8, 8];
        let split = LbvhBuilder::morton_split(&codes, 0, 6);
        assert_eq!(split, 3);
    }

    #[test]
    fn partition_helper() {
        let mut v = vec![5, 1, 4, 2, 3];
        let k = itertools_partition(&mut v, |&x| x <= 2);
        assert_eq!(k, 2);
        let (front, back) = v.split_at(k);
        assert!(front.iter().all(|&x| x <= 2));
        assert!(back.iter().all(|&x| x > 2));
    }
}

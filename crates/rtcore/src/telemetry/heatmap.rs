//! The per-node visit-frequency profiler.
//!
//! Cache-aware node-layout work (ROADMAP item 4) needs to know *which*
//! nodes the traversal actually fetches, not just how many fetches happen
//! in aggregate.  A [`NodeHeatmap`] is an array of relaxed atomic visit
//! counters, one per BVH node, that the traversal engines bump on every
//! node visit when profiling is enabled
//! ([`crate::telemetry::TelemetryConfig::Profile`]).  Node depths are
//! computed once at build, so the accumulated visits can be collapsed into
//! per-depth or per-treelet histograms — the distribution that tells you
//! which levels of the tree dominate memory traffic.
//!
//! The accumulator is indexed by the node ids the engine already has in a
//! register, and both wide-node layouts (`f32` and quantized) mirror each
//! other's node order, so one heatmap serves either layout of the same
//! tree.

use crate::bvh::wide::WideChild;
use crate::bvh::{Bvh, NodeKind, WideBvh};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-node visit counts plus the static node→depth mapping.
///
/// Totals are exact: every visit the traversal charges to
/// `wide_node_visits` (wide engines) or `node_visits` (binary engine)
/// lands on exactly one node, so [`NodeHeatmap::total_visits`] equals the
/// corresponding counter for launches made while the heatmap was attached.
#[derive(Debug)]
pub struct NodeHeatmap {
    visits: Vec<AtomicU64>,
    depths: Vec<u32>,
    max_depth: u32,
}

impl NodeHeatmap {
    /// A heatmap over an explicit node→depth mapping (root depth 0).
    pub fn with_depths(depths: Vec<u32>) -> NodeHeatmap {
        let max_depth = depths.iter().copied().max().unwrap_or(0);
        NodeHeatmap {
            visits: depths.iter().map(|_| AtomicU64::new(0)).collect(),
            depths,
            max_depth,
        }
    }

    /// A heatmap sized for a wide (BVH4) scene.  The quantized compact
    /// layout mirrors the wide node array one-to-one, so this heatmap
    /// serves both layouts.
    pub fn for_wide(wide: &WideBvh) -> NodeHeatmap {
        let mut depths = vec![0u32; wide.nodes.len()];
        let mut stack: Vec<(u32, u32)> = Vec::new();
        if !wide.nodes.is_empty() {
            stack.push((0, 0));
        }
        while let Some((node, depth)) = stack.pop() {
            depths[node as usize] = depth;
            for slot in &wide.nodes[node as usize].children {
                if let WideChild::Node(child) = slot {
                    stack.push((*child, depth + 1));
                }
            }
        }
        NodeHeatmap::with_depths(depths)
    }

    /// A heatmap sized for a binary BVH.
    pub fn for_binary(bvh: &Bvh) -> NodeHeatmap {
        let mut depths = vec![0u32; bvh.nodes.len()];
        let mut stack: Vec<(u32, u32)> = Vec::new();
        if !bvh.nodes.is_empty() {
            stack.push((0, 0));
        }
        while let Some((node, depth)) = stack.pop() {
            depths[node as usize] = depth;
            if let NodeKind::Internal { left, right } = bvh.nodes[node as usize].kind {
                stack.push((left, depth + 1));
                stack.push((right, depth + 1));
            }
        }
        NodeHeatmap::with_depths(depths)
    }

    /// Count one visit of `node`.  Relaxed atomic add — safe from any
    /// number of traversal workers, never part of the counted cost model.
    // ordering: Relaxed fetch_add — independent tally cells with no guarded
    // payload; readers synchronise via the launch join (see the audit note
    // on the reader methods below), not via these cells.
    #[inline]
    pub fn record(&self, node: u32) {
        self.visits[node as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of nodes the heatmap covers.
    pub fn node_count(&self) -> usize {
        self.visits.len()
    }

    /// Recorded visits of one node.
    // ordering: Relaxed load — read after the traversal launch joins; the
    // join (rayon scope exit / dispatch_batch return) is the happens-before
    // edge that makes every worker's Relaxed adds visible here.
    pub fn visits(&self, node: usize) -> u64 {
        self.visits[node].load(Ordering::Relaxed)
    }

    /// Depth of one node (root = 0).
    pub fn depth_of(&self, node: usize) -> u32 {
        self.depths[node]
    }

    /// Deepest node level.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Sum of all per-node visits — equals the engine's
    /// `wide_node_visits` (or binary `node_visits`) for the launches made
    /// while this heatmap was attached.
    // ordering: Relaxed loads — post-join read, see `visits`.
    pub fn total_visits(&self) -> u64 {
        self.visits.iter().map(|v| v.load(Ordering::Relaxed)).sum()
    }

    /// Visits aggregated per depth: `result[d]` is the total visits of all
    /// nodes at depth `d`.
    // ordering: Relaxed loads — post-join read, see `visits`.
    pub fn per_depth(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.max_depth as usize + 1];
        for (node, v) in self.visits.iter().enumerate() {
            out[self.depths[node] as usize] += v.load(Ordering::Relaxed);
        }
        out
    }

    /// Number of nodes per depth (the denominator for visit-per-node
    /// averages).
    pub fn nodes_per_depth(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.max_depth as usize + 1];
        for &d in &self.depths {
            out[d as usize] += 1;
        }
        out
    }

    /// Visits aggregated per treelet of `nodes_per_treelet` consecutive
    /// node ids — the unit a cache-aware layout would relocate together
    /// (e.g. 64 compact 80-byte nodes ≈ one 4 KiB page).
    // ordering: Relaxed loads — post-join read, see `visits`.
    pub fn per_treelet(&self, nodes_per_treelet: usize) -> Vec<u64> {
        let size = nodes_per_treelet.max(1);
        let mut out = vec![0u64; self.visits.len().div_ceil(size)];
        for (node, v) in self.visits.iter().enumerate() {
            out[node / size] += v.load(Ordering::Relaxed);
        }
        out
    }

    /// Zero every visit counter (the depth mapping is static and kept).
    // ordering: Relaxed stores — reset runs between launches with no
    // concurrent writers; the next launch's spawn publishes the zeroes.
    pub fn reset(&self) {
        for v in &self.visits {
            v.store(0, Ordering::Relaxed);
        }
    }

    /// JSON snapshot:
    /// `{"nodes":…,"total_visits":…,"per_depth":[…],"nodes_per_depth":[…]}`.
    pub fn to_json(&self) -> String {
        let per_depth: Vec<String> = self.per_depth().iter().map(u64::to_string).collect();
        let per_count: Vec<String> = self.nodes_per_depth().iter().map(u64::to_string).collect();
        format!(
            "{{\"nodes\":{},\"total_visits\":{},\"per_depth\":[{}],\"nodes_per_depth\":[{}]}}",
            self.node_count(),
            self.total_visits(),
            per_depth.join(","),
            per_count.join(","),
        )
    }

    /// Human-readable per-depth table with visit shares.
    pub fn summary(&self) -> String {
        let per_depth = self.per_depth();
        let per_count = self.nodes_per_depth();
        let total = self.total_visits().max(1) as f64;
        let mut out = String::new();
        out.push_str(&format!(
            "{:>5} {:>8} {:>12} {:>8} {:>12}\n",
            "depth", "nodes", "visits", "share", "visits/node"
        ));
        for (d, (&visits, &nodes)) in per_depth.iter().zip(per_count.iter()).enumerate() {
            out.push_str(&format!(
                "{:>5} {:>8} {:>12} {:>7.1}% {:>12.1}\n",
                d,
                nodes,
                visits,
                100.0 * visits as f64 / total,
                visits as f64 / nodes.max(1) as f64,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bvh::{spheres_from_points, BvhBuilder, LbvhBuilder};
    use crate::geometry::Point3;

    fn grid(n: usize) -> Vec<Point3> {
        (0..n)
            .map(|i| Point3::new_2d((i % 16) as f32 * 0.5, (i / 16) as f32 * 0.5))
            .collect()
    }

    #[test]
    fn depths_start_at_root_and_grow_by_one() {
        let bvh = LbvhBuilder::default()
            .build(spheres_from_points(&grid(256), 0.6))
            .unwrap();
        let wide = WideBvh::from_binary(&bvh);
        let heat = NodeHeatmap::for_wide(&wide);
        assert_eq!(heat.node_count(), wide.nodes.len());
        assert_eq!(heat.depth_of(0), 0);
        // Every non-root node sits exactly one level below some parent.
        for (i, node) in wide.nodes.iter().enumerate() {
            for slot in &node.children {
                if let WideChild::Node(child) = slot {
                    assert_eq!(
                        heat.depth_of(*child as usize),
                        heat.depth_of(i) + 1,
                        "child {child} of node {i}"
                    );
                }
            }
        }
        assert!(heat.max_depth() >= 1);
    }

    #[test]
    fn record_and_aggregations_agree() {
        let heat = NodeHeatmap::with_depths(vec![0, 1, 1, 2]);
        heat.record(0);
        heat.record(1);
        heat.record(1);
        heat.record(3);
        assert_eq!(heat.total_visits(), 4);
        assert_eq!(heat.per_depth(), vec![1, 2, 1]);
        assert_eq!(heat.nodes_per_depth(), vec![1, 2, 1]);
        assert_eq!(heat.per_treelet(2), vec![3, 1]);
        assert_eq!(heat.visits(1), 2);
        heat.reset();
        assert_eq!(heat.total_visits(), 0);
        assert_eq!(heat.per_depth(), vec![0, 0, 0]);
    }

    #[test]
    fn json_and_summary_render() {
        let heat = NodeHeatmap::with_depths(vec![0, 1]);
        heat.record(0);
        assert_eq!(
            heat.to_json(),
            "{\"nodes\":2,\"total_visits\":1,\"per_depth\":[1,0],\"nodes_per_depth\":[1,1]}"
        );
        let summary = heat.summary();
        assert!(summary.contains("visits/node"));
        assert!(summary.lines().count() >= 3);
    }

    #[test]
    fn binary_depths_cover_every_node() {
        let bvh = LbvhBuilder::default()
            .build(spheres_from_points(&grid(64), 0.6))
            .unwrap();
        let heat = NodeHeatmap::for_binary(&bvh);
        assert_eq!(heat.node_count(), bvh.nodes.len());
        for i in 0..bvh.nodes.len() {
            if let NodeKind::Internal { left, right } = bvh.nodes[i].kind {
                assert_eq!(heat.depth_of(left as usize), heat.depth_of(i) + 1);
                assert_eq!(heat.depth_of(right as usize), heat.depth_of(i) + 1);
            }
        }
    }
}

//! NGSIM experiments: Table II / Fig 8a (ε sweep) and Table III / Fig 8b
//! (size sweep).
//!
//! NGSIM is the paper's stress case: an extremely dense trajectory dataset
//! with massive coordinate duplication on which no clusters form
//! (minPts = 100 is never reached within the tiny ε values used), yet
//! FDBSCAN's traversal degenerates while RT-DBSCAN — whose device builder
//! compacts coincident primitives and partitions the duplicated regions
//! spatially — stays fast, yielding the paper's 2500×–5500× speedups.

use super::{dataset, ExperimentScale};
use crate::measure::measure;
use crate::table::ExperimentTable;
use rtdbscan::{DbscanParams, Fdbscan, RtDbscan};
use rtdbscan_datasets::PaperDataset;

/// ε values of Table II.
pub const NGSIM_EPS_VALUES: [f32; 5] = [0.0001, 0.00025, 0.0005, 0.00075, 0.001];

/// **Table II / Figure 8a** — NGSIM execution time and speedup while varying
/// ε at a fixed (scaled) 1 M points, minPts = 100.
pub fn table2_ngsim_eps(scale: &ExperimentScale) -> ExperimentTable {
    let points = dataset(scale, PaperDataset::Ngsim, 1_000_000);
    let min_pts = 100; // duplication density is size-independent; see DESIGN.md
    let mut table = ExperimentTable::new(
        format!(
            "Table II / Figure 8a: NGSIM, varying eps ({} points, minPts={min_pts})",
            points.len()
        ),
        "eps",
        vec![
            "FDBSCAN (s)".to_string(),
            "RT-DBSCAN (s)".to_string(),
            "speedup".to_string(),
            "clusters".to_string(),
        ],
    );
    for eps in NGSIM_EPS_VALUES {
        let params = DbscanParams::new(eps, min_pts).expect("valid params");
        let fd = measure(&Fdbscan::default(), &points, params);
        let rt = measure(&RtDbscan::default(), &points, params);
        table.push_row(
            format!("{eps}"),
            vec![
                Some(fd.simulated_seconds()),
                Some(rt.simulated_seconds()),
                Some(fd.simulated_seconds() / rt.simulated_seconds()),
                Some(rt.clusters() as f64),
            ],
        );
    }
    table.push_note(
        "Paper (1M points): FDBSCAN ~64.7 s, RT-DBSCAN ~0.026 s (~2500x); times barely move with \
         eps because the dataset stays equally dense across this range, and 0 clusters form."
            .to_string(),
    );
    table
}

/// **Table III / Figure 8b** — NGSIM execution time and speedup while varying
/// the dataset size at ε = 0.0005, minPts = 100.
pub fn table3_ngsim_size(scale: &ExperimentScale) -> ExperimentTable {
    let min_pts = 100;
    let eps = 0.0005;
    let mut table = ExperimentTable::new(
        format!("Table III / Figure 8b: NGSIM, varying dataset size (eps={eps}, minPts={min_pts})"),
        "dataset size",
        vec![
            "FDBSCAN (s)".to_string(),
            "RT-DBSCAN (s)".to_string(),
            "speedup".to_string(),
        ],
    );
    for paper_n in super::size_sweeps::size_sweep_values(PaperDataset::Ngsim) {
        let points = dataset(scale, PaperDataset::Ngsim, paper_n);
        let params = DbscanParams::new(eps, min_pts).expect("valid params");
        let fd = measure(&Fdbscan::default(), &points, params);
        let rt = measure(&RtDbscan::default(), &points, params);
        table.push_row(
            format!("{}", points.len()),
            vec![
                Some(fd.simulated_seconds()),
                Some(rt.simulated_seconds()),
                Some(fd.simulated_seconds() / rt.simulated_seconds()),
            ],
        );
    }
    table.push_note(
        "Paper: FDBSCAN grows superlinearly (12.7 s at 500 K to 6964 s at 8 M) while RT-DBSCAN \
         grows roughly linearly (0.03 s to 1.26 s); the speedup factor widens with size up to ~5500x."
            .to_string(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ngsim_forms_no_clusters_at_paper_parameters() {
        // The qualitative property the whole NGSIM section rests on.
        let points = rtdbscan_datasets::generate(PaperDataset::Ngsim, 20_000, 3);
        let params = DbscanParams::new(0.0005, 100).unwrap();
        let rt = measure(&RtDbscan::default(), &points, params);
        let fd = measure(&Fdbscan::default(), &points, params);
        assert_eq!(rt.clusters(), 0);
        assert_eq!(fd.clusters(), 0);
    }

    #[test]
    fn rt_dbscan_wins_by_a_large_factor_on_ngsim() {
        let points = rtdbscan_datasets::generate(PaperDataset::Ngsim, 30_000, 3);
        let params = DbscanParams::new(0.0005, 100).unwrap();
        let fd = measure(&Fdbscan::default(), &points, params);
        let rt = measure(&RtDbscan::default(), &points, params);
        let speedup = fd.simulated_seconds() / rt.simulated_seconds();
        // At this small test size the fixed pipeline-setup cost still weighs
        // on RT-DBSCAN; the factor grows with dataset size (Table III).  The
        // full-scale numbers are recorded in EXPERIMENTS.md.
        assert!(
            speedup > 4.0,
            "expected a large win on the duplicated dataset, got {speedup:.1}x"
        );
    }

    #[test]
    fn eps_values_match_table_ii() {
        assert_eq!(NGSIM_EPS_VALUES.len(), 5);
        assert!(NGSIM_EPS_VALUES.windows(2).all(|w| w[0] < w[1]));
    }
}

//! The workspace itself must analyze clean: every rule passes over the
//! real source tree, with every waiver carrying a reason.  This is the
//! same check CI runs via `cargo xtask analyze` — keeping it in the test
//! suite means a plain `cargo test` refuses regressions too.

use std::path::Path;

#[test]
fn workspace_has_no_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = rtdbscan_analyze::engine::analyze_workspace(&root, None)
        .expect("workspace scan must not hit IO errors");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "workspace must analyze clean; run `cargo xtask analyze` to see \
         these {} finding(s):\n{:#?}",
        report.findings.len(),
        report.findings
    );
}

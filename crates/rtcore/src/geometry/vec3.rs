//! A minimal 3-component single-precision vector.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A direction / displacement in 3-D space.
///
/// [`crate::geometry::Point3`] is the positional counterpart; keeping the two
/// types distinct catches a family of unit errors at compile time (adding two
/// points, for instance, is not meaningful, while adding a `Vec3` to a
/// `Point3` is).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Unit vector along +z — the ray direction the paper uses for 2-D data.
    pub const UNIT_Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Construct a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Construct a vector with all components equal.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f32 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.length_squared().sqrt()
    }

    /// Returns a unit-length copy of this vector.
    ///
    /// Returns [`Vec3::ZERO`] for the zero vector rather than producing NaNs,
    /// which keeps degenerate ray directions well-defined (the epsilon-length
    /// query rays never rely on their direction).
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len > 0.0 {
            self / len
        } else {
            Vec3::ZERO
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.x.min(other.x),
            y: self.y.min(other.y),
            z: self.z.min(other.z),
        }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.x.max(other.x),
            y: self.y.max(other.y),
            z: self.z.max(other.z),
        }
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// True if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl std::ops::Index<usize> for Vec3 {
    type Output = f32;

    /// Access components by axis index (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    /// Panics if `axis > 2`.
    #[inline]
    fn index(&self, axis: usize) -> &f32 {
        match axis {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            // analyze-allow: lib-unwrap -- Index impls cannot return Result; the slice-like bounds panic is documented under # Panics
            _ => panic!("axis index out of range: {axis}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.x, 1.0);
        assert_eq!(v.y, 2.0);
        assert_eq!(v.z, 3.0);
        assert_eq!(Vec3::splat(2.0), Vec3::new(2.0, 2.0, 2.0));
        assert_eq!(Vec3::ZERO, Vec3::new(0.0, 0.0, 0.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(y.cross(x), Vec3::new(0.0, 0.0, -1.0));
        assert_eq!(x.dot(x), 1.0);
    }

    #[test]
    fn length_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_squared(), 25.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn min_max_components() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 6.0));
        assert_eq!(a.max_component(), 5.0);
    }

    #[test]
    fn indexing_by_axis() {
        let v = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(v[0], 4.0);
        assert_eq!(v[1], 5.0);
        assert_eq!(v[2], 6.0);
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f32::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f32::INFINITY, 0.0).is_finite());
    }
}

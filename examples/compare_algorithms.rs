//! Side-by-side comparison of every DBSCAN implementation in the workspace,
//! driven through the `ClusterEngine` façade.
//!
//! ```text
//! cargo run --release --example compare_algorithms
//! ```
//!
//! Runs every [`Algo`] — RT-DBSCAN, FDBSCAN (with and without early exit),
//! G-DBSCAN, CUDA-DClust+ and the sequential reference — on its native
//! backend over the same ionosphere-like dataset, checks that they all
//! agree, and prints the work / memory / simulated-time comparison — a
//! miniature version of the paper's Figure 4.

use rtdbscan::metrics::{adjusted_rand_index, same_clustering};
use rtdbscan_datasets::{generate, PaperDataset};
use rtdbscan_repro::prelude::*;

fn main() {
    let points = generate(PaperDataset::Ionosphere3d, 12_000, 42);
    let params = DbscanParams::new(0.5, 8).expect("valid parameters");
    println!(
        "3DIono-like dataset: {} points, eps={}, minPts={}",
        points.len(),
        params.eps,
        params.min_pts
    );
    println!();

    let engines: Vec<ClusterEngine> = Algo::ALL
        .iter()
        .map(|&algo| {
            ClusterEngine::builder()
                .algorithm(algo)
                .params(params)
                .build()
                .expect("valid engine configuration")
        })
        .collect();

    let reference = ClassicDbscan::cluster(&points, params).expect("reference run");

    println!(
        "{:<22} {:<14} {:>9} {:>9} {:>14} {:>14} {:>12} {:>8}",
        "algorithm",
        "backend",
        "clusters",
        "noise",
        "sim time (s)",
        "wall time (s)",
        "device MiB",
        "ARI"
    );
    for engine in &engines {
        match engine.run(&points) {
            Ok(run) => {
                assert!(
                    same_clustering(&reference, &run.clustering, &points, params),
                    "{} disagrees with the reference clustering",
                    engine.algo().name()
                );
                println!(
                    "{:<22} {:<14} {:>9} {:>9} {:>14.6} {:>14.3} {:>12.1} {:>8.3}",
                    engine.algo().name(),
                    engine.index_kind().name(),
                    run.clustering.num_clusters(),
                    run.clustering.noise_count(),
                    engine.simulate(&run).total().as_secs_f64(),
                    run.timings.total().as_secs_f64(),
                    run.device_bytes as f64 / (1024.0 * 1024.0),
                    adjusted_rand_index(&reference, &run.clustering)
                );
            }
            Err(err) => {
                println!("{:<22} failed: {err}", engine.algo().name());
            }
        }
    }
    println!();
    println!("all implementations produced equivalent clusterings (core points identical,");
    println!("border assignments valid); simulated times are for the modelled RTX 2060.");
}

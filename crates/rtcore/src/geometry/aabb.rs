//! Axis-aligned bounding boxes.

use super::{Point3, Ray};

/// An axis-aligned bounding box (AABB).
///
/// AABBs serve two roles, matching Section II of the paper:
/// * the *bounds program* of a sphere primitive produces the AABB that
///   encloses the ε-sphere around a data point, and
/// * every internal node of the BVH stores the AABB enclosing its subtree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Point3,
    /// Maximum corner.
    pub max: Point3,
}

impl Aabb {
    /// An "empty" box that any point or box can be merged into.
    pub const EMPTY: Aabb = Aabb {
        min: Point3 {
            x: f32::INFINITY,
            y: f32::INFINITY,
            z: f32::INFINITY,
        },
        max: Point3 {
            x: f32::NEG_INFINITY,
            y: f32::NEG_INFINITY,
            z: f32::NEG_INFINITY,
        },
    };

    /// Construct a box from explicit corners.
    ///
    /// The caller is responsible for `min <= max` component-wise; use
    /// [`Aabb::from_points`] when that is not guaranteed.
    #[inline]
    pub const fn new(min: Point3, max: Point3) -> Self {
        Aabb { min, max }
    }

    /// Construct the smallest box containing both points.
    #[inline]
    pub fn from_points(a: Point3, b: Point3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Construct the box enclosing a sphere of `radius` centred at `center`.
    ///
    /// This is exactly the user-specified *bounds program* the paper supplies
    /// to OWL for its sphere primitives.
    #[inline]
    pub fn from_sphere(center: Point3, radius: f32) -> Self {
        Aabb {
            min: Point3::new(center.x - radius, center.y - radius, center.z - radius),
            max: Point3::new(center.x + radius, center.y + radius, center.z + radius),
        }
    }

    /// The smallest box enclosing every point in the slice.
    ///
    /// Returns [`Aabb::EMPTY`] for an empty slice.
    pub fn from_point_slice(points: &[Point3]) -> Self {
        points
            .iter()
            .fold(Aabb::EMPTY, |acc, &p| acc.grown_to_include(p))
    }

    /// True if the box contains no space (as produced by [`Aabb::EMPTY`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Centre of the box.  Meaningless for empty boxes.
    #[inline]
    pub fn center(&self) -> Point3 {
        Point3::new(
            0.5 * (self.min.x + self.max.x),
            0.5 * (self.min.y + self.max.y),
            0.5 * (self.min.z + self.max.z),
        )
    }

    /// Extent (max - min) along each axis.  Zero for empty boxes.
    #[inline]
    pub fn extent(&self) -> (f32, f32, f32) {
        if self.is_empty() {
            (0.0, 0.0, 0.0)
        } else {
            (
                self.max.x - self.min.x,
                self.max.y - self.min.y,
                self.max.z - self.min.z,
            )
        }
    }

    /// Surface area of the box; the quantity the SAH builder minimises.
    #[inline]
    pub fn surface_area(&self) -> f32 {
        let (dx, dy, dz) = self.extent();
        2.0 * (dx * dy + dy * dz + dz * dx)
    }

    /// Index of the longest axis (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn longest_axis(&self) -> usize {
        let (dx, dy, dz) = self.extent();
        if dx >= dy && dx >= dz {
            0
        } else if dy >= dz {
            1
        } else {
            2
        }
    }

    /// The union of two boxes.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Returns a copy grown to include `p`.
    #[inline]
    pub fn grown_to_include(&self, p: Point3) -> Aabb {
        Aabb {
            min: self.min.min(p),
            max: self.max.max(p),
        }
    }

    /// True if `p` lies inside or on the boundary of the box.
    #[inline]
    pub fn contains_point(&self, p: Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// True if `other` is entirely contained in `self` (empty boxes are
    /// contained in everything).
    #[inline]
    pub fn contains_aabb(&self, other: &Aabb) -> bool {
        if other.is_empty() {
            return true;
        }
        self.contains_point(other.min) && self.contains_point(other.max)
    }

    /// True if the two boxes overlap (share at least one point).
    #[inline]
    pub fn intersects_aabb(&self, other: &Aabb) -> bool {
        !(self.is_empty() || other.is_empty())
            && self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Slab test: does `ray` hit this box within its `[t_min, t_max]`
    /// interval?
    ///
    /// This is the test the RT cores perform in hardware at every internal
    /// BVH node.  For the epsilon-length rays used by the neighbour-search
    /// reduction it degenerates to "is the ray origin inside the box?", which
    /// the implementation short-circuits for exactness (a zero-length ray has
    /// no usable direction).
    #[inline]
    pub fn intersects_ray(&self, ray: &Ray) -> bool {
        if self.is_empty() {
            return false;
        }
        // Degenerate (point-like) rays: containment test on the origin.
        if ray.interval.t_max <= super::EPSILON_RAY_TMAX {
            return self.contains_point(ray.origin);
        }
        let mut t0 = ray.interval.t_min;
        let mut t1 = ray.interval.t_max;
        for axis in 0..3 {
            let inv_d = 1.0 / ray.direction[axis];
            let mut near = (self.min[axis] - ray.origin[axis]) * inv_d;
            let mut far = (self.max[axis] - ray.origin[axis]) * inv_d;
            if inv_d < 0.0 {
                std::mem::swap(&mut near, &mut far);
            }
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t0 > t1 {
                return false;
            }
        }
        true
    }
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Ray, Vec3};

    #[test]
    fn empty_box_properties() {
        let e = Aabb::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.extent(), (0.0, 0.0, 0.0));
        assert!(!e.contains_point(Point3::ORIGIN));
        assert!(Aabb::default().is_empty());
    }

    #[test]
    fn from_sphere_bounds() {
        let b = Aabb::from_sphere(Point3::new(1.0, 2.0, 3.0), 0.5);
        assert_eq!(b.min, Point3::new(0.5, 1.5, 2.5));
        assert_eq!(b.max, Point3::new(1.5, 2.5, 3.5));
        assert!(b.contains_point(Point3::new(1.0, 2.0, 3.0)));
    }

    #[test]
    fn union_and_grow() {
        let a = Aabb::from_sphere(Point3::ORIGIN, 1.0);
        let b = Aabb::from_sphere(Point3::new(5.0, 0.0, 0.0), 1.0);
        let u = a.union(&b);
        assert!(u.contains_aabb(&a));
        assert!(u.contains_aabb(&b));
        assert_eq!(u.min.x, -1.0);
        assert_eq!(u.max.x, 6.0);

        let g = Aabb::EMPTY.grown_to_include(Point3::new(1.0, 1.0, 1.0));
        assert!(!g.is_empty());
        assert_eq!(g.min, g.max);
    }

    #[test]
    fn from_point_slice_encloses_everything() {
        let pts = [
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, -2.0, 3.0),
            Point3::new(-5.0, 4.0, 2.0),
        ];
        let b = Aabb::from_point_slice(&pts);
        for p in pts {
            assert!(b.contains_point(p));
        }
        assert!(Aabb::from_point_slice(&[]).is_empty());
    }

    #[test]
    fn surface_area_and_longest_axis() {
        let b = Aabb::new(Point3::ORIGIN, Point3::new(2.0, 1.0, 1.0));
        assert_eq!(b.surface_area(), 2.0 * (2.0 + 1.0 + 2.0));
        assert_eq!(b.longest_axis(), 0);
        let b = Aabb::new(Point3::ORIGIN, Point3::new(1.0, 3.0, 1.0));
        assert_eq!(b.longest_axis(), 1);
        let b = Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 4.0));
        assert_eq!(b.longest_axis(), 2);
    }

    #[test]
    fn aabb_overlap() {
        let a = Aabb::from_sphere(Point3::ORIGIN, 1.0);
        let b = Aabb::from_sphere(Point3::new(1.5, 0.0, 0.0), 1.0);
        let c = Aabb::from_sphere(Point3::new(10.0, 0.0, 0.0), 1.0);
        assert!(a.intersects_aabb(&b));
        assert!(!a.intersects_aabb(&c));
        assert!(!a.intersects_aabb(&Aabb::EMPTY));
    }

    #[test]
    fn degenerate_ray_uses_containment() {
        let b = Aabb::from_sphere(Point3::ORIGIN, 1.0);
        let inside = Ray::epsilon_ray(Point3::new(0.5, 0.5, 0.5));
        let outside = Ray::epsilon_ray(Point3::new(2.0, 0.0, 0.0));
        assert!(b.intersects_ray(&inside));
        assert!(!b.intersects_ray(&outside));
    }

    #[test]
    fn finite_ray_slab_test() {
        let b = Aabb::new(Point3::new(1.0, -1.0, -1.0), Point3::new(2.0, 1.0, 1.0));
        let hit = Ray::new(Point3::ORIGIN, Vec3::new(1.0, 0.0, 0.0), 0.0, 10.0);
        let miss_direction = Ray::new(Point3::ORIGIN, Vec3::new(0.0, 1.0, 0.0), 0.0, 10.0);
        let too_short = Ray::new(Point3::ORIGIN, Vec3::new(1.0, 0.0, 0.0), 0.0, 0.5);
        assert!(b.intersects_ray(&hit));
        assert!(!b.intersects_ray(&miss_direction));
        assert!(!b.intersects_ray(&too_short));
    }

    #[test]
    fn center_is_midpoint() {
        let b = Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(2.0, 4.0, 6.0));
        assert_eq!(b.center(), Point3::new(1.0, 2.0, 3.0));
    }
}

//! CLI for the workspace analyzer.
//!
//! ```text
//! cargo run -p rtdbscan-analyze -- [analyze] [--root <dir>] [--rule <id>]
//!                                  [--format human|json] [--deny-warnings]
//!                                  [--list-rules]
//! ```
//!
//! Exit code 0 when no findings survive waivers, 1 otherwise (findings are
//! deny-by-default; `--deny-warnings` is accepted for CI symmetry and
//! changes nothing).  The `cargo xtask analyze` alias in
//! `.cargo/config.toml` forwards here.

use std::path::PathBuf;
use std::process::ExitCode;

use rtdbscan_analyze::engine::{analyze_workspace, render_human, render_json};
use rtdbscan_analyze::rules::registry;

struct Options {
    root: PathBuf,
    rule: Option<String>,
    json: bool,
    list_rules: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: rtdbscan-analyze [analyze] [--root <dir>] [--rule <id>] \
         [--format human|json] [--deny-warnings] [--list-rules]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        root: default_root(),
        rule: None,
        json: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // Subcommand form (`cargo xtask analyze`); only one verb exists.
            "analyze" => {}
            "--root" => match args.next() {
                Some(dir) => opts.root = PathBuf::from(dir),
                None => usage(),
            },
            "--rule" => match args.next() {
                Some(rule) => opts.rule = Some(rule),
                None => usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("human") => opts.json = false,
                _ => usage(),
            },
            // Findings are already errors; flag kept so CI invocations read
            // like the other lint jobs.
            "--deny-warnings" => {}
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` when built in-tree,
/// falling back to the current directory (e.g. a copied binary).
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let opts = parse_args();

    if opts.list_rules {
        for rule in registry() {
            println!("{:<16} {}", rule.name, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(rule) = &opts.rule {
        if !registry().iter().any(|r| r.name == rule.as_str()) {
            eprintln!("unknown rule `{rule}`; try --list-rules");
            return ExitCode::from(2);
        }
    }

    let report = match analyze_workspace(&opts.root, opts.rule.as_deref()) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("analyze: failed to walk {}: {err}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    print!(
        "{}",
        if opts.json {
            render_json(&report)
        } else {
            render_human(&report)
        }
    );

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Bounded-exhaustive interleaving models for the workspace's lock-free
//! core, driven by the in-tree `loom` shim (`crates/shims/loom`).
//!
//! Run with:
//!
//! ```text
//! cargo test -p rtdbscan-analyze --features loom-models
//! ```
//!
//! Each `loom::model` closure is replayed under every distinct thread
//! schedule the bounded scheduler can reach (preemption-bounded DFS, all
//! atomic/mutex operations are yield points, sequentially consistent
//! semantics).  The assertions therefore hold on *every* interleaving, not
//! just the ones a stress test happens to hit.  The suite is compiled only
//! under the `loom-models` feature, which switches `rtcore` and `rtdbscan`
//! onto the model-aware atomics.
#![cfg(feature = "loom-models")]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;
use rtcore::hardware::{SharedCounters, WorkCounters};
use rtdbscan::disjoint_set::{ConcurrentDisjointSet, EpochDisjointSet};

/// Two threads union disjoint pairs that share an element; every schedule
/// must converge to one set {0,1,2} whose representative is the smallest
/// index (the forest links larger roots under smaller ones).
#[test]
fn concurrent_dsu_overlapping_unions_converge() {
    let schedules = loom::model(|| {
        let dsu = Arc::new(ConcurrentDisjointSet::new(3));
        let a = {
            let dsu = Arc::clone(&dsu);
            thread::spawn(move || {
                dsu.union(0, 1);
            })
        };
        let b = {
            let dsu = Arc::clone(&dsu);
            thread::spawn(move || {
                dsu.union(1, 2);
            })
        };
        a.join().unwrap();
        b.join().unwrap();
        assert!(dsu.same_set(0, 2), "unions did not merge transitively");
        assert_eq!(dsu.find(0), 0, "links must point at the smallest index");
        assert_eq!(dsu.find(1), 0);
        assert_eq!(dsu.find(2), 0);
    });
    assert!(schedules > 1, "scheduler explored only one interleaving");
}

/// Two threads racing to union the *same* pair: the linking CAS guarantees
/// exactly one of them performs the merge in every interleaving (this is
/// the linearization point of `union`).
#[test]
fn concurrent_dsu_racing_same_pair_merges_once() {
    loom::model(|| {
        let dsu = Arc::new(ConcurrentDisjointSet::new(2));
        let spawn_union = |dsu: &Arc<ConcurrentDisjointSet>| {
            let dsu = Arc::clone(dsu);
            thread::spawn(move || dsu.union(0, 1))
        };
        let a = spawn_union(&dsu);
        let b = spawn_union(&dsu);
        let merged_a = a.join().unwrap();
        let merged_b = b.join().unwrap();
        assert!(
            merged_a ^ merged_b,
            "exactly one thread must win the linking CAS (a={merged_a}, b={merged_b})"
        );
        let (_, merges) = dsu.op_counts();
        assert_eq!(merges, 1, "merge counter must record the single link");
    });
}

/// A `find` racing a `union` observes either the pre-link or post-link
/// forest — never a torn state — and the post-join answer is always the
/// merged root.  Path halving's CAS may rewrite parents concurrently, which
/// is exactly what this model exercises.
#[test]
fn concurrent_dsu_find_during_union_is_linearizable() {
    loom::model(|| {
        let dsu = Arc::new(ConcurrentDisjointSet::new(3));
        // Pre-link 1 under 2 so the racing union must re-root a chain.
        dsu.union(1, 2);
        let u = {
            let dsu = Arc::clone(&dsu);
            thread::spawn(move || {
                dsu.union(0, 2);
            })
        };
        let f = {
            let dsu = Arc::clone(&dsu);
            thread::spawn(move || dsu.find(2))
        };
        let observed = f.join().unwrap();
        u.join().unwrap();
        assert!(
            observed == 0 || observed == 1,
            "find must see a valid pre- or post-union root, got {observed}"
        );
        assert_eq!(dsu.find(2), 0, "post-join root must be the merged minimum");
        assert!(dsu.same_set(0, 1));
    });
}

/// The epoch union-find is `&mut`-only, so stage-2 shares it behind a
/// mutex; the model proves lock-protected unions from two threads plus an
/// O(1) epoch reset behave like their serial counterparts in every
/// schedule.
#[test]
fn epoch_dsu_under_mutex_with_reset() {
    loom::model(|| {
        let dsu = Arc::new(Mutex::new(EpochDisjointSet::new(4)));
        let a = {
            let dsu = Arc::clone(&dsu);
            thread::spawn(move || {
                dsu.lock().union(0, 1);
            })
        };
        let b = {
            let dsu = Arc::clone(&dsu);
            thread::spawn(move || {
                dsu.lock().union(2, 3);
            })
        };
        a.join().unwrap();
        b.join().unwrap();
        let mut d = dsu.lock();
        assert!(d.same_set(0, 1));
        assert!(d.same_set(2, 3));
        assert!(!d.same_set(1, 2), "independent unions must stay disjoint");
        let epoch_before = d.epoch();
        d.reset();
        assert_eq!(d.epoch(), epoch_before + 1, "reset must bump the epoch");
        assert!(
            !d.same_set(0, 1),
            "the O(1) epoch reset must forget every union"
        );
    });
}

/// Two threads folding tallies into one `SharedCounters`: the saturating
/// CAS merge must clamp at `u64::MAX` (never wrap) in every interleaving,
/// including the one where both threads read the near-max value first.
#[test]
fn shared_counters_cas_merge_saturates() {
    loom::model(|| {
        let shared = Arc::new(SharedCounters::new());
        let spawn_add = |shared: &Arc<SharedCounters>, rays: u64| {
            let shared = Arc::clone(shared);
            thread::spawn(move || {
                let mut local = WorkCounters::ZERO;
                local.rays = rays;
                shared.add(&local);
            })
        };
        let a = spawn_add(&shared, u64::MAX - 1);
        let b = spawn_add(&shared, 5);
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(
            shared.snapshot().rays,
            u64::MAX,
            "saturating merge must clamp, not wrap"
        );
    });
}

/// With values far from the ceiling the same CAS merge must be *exact* —
/// no lost updates under any schedule (the classic load/store race the
/// saturating loop exists to avoid).
#[test]
fn shared_counters_cas_merge_is_exact() {
    loom::model(|| {
        let shared = Arc::new(SharedCounters::new());
        let spawn_add = |shared: &Arc<SharedCounters>, n: u64| {
            let shared = Arc::clone(shared);
            thread::spawn(move || {
                let mut local = WorkCounters::ZERO;
                local.dist_comps = n;
                shared.add(&local);
            })
        };
        let a = spawn_add(&shared, 3);
        let b = spawn_add(&shared, 4);
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(shared.snapshot().dist_comps, 7, "lost update detected");
    });
}

/// Model of the sharded count-flush pattern audited in
/// `rtcore::index::sharded::trace_count_packet_sharded`: each packet owns
/// private tally cells, flushes `cell − 1` (self-exclusion) into a shared
/// per-query slot with a Relaxed `fetch_add`, and caller ordinals are
/// disjoint across packets (single writer per slot).  The join then
/// publishes the totals.  The model proves the flushed counts are exact in
/// every interleaving of two packets — i.e. the Relaxed orderings and the
/// `saturating_sub(1)` algebra never lose or double-count a hit.
#[test]
fn sharded_flush_self_exclusion_is_exact() {
    loom::model(|| {
        // Shared per-query count slots; packet 0 owns slot 0, packet 1
        // owns slot 1 (disjoint caller ordinals).
        let counts = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);
        let spawn_packet = |counts: &Arc<[AtomicU64; 2]>, slot: usize, neighbors: u64| {
            let counts = Arc::clone(counts);
            thread::spawn(move || {
                // Packet-local cell: the query's own hit plus its true
                // neighbours, accumulated by that packet's sub-launches.
                let cell = AtomicU64::new(0);
                for _ in 0..=neighbors {
                    cell.fetch_add(1, Ordering::Relaxed);
                }
                // Flush with self-exclusion, exactly like the audited loop.
                let count = cell.load(Ordering::Relaxed).saturating_sub(1);
                if count > 0 {
                    counts[slot].fetch_add(count, Ordering::Relaxed);
                }
            })
        };
        let a = spawn_packet(&counts, 0, 2);
        let b = spawn_packet(&counts, 1, 3);
        a.join().unwrap();
        b.join().unwrap();
        // The joins above are the happens-before edges that publish the
        // Relaxed writes to this reader.
        assert_eq!(counts[0].load(Ordering::Relaxed), 2);
        assert_eq!(counts[1].load(Ordering::Relaxed), 3);
    });
}

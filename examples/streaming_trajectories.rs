//! Streaming demo: cluster a live Porto-style taxi-GPS feed with a sliding
//! window.
//!
//! ```text
//! cargo run --release --example streaming_trajectories
//! ```
//!
//! A replayed trajectory stream is ingested in batches; after each batch
//! the demo snapshots the clustering of the current window and prints how
//! the hotspot structure evolves, together with the update-policy decisions
//! (refit vs rebuild) and their counted cost.

use rtdbscan::engine::{Algo, ClusterEngine, IndexKind};
use rtdbscan_datasets::{PaperDataset, PointStream, StreamConfig};
use rtdbscan_stream::{EngineStreamExt, WindowPolicy};

fn main() {
    // --- 1. A replayable trajectory feed: 20k GPS fixes at 2k fixes/s. ---
    let stream = PointStream::replay(
        PaperDataset::PortoTaxi,
        StreamConfig {
            total_points: 20_000,
            batch_size: 1_000,
            points_per_second: 2_000.0,
            seed: 42,
        },
    );

    // --- 2. A clusterer keeping the last 4 seconds of traffic: the same
    // engine configuration that drives batch runs and sessions also drives
    // the streaming shape (`EngineStreamExt::stream`).
    let engine = ClusterEngine::builder()
        .algorithm(Algo::Rt)
        .index(IndexKind::WideBatched)
        .eps(0.5)
        .min_pts(8)
        .build()
        .expect("valid engine configuration");
    let mut clusterer = engine
        .stream(WindowPolicy::Time(4.0))
        .expect("valid window policy");

    println!("streaming Porto-style taxi fixes, 4 s sliding window, eps=0.5 minPts=8");
    println!(
        "{:>5} {:>8} {:>9} {:>9} {:>7} {:>7} {:>7}",
        "batch", "window", "clusters", "noise", "core", "refit", "rebuild"
    );

    // --- 3. Ingest batch by batch, snapshotting as we go. ---------------
    for (i, batch) in stream.enumerate() {
        let timed: Vec<_> = batch.iter().map(|t| (t.point, t.time)).collect();
        let report = clusterer
            .ingest(&timed)
            .expect("replayed stream points are finite");
        let snapshot = clusterer.snapshot();
        println!(
            "{:>5} {:>8} {:>9} {:>9} {:>7} {:>7} {:>7}",
            i,
            clusterer.len(),
            snapshot.num_clusters(),
            snapshot.noise_count(),
            snapshot.core_count(),
            if report.refitted { "yes" } else { "-" },
            if report.rebuilt { "yes" } else { "-" },
        );
    }

    // --- 4. What did the update policy do, and what did it cost? --------
    let stats = clusterer.stats();
    let counters = clusterer.counters();
    println!(
        "\nupdate policy: {} refits, {} rebuilds over {} batches",
        stats.refits, stats.rebuilds, 20
    );
    println!(
        "snapshots: {} reused the incremental partition, {} re-formed it",
        stats.clean_snapshots, stats.dirty_snapshots
    );
    println!(
        "counted work: {} rays, {} binary + {} wide node visits, {} refit node ops, {} build prims",
        counters.rays,
        counters.node_visits,
        counters.wide_node_visits,
        counters.refit_node_ops,
        counters.build_prims
    );
    let device = rtcore::hardware::DeviceModel::default();
    println!(
        "simulated RT-device time for all streaming work: {}",
        device.total_time(&counters, rtcore::hardware::ExecutionPath::RtCore)
    );
}

//! Geospatial hotspot detection on taxi GPS data — the workload class the
//! paper's introduction motivates (density-based clustering of 2-D
//! geospatial data).
//!
//! ```text
//! cargo run --release -p rtdbscan --example geospatial_hotspots
//! ```
//!
//! Generates a Porto-like taxi trajectory dataset, finds pick-up hotspots
//! with RT-DBSCAN, and compares against the FDBSCAN baseline to show where
//! the RT acceleration pays off.

use rtdbscan::{DbscanAlgorithm, DbscanParams, Fdbscan, RtDbscan};
use rtdbscan_datasets::{generate, PaperDataset};

fn main() {
    let n = 60_000;
    let points = generate(PaperDataset::PortoTaxi, n, 42);
    println!("Porto-like taxi dataset: {} GPS points", points.len());

    // Hotspots: dense pick-up areas.  minPts is high so only genuinely busy
    // areas qualify, mirroring the paper's Porto configuration (0.5, 1000)
    // scaled to this dataset size.
    let params = DbscanParams::new(0.5, 60).expect("valid parameters");

    let rt = RtDbscan::default();
    let fd = Fdbscan::default();
    let rt_run = rt.run(&points, params).expect("RT-DBSCAN run");
    let fd_run = fd.run(&points, params).expect("FDBSCAN run");

    // The two implementations must agree on the clustering.
    assert_eq!(rt_run.clustering.core, fd_run.clustering.core);
    println!(
        "hotspots found: {} (RT-DBSCAN) / {} (FDBSCAN), {} noise points",
        rt_run.clustering.num_clusters(),
        fd_run.clustering.num_clusters(),
        rt_run.clustering.noise_count()
    );
    let sizes = rt_run.clustering.cluster_sizes();
    for (i, size) in sizes.iter().take(5).enumerate() {
        println!("  hotspot {i}: {size} pick-up points");
    }
    if sizes.len() > 5 {
        println!("  … and {} smaller hotspots", sizes.len() - 5);
    }

    // Simulated device comparison (the paper's Fig 5b / 6b setting).
    let device = rtcore::hardware::DeviceModel::rtx2060();
    let rt_sim = rt_run.simulate_on(&device).total();
    let fd_sim = fd_run.simulate_on(&device).total();
    println!(
        "simulated RTX 2060 time: RT-DBSCAN {rt_sim}, FDBSCAN {fd_sim} ({:.2}x speedup)",
        fd_sim.as_secs_f64() / rt_sim.as_secs_f64()
    );
    println!(
        "wall-clock on this machine: RT-DBSCAN {:.2?}, FDBSCAN {:.2?}",
        rt_run.timings.total(),
        fd_run.timings.total()
    );
}

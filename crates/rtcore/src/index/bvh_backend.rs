//! BVH-backed neighbour-search backends: the binary traversal oracle and
//! the wide (BVH4) batched engine.

use super::{
    charge_candidate, charge_candidates, uncharge_candidates, IndexCapabilities, IndexKind,
    Neighbor, NeighborFlow, NeighborIndex, NeighborIndexBuilder, NeighborSink, NeighborVisitor,
};
use crate::bvh::BuilderKind;
use crate::bvh::{
    compact_coincident, refit, spheres_from_points, Bvh, BvhBuilder, CompactWideNodes, LbvhBuilder,
    MedianSplitBuilder, PrimLanes, SahBuilder, WideBvh, WideLayout,
};
use crate::error::{Error, Result};
use crate::fault::{CancelScope, FaultInjector, FaultSite, MemoryBudget};
use crate::geometry::{Point3, Ray};
use crate::hardware::sat_bump;
use crate::hardware::WorkCounters;
use crate::pipeline::GeometryKind;
use crate::simd::SimdLevel;
use crate::telemetry::{
    NodeHeatmap, PhaseKind, Telemetry, DIST_COMPS_BUCKETS, LATENCY_US_BUCKETS, OCCUPANCY_BUCKETS,
};
use crate::traversal::{
    traverse_batch_runs_with_scratch_sink_cancel, traverse_batch_scene_with_scratch_sink,
    traverse_wide_scene_with_scratch_sink, traverse_with_scratch_sink, LeafVisit, NoSink,
    QueryOrder, ReorderScratch, ScratchPool, Traversal, TraversalScratch, WideScene,
};
use parking_lot::Mutex;
use std::collections::HashSet;

/// Monomorphise one traversal call over the optional heatmap: a profiling
/// run binds the visit sink to the `&NodeHeatmap`, every other run binds
/// [`NoSink`] — whose `visit` inlines to nothing, so the default arm
/// compiles to the exact pre-telemetry engine body.
macro_rules! with_sink {
    ($heatmap:expr, |$sink:ident| $call:expr) => {
        match $heatmap {
            Some(h) => {
                let $sink = h;
                $call
            }
            None => {
                let $sink = NoSink;
                $call
            }
        }
    };
}

/// Caller ordinal of packet position `pos` under an optional launch
/// permutation (identity when the launch runs in caller order).
#[inline]
pub(crate) fn caller_ordinal(perm: Option<&[u32]>, pos: usize) -> usize {
    perm.map_or(pos, |p| p[pos] as usize)
}

/// Per-worker reusable state for one packet (or one single-ray query):
/// the staged epsilon rays plus the traversal scratch.  Checked out of the
/// core's [`ScratchPool`] for the duration of one work item; grow-only, so
/// the steady state never touches the allocator.
#[derive(Debug, Default)]
struct PacketScratch {
    rays: Vec<Ray>,
    trav: TraversalScratch,
    /// Per-packet-query neighbour counts for the count output mode (one
    /// shared-cell flush per query instead of one per neighbour).
    counts: Vec<u64>,
}

/// State shared by the binary and wide backends: the built tree, the
/// compaction mapping, and the accounting.
#[derive(Debug)]
struct BvhCore {
    n: usize,
    eps: f32,
    bvh: Option<Bvh>,
    /// `representative_of[i]` is the primitive standing for point `i`
    /// (identity when compaction is off or merged nothing).
    representative_of: Vec<u32>,
    compacting: bool,
    geometry: GeometryKind,
    min_parallel_launch: usize,
    build_counters: WorkCounters,
    query_counters: Mutex<WorkCounters>,
    /// Reusable per-worker traversal scratch (never more items than the
    /// peak number of concurrent workers).
    scratch: ScratchPool<PacketScratch>,
    /// Shared span/metrics recorder (disabled under
    /// [`crate::telemetry::TelemetryConfig::Off`] — every operation on it
    /// is then a no-op).
    telemetry: Telemetry,
}

impl BvhCore {
    fn build(config: &NeighborIndexBuilder, points: &[Point3], eps: f32) -> Result<Self> {
        let telemetry = Telemetry::new(config.telemetry);
        let mut build_span = telemetry.span(PhaseKind::LbvhBuild);
        let mut build_counters = WorkCounters::ZERO;
        let (spheres, representative_of) = if config.compaction {
            let compaction = compact_coincident(points, eps);
            sat_bump(&mut build_counters.compaction_merges, compaction.merged);
            // The bounds program still runs once per *input* primitive
            // before the device merges duplicates, so charge those too.
            sat_bump(&mut build_counters.build_prims, compaction.merged);
            (compaction.spheres, compaction.representative_of)
        } else {
            (
                spheres_from_points(points, eps),
                (0..points.len() as u32).collect(),
            )
        };
        let bvh = if spheres.is_empty() {
            None
        } else {
            Some(match config.bvh_builder {
                BuilderKind::BinnedSah => SahBuilder {
                    max_leaf_size: config.max_leaf_size,
                    ..SahBuilder::default()
                }
                .build(spheres)?,
                BuilderKind::Lbvh => LbvhBuilder {
                    max_leaf_size: config.max_leaf_size,
                    parallelism: config.build_parallelism,
                }
                .build_with_telemetry(spheres, &telemetry)?,
                BuilderKind::MedianSplit => MedianSplitBuilder {
                    max_leaf_size: config.max_leaf_size,
                }
                .build(spheres)?,
            })
        };
        if let Some(b) = &bvh {
            build_counters += b.build_counters;
        }
        build_span.add_counters(build_counters);
        drop(build_span);
        Ok(BvhCore {
            n: points.len(),
            eps,
            bvh,
            representative_of,
            compacting: config.compaction,
            geometry: config.geometry,
            min_parallel_launch: config.min_parallel_launch,
            build_counters,
            query_counters: Mutex::new(WorkCounters::ZERO),
            scratch: ScratchPool::new(),
            telemetry,
        })
    }

    /// Wrap an already-built tree (a shard's BLAS): no compaction pass, no
    /// builder dispatch — the sharded scene performed both globally.  The
    /// `representative_of` table stays empty (identity fallback); the
    /// spheres carry their global point indices, so queries report global
    /// ids without translation.
    fn from_prebuilt(
        config: &NeighborIndexBuilder,
        bvh: Bvh,
        eps: f32,
        telemetry: Telemetry,
    ) -> Self {
        let build_counters = bvh.build_counters;
        BvhCore {
            n: bvh.primitives.len(),
            eps,
            bvh: Some(bvh),
            // analyze-allow: hot-path-alloc -- constructor: one empty vec per scene build, not per query
            representative_of: Vec::new(),
            compacting: false,
            geometry: config.geometry,
            min_parallel_launch: config.min_parallel_launch,
            build_counters,
            query_counters: Mutex::new(WorkCounters::ZERO),
            scratch: ScratchPool::new(),
            telemetry,
        }
    }

    /// The telemetry handle, exposed only when it records (the trait's
    /// `telemetry()` contract).
    fn telemetry_handle(&self) -> Option<&Telemetry> {
        self.telemetry.is_enabled().then_some(&self.telemetry)
    }

    /// Record one batched launch into the metrics registry, when enabled:
    /// wall latency, per-query candidate work, and — for packeted
    /// launches — the mean packet occupancy.  `start_ns` comes from
    /// [`Telemetry::now_ns`] before the launch (0 on disabled handles, no
    /// clock read).
    fn record_launch_metrics(
        &self,
        queries: usize,
        batch_size: Option<usize>,
        start_ns: u64,
        total: &WorkCounters,
    ) {
        let Some(metrics) = self.telemetry.metrics() else {
            return;
        };
        metrics.incr("launches", 1);
        metrics.incr("launched_queries", queries as u64);
        let latency_us = self.telemetry.now_ns().saturating_sub(start_ns) as f64 / 1_000.0;
        metrics.observe("launch_latency_us", LATENCY_US_BUCKETS, latency_us);
        if queries > 0 {
            metrics.observe(
                "dist_comps_per_query",
                DIST_COMPS_BUCKETS,
                total.dist_comps as f64 / queries as f64,
            );
        }
        if let (Some(size), true) = (batch_size, queries > 0) {
            let size = size.max(1);
            let packets = queries.div_ceil(size);
            metrics.observe(
                "packet_occupancy",
                OCCUPANCY_BUCKETS,
                queries as f64 / (packets * size) as f64,
            );
        }
    }

    /// One counted single-ray traversal over the binary tree, invoking
    /// `emit` for every verified neighbour.  The node stack comes from a
    /// caller-held scratch, so repeated queries allocate nothing — and
    /// batch callers check one scratch out per *chunk* of queries rather
    /// than paying a pool round-trip per ray.
    #[allow(clippy::too_many_arguments)]
    fn trace_binary(
        &self,
        query: Point3,
        eps: f32,
        exclude: Option<u32>,
        heatmap: Option<&NodeHeatmap>,
        scratch: &mut TraversalScratch,
        counters: &mut WorkCounters,
        mut emit: impl FnMut(Neighbor, &mut WorkCounters) -> NeighborFlow,
    ) {
        debug_assert!(eps <= self.eps, "query radius exceeds the build radius");
        let Some(bvh) = &self.bvh else { return };
        sat_bump(&mut counters.rays, 1);
        let ray = Ray::epsilon_ray(query);
        let eps_sq = eps * eps;
        let geometry = self.geometry;
        with_sink!(heatmap, |vsink| traverse_with_scratch_sink(
            bvh,
            &ray,
            scratch,
            counters,
            vsink,
            |sphere, counters| {
                charge_candidate(geometry, counters);
                if sphere.center.distance_squared(query) <= eps_sq
                    && Some(sphere.point_index) != exclude
                {
                    let n = Neighbor {
                        index: sphere.point_index,
                        multiplicity: sphere.multiplicity,
                    };
                    match emit(n, counters) {
                        NeighborFlow::Continue => Traversal::Continue,
                        NeighborFlow::Stop => Traversal::Terminate,
                    }
                } else {
                    Traversal::Continue
                }
            }
        ));
    }

    fn record(&self, local: &WorkCounters) {
        *self.query_counters.lock() += *local;
    }

    fn remove_impl(&mut self, retired: &[u32]) -> Result<WorkCounters> {
        // Refuse whenever compaction is configured (not merely when it
        // merged something) so behaviour always matches the advertised
        // `capabilities().refittable`.
        if self.compacting {
            return Err(crate::error::Error::InvalidConfig(
                "cannot remove points from a compacting index: merged primitives \
                 stand for several input points"
                    .into(),
            ));
        }
        let mut counters = WorkCounters::ZERO;
        let mut span = self.telemetry.span(PhaseKind::Refit);
        if let Some(bvh) = &mut self.bvh {
            let dead: HashSet<u32> = retired.iter().copied().collect();
            refit::remove_points(bvh, |idx| dead.contains(&idx), &mut counters);
            self.n = self.n.saturating_sub(retired.len());
            if bvh.primitives.is_empty() {
                self.bvh = None;
            }
        }
        span.add_counters(counters);
        drop(span);
        self.build_counters += counters;
        Ok(counters)
    }

    fn update_impl(&mut self, moved: &[(u32, Point3)]) -> Result<WorkCounters> {
        if self.compacting {
            return Err(crate::error::Error::InvalidConfig(
                "cannot move points of a compacting index: merged primitives \
                 stand for several input points"
                    .into(),
            ));
        }
        let mut counters = WorkCounters::ZERO;
        let mut span = self.telemetry.span(PhaseKind::Refit);
        if let Some(bvh) = &mut self.bvh {
            refit::update_spheres(
                bvh,
                |sphere| {
                    if let Some(&(_, p)) = moved.iter().find(|&&(i, _)| i == sphere.point_index) {
                        sphere.center = p;
                    }
                },
                &mut counters,
            );
        }
        span.add_counters(counters);
        drop(span);
        self.build_counters += counters;
        Ok(counters)
    }

    fn capabilities(&self, kind: IndexKind, batched: bool) -> IndexCapabilities {
        IndexCapabilities {
            kind,
            batched,
            compacting: self.compacting,
            refittable: !self.compacting,
            rt_core: true,
        }
    }
}

// ---------------------------------------------------------------------------
// Binary backend
// ---------------------------------------------------------------------------

/// One-ray-at-a-time traversal of a binary BVH — the reference RT substrate
/// and the oracle the batched engine is verified against.
#[derive(Debug)]
pub struct BinaryBvhIndex {
    core: BvhCore,
    /// Per-node visit profiler, only under
    /// [`crate::telemetry::TelemetryConfig::Profile`].
    heatmap: Option<NodeHeatmap>,
}

impl BinaryBvhIndex {
    /// Build from a [`NeighborIndexBuilder`] configuration (the builder's
    /// `kind` field is ignored — this constructor always builds binary).
    pub fn build(config: &NeighborIndexBuilder, points: &[Point3], eps: f32) -> Result<Self> {
        let core = BvhCore::build(config, points, eps)?;
        let heatmap = config
            .telemetry
            .heatmap_enabled()
            .then(|| core.bvh.as_ref().map(NodeHeatmap::for_binary))
            .flatten();
        Ok(BinaryBvhIndex { core, heatmap })
    }

    /// The underlying binary tree, if any points were indexed.
    pub fn bvh(&self) -> Option<&Bvh> {
        self.core.bvh.as_ref()
    }
}

impl NeighborIndex for BinaryBvhIndex {
    fn len(&self) -> usize {
        self.core.n
    }

    fn eps(&self) -> f32 {
        self.core.eps
    }

    fn capabilities(&self) -> IndexCapabilities {
        self.core.capabilities(IndexKind::BinaryBvh, false)
    }

    fn build_counters(&self) -> WorkCounters {
        self.core.build_counters
    }

    fn counters(&self) -> WorkCounters {
        self.core.build_counters + *self.core.query_counters.lock()
    }

    fn device_bytes(&self) -> u64 {
        self.core.bvh.as_ref().map_or(0, Bvh::device_bytes)
    }

    fn representative_of(&self, index: u32) -> u32 {
        self.core
            .representative_of
            .get(index as usize)
            .copied()
            .unwrap_or(index)
    }

    fn for_each_neighbor(
        &self,
        query: Point3,
        eps: f32,
        exclude: Option<u32>,
        counters: &mut WorkCounters,
        visit: &mut NeighborVisitor<'_>,
    ) {
        let mut local = WorkCounters::ZERO;
        let mut guard = self.core.scratch.acquire();
        self.core.trace_binary(
            query,
            eps,
            exclude,
            self.heatmap.as_ref(),
            &mut guard.trav,
            &mut local,
            |n, c| visit(n, c),
        );
        drop(guard);
        self.core.record(&local);
        *counters += local;
    }

    fn batch_neighbors(
        &self,
        queries: &[Point3],
        eps: f32,
        counters: &mut WorkCounters,
        sink: &NeighborSink<'_>,
    ) {
        // Dispatch chunks of queries, one pooled scratch checkout per chunk
        // (not per ray); chunk boundaries are a pure function of the query
        // count, and per-query counters still fold in query order, so the
        // totals are bit-identical to a per-query dispatch.
        let start_ns = self.core.telemetry.now_ns();
        let chunk_size = super::merge_chunk_size(queries.len());
        let chunks = queries.len().div_ceil(chunk_size);
        let total = super::dispatch_batch(
            chunks,
            queries.len() >= self.core.min_parallel_launch,
            |chunk| {
                let mut local = WorkCounters::ZERO;
                let mut guard = self.core.scratch.acquire();
                let lo = chunk * chunk_size;
                let hi = ((chunk + 1) * chunk_size).min(queries.len());
                for (ordinal, &query) in queries.iter().enumerate().take(hi).skip(lo) {
                    self.core.trace_binary(
                        query,
                        eps,
                        None,
                        self.heatmap.as_ref(),
                        &mut guard.trav,
                        &mut local,
                        |n, c| sink(ordinal, n, c),
                    );
                }
                local
            },
        );
        self.core
            .record_launch_metrics(queries.len(), None, start_ns, &total);
        self.core.record(&total);
        *counters += total;
    }

    fn batch_neighbor_counts(
        &self,
        queries: &[Point3],
        eps: f32,
        exclude_self: bool,
        early_exit: Option<u64>,
        counters: &mut WorkCounters,
        counts: &[std::sync::atomic::AtomicU64],
    ) {
        use std::sync::atomic::Ordering;
        debug_assert!(
            eps <= self.core.eps,
            "query radius exceeds the build radius"
        );
        assert_eq!(
            queries.len(),
            counts.len(),
            "one count cell per launched query"
        );
        let geometry = self.core.geometry;
        let eps_sq = eps * eps;
        let heatmap = self.heatmap.as_ref();
        let start_ns = self.core.telemetry.now_ns();
        // One pooled scratch checkout per chunk of queries (see
        // `batch_neighbors` for the chunking contract).
        let chunk_size = super::merge_chunk_size(queries.len());
        let chunks = queries.len().div_ceil(chunk_size);
        let total = super::dispatch_batch(
            chunks,
            queries.len() >= self.core.min_parallel_launch,
            |chunk| {
                let mut local = WorkCounters::ZERO;
                let Some(bvh) = &self.core.bvh else {
                    return local;
                };
                let mut guard = self.core.scratch.acquire();
                for ordinal in chunk * chunk_size..((chunk + 1) * chunk_size).min(queries.len()) {
                    sat_bump(&mut local.rays, 1);
                    let query = queries[ordinal];
                    let ray = Ray::epsilon_ray(query);
                    let mut count = 0u64;
                    if let Some(min) = early_exit {
                        // Early exit needs the running adjusted count, so
                        // the self-exclusion check stays in the loop —
                        // exactly the sink-mode logic, monomorphised.
                        let rep = if exclude_self {
                            self.representative_of(ordinal as u32)
                        } else {
                            u32::MAX
                        };
                        with_sink!(heatmap, |vsink| traverse_with_scratch_sink(
                            bvh,
                            &ray,
                            &mut guard.trav,
                            &mut local,
                            vsink,
                            |sphere, c| {
                                charge_candidate(geometry, c);
                                if sphere.center.distance_squared(query) <= eps_sq {
                                    let own = exclude_self && sphere.point_index == rep;
                                    let add = if own {
                                        sphere.multiplicity.saturating_sub(1) as u64
                                    } else {
                                        sphere.multiplicity as u64
                                    };
                                    if add > 0 {
                                        count += add;
                                        if count >= min {
                                            return Traversal::Terminate;
                                        }
                                    }
                                }
                                Traversal::Continue
                            },
                        ));
                    } else {
                        // No early exit: branch-free accumulation; the
                        // query's own group always hits at distance zero
                        // and counts one unit less than its multiplicity,
                        // so self-exclusion is a single subtraction at the
                        // end.
                        with_sink!(heatmap, |vsink| traverse_with_scratch_sink(
                            bvh,
                            &ray,
                            &mut guard.trav,
                            &mut local,
                            vsink,
                            |sphere, c| {
                                charge_candidate(geometry, c);
                                let hit = sphere.center.distance_squared(query) <= eps_sq;
                                count += hit as u64 * sphere.multiplicity as u64;
                                Traversal::Continue
                            },
                        ));
                        if exclude_self {
                            count = count.saturating_sub(1);
                        }
                    }
                    if count > 0 {
                        // ordering: Relaxed — each worker adds to distinct
                        // ordinals' cells within one launch; the caller reads
                        // only after the parallel launch joins.
                        counts[ordinal].fetch_add(count, Ordering::Relaxed);
                    }
                }
                local
            },
        );
        self.core
            .record_launch_metrics(queries.len(), None, start_ns, &total);
        self.core.record(&total);
        *counters += total;
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        self.core.telemetry_handle()
    }

    fn heatmap(&self) -> Option<&NodeHeatmap> {
        self.heatmap.as_ref()
    }

    fn remove(&mut self, retired: &[u32]) -> Result<WorkCounters> {
        let counters = self.core.remove_impl(retired)?;
        // Refits change the node array; a stale depth map would misreport.
        if self.heatmap.is_some() {
            self.heatmap = self.core.bvh.as_ref().map(NodeHeatmap::for_binary);
        }
        Ok(counters)
    }

    fn update(&mut self, moved: &[(u32, Point3)]) -> Result<WorkCounters> {
        let counters = self.core.update_impl(moved)?;
        if self.heatmap.is_some() {
            self.heatmap = self.core.bvh.as_ref().map(NodeHeatmap::for_binary);
        }
        Ok(counters)
    }
}

// ---------------------------------------------------------------------------
// Wide batched backend
// ---------------------------------------------------------------------------

/// The BVH4 scene real RT cores walk: the binary tree is collapsed once at
/// build time and queries launch in fixed-size ray packets, each wide node
/// fetched once per packet (see [`crate::traversal::batch`]).
///
/// Three coherence/layout knobs of the [`NeighborIndexBuilder`] shape the
/// launches: [`QueryOrder::Morton`] sorts query origins along the Z-order
/// curve before packets are cut (outputs restored to caller order
/// bit-identically), [`WideLayout::Quantized`] walks the compact
/// `u8`-quantised node mirror, and the [`crate::simd::SimdPolicy`] selects
/// the hit-mask / leaf-distance kernels once at build.
#[derive(Debug)]
pub struct WideBatchedIndex {
    core: BvhCore,
    wide: Option<WideBvh>,
    /// Quantised node mirror (only when `layout == Quantized`).
    compact: Option<CompactWideNodes>,
    /// SoA primitive lanes for the SIMD leaf-run kernels.
    lanes: Option<PrimLanes>,
    layout: WideLayout,
    query_order: QueryOrder,
    /// SIMD level resolved once at build — never re-detected per launch.
    simd: SimdLevel,
    batch_size: usize,
    /// Worker count resolved once from the builder's `build_parallelism`;
    /// reused by refit-driven re-collapses and quantized re-bakes so
    /// maintenance parallelises exactly like the initial build.
    build_workers: usize,
    /// Pooled buffers for Morton launch reordering.
    reorder: ScratchPool<ReorderScratch>,
    /// Per-node visit profiler, only under
    /// [`crate::telemetry::TelemetryConfig::Profile`].  Both node layouts
    /// mirror each other's order, so one heatmap serves either.
    heatmap: Option<NodeHeatmap>,
    /// Deterministic failpoint handle (disarmed under
    /// [`crate::fault::FaultPlan::Off`], where probes cost nothing).
    fault: FaultInjector,
}

impl WideBatchedIndex {
    /// Build from a [`NeighborIndexBuilder`] configuration (the builder's
    /// `kind` field is ignored — this constructor always builds wide).
    pub fn build(config: &NeighborIndexBuilder, points: &[Point3], eps: f32) -> Result<Self> {
        let fault = FaultInjector::new(config.fault);
        crate::fail_point!(fault, FaultSite::HlbvhBuild);
        let mut core = BvhCore::build(config, points, eps)?;
        let build_workers = config.build_parallelism.resolved();
        crate::fail_point!(fault, FaultSite::Bvh4Collapse);
        let wide = {
            let mut span = core.telemetry.span(PhaseKind::Bvh4Collapse);
            let wide = core
                .bvh
                .as_ref()
                .map(|b| WideBvh::from_binary_parallel(b, build_workers, &core.telemetry));
            if let Some(w) = &wide {
                // The collapse is device-build work, charged with the build.
                core.build_counters += w.collapse_counters;
                span.add_counters(w.collapse_counters);
            }
            wide
        };
        if config.wide_layout == WideLayout::Quantized {
            crate::fail_point!(fault, FaultSite::QuantizedBake);
        }
        let compact = match (config.wide_layout, &wide) {
            (WideLayout::Quantized, Some(w)) => {
                let mut span = core.telemetry.span(PhaseKind::QuantizedBake);
                // Re-encoding the node array is one more device-build pass.
                sat_bump(
                    &mut core.build_counters.build_node_ops,
                    w.node_count() as u64,
                );
                span.add_counters(WorkCounters {
                    build_node_ops: w.node_count() as u64,
                    ..WorkCounters::ZERO
                });
                Some(CompactWideNodes::from_wide_parallel(w, build_workers))
            }
            _ => None,
        };
        let lanes = wide
            .as_ref()
            .map(|w| PrimLanes::from_primitives(&w.primitives));
        let heatmap = config
            .telemetry
            .heatmap_enabled()
            .then(|| wide.as_ref().map(NodeHeatmap::for_wide))
            .flatten();
        let mut this = WideBatchedIndex {
            core,
            wide,
            compact,
            lanes,
            layout: config.wide_layout,
            query_order: config.query_order,
            simd: config.simd.resolve(),
            batch_size: config.batch_size.max(1),
            build_workers,
            reorder: ScratchPool::new(),
            heatmap,
            fault,
        };
        this.enforce_budget(config.memory_budget)?;
        Ok(this)
    }

    /// Enforce a [`MemoryBudget`] on the built structure.  Degradation
    /// order: drop the quantized bake (queries fall back to the exact
    /// full-precision layout — identical answers, conservative-hit work
    /// differences only), then refuse with [`Error::OverBudget`].
    fn enforce_budget(&mut self, budget: MemoryBudget) -> Result<()> {
        let Some(limit) = budget.limit() else {
            return Ok(());
        };
        if self.device_bytes() <= limit {
            return Ok(());
        }
        {
            // Clone the handle so the span outlives the &mut self call.
            let telemetry = self.core.telemetry.clone();
            let mut span = telemetry.span(PhaseKind::Degrade);
            let freed_nodes = self.compact.as_ref().map_or(0, |c| c.nodes.len() as u64);
            self.drop_quantized_bake();
            span.add_counters(WorkCounters {
                misc_ops: freed_nodes,
                ..WorkCounters::ZERO
            });
        }
        let bytes = self.device_bytes();
        if bytes <= limit {
            Ok(())
        } else {
            Err(Error::OverBudget {
                requested: bytes,
                budget: limit,
            })
        }
    }

    /// Drop the quantized node mirror (graceful-degradation step 1),
    /// returning the bytes freed.  The launch path falls back to the
    /// full-precision layout permanently — refits will not re-bake.
    pub(crate) fn drop_quantized_bake(&mut self) -> u64 {
        let freed = self
            .compact
            .as_ref()
            .map_or(0, CompactWideNodes::device_bytes);
        if freed > 0 {
            self.compact = None;
            self.layout = WideLayout::F32;
        }
        freed
    }

    /// True while the quantized node mirror is resident.
    pub fn has_quantized_bake(&self) -> bool {
        self.compact.is_some()
    }

    /// Wrap an already-built binary tree (a shard's BLAS) into the wide
    /// batched engine: collapse to BVH4 (and bake the quantized mirror when
    /// configured) exactly as [`WideBatchedIndex::build`] does, but skip the
    /// compaction/builder front end — the sharded scene ran those globally.
    /// Spans open on the calling thread, so per-shard parallel builds are
    /// visible in the trace through their thread ids.
    pub(crate) fn from_prebuilt(
        config: &NeighborIndexBuilder,
        bvh: Bvh,
        eps: f32,
        telemetry: Telemetry,
    ) -> Result<Self> {
        let fault = FaultInjector::new(config.fault);
        let mut core = BvhCore::from_prebuilt(config, bvh, eps, telemetry);
        let build_workers = config.build_parallelism.resolved();
        crate::fail_point!(fault, FaultSite::Bvh4Collapse);
        let wide = {
            let mut span = core.telemetry.span(PhaseKind::Bvh4Collapse);
            let wide = core
                .bvh
                .as_ref()
                .map(|b| WideBvh::from_binary_parallel(b, build_workers, &core.telemetry));
            if let Some(w) = &wide {
                core.build_counters += w.collapse_counters;
                span.add_counters(w.collapse_counters);
            }
            wide
        };
        if config.wide_layout == WideLayout::Quantized {
            crate::fail_point!(fault, FaultSite::QuantizedBake);
        }
        let compact = match (config.wide_layout, &wide) {
            (WideLayout::Quantized, Some(w)) => {
                let mut span = core.telemetry.span(PhaseKind::QuantizedBake);
                sat_bump(
                    &mut core.build_counters.build_node_ops,
                    w.node_count() as u64,
                );
                span.add_counters(WorkCounters {
                    build_node_ops: w.node_count() as u64,
                    ..WorkCounters::ZERO
                });
                Some(CompactWideNodes::from_wide_parallel(w, build_workers))
            }
            _ => None,
        };
        let lanes = wide
            .as_ref()
            .map(|w| PrimLanes::from_primitives(&w.primitives));
        let heatmap = config
            .telemetry
            .heatmap_enabled()
            .then(|| wide.as_ref().map(NodeHeatmap::for_wide))
            .flatten();
        Ok(WideBatchedIndex {
            core,
            wide,
            compact,
            lanes,
            layout: config.wide_layout,
            query_order: config.query_order,
            simd: config.simd.resolve(),
            batch_size: config.batch_size.max(1),
            build_workers,
            reorder: ScratchPool::new(),
            heatmap,
            fault,
        })
    }

    /// The collapsed wide scene, if any points were indexed.
    pub fn wide_scene(&self) -> Option<&WideBvh> {
        self.wide.as_ref()
    }

    /// The SIMD level this index resolved at build.
    pub fn simd_level(&self) -> SimdLevel {
        self.simd
    }

    /// Sphere-inflated bounds of everything this index holds (empty when no
    /// primitives remain).  The sharded scene's TLAS leaves carry exactly
    /// these boxes.
    pub(crate) fn root_bounds(&self) -> crate::geometry::Aabb {
        self.wide
            .as_ref()
            .map_or(crate::geometry::Aabb::EMPTY, |w| w.scene_bounds)
    }

    /// The scene in the configured traversal layout.
    fn scene(&self) -> Option<WideScene<'_>> {
        let wide = self.wide.as_ref()?;
        Some(match &self.compact {
            Some(nodes) => WideScene::Quantized { wide, nodes },
            None => WideScene::F32(wide),
        })
    }

    /// Rebuild the traversal-time mirrors (compact nodes, SoA lanes) after
    /// the wide scene changed shape.  Returns the work performed — the
    /// quantisation re-encode costs `build_node_ops` exactly as it does at
    /// initial build, so refit-heavy streaming maintenance is charged
    /// honestly.
    fn refresh_layout(&mut self) -> WorkCounters {
        let mut counters = WorkCounters::ZERO;
        self.compact = match (self.layout, &self.wide) {
            (WideLayout::Quantized, Some(w)) => {
                let mut span = self.core.telemetry.span(PhaseKind::QuantizedBake);
                sat_bump(&mut counters.build_node_ops, w.node_count() as u64);
                span.add_counters(WorkCounters {
                    build_node_ops: w.node_count() as u64,
                    ..WorkCounters::ZERO
                });
                Some(CompactWideNodes::from_wide_parallel(w, self.build_workers))
            }
            _ => None,
        };
        self.lanes = self
            .wide
            .as_ref()
            .map(|w| PrimLanes::from_primitives(&w.primitives));
        // Maintenance changed the node array; rebuild the visit profiler's
        // node→depth map so recorded visits keep landing on real nodes.
        if self.heatmap.is_some() {
            self.heatmap = self.wide.as_ref().map(NodeHeatmap::for_wide);
        }
        counters
    }

    /// Check a reorder scratch out of the pool and Morton-sort the launch
    /// into it (no-op returning `None` under [`QueryOrder::AsGiven`] or
    /// for trivial launches).  Callers keep the guard alive for the launch
    /// and reborrow the `points` / `perm` slices out of it; the sort
    /// scatter work lands in `setup.misc_ops`.
    fn morton_guard(
        &self,
        queries: &[Point3],
        setup: &mut WorkCounters,
    ) -> Option<crate::traversal::PoolGuard<'_, ReorderScratch>> {
        if self.query_order != QueryOrder::Morton || queries.len() < 2 {
            return None;
        }
        let mut span = self.core.telemetry.span(PhaseKind::MortonReorder);
        let mut guard = self.reorder.acquire();
        let sort_ops = guard.order_morton(queries);
        sat_bump(&mut setup.misc_ops, sort_ops);
        span.add_counters(WorkCounters {
            misc_ops: sort_ops,
            ..WorkCounters::ZERO
        });
        Some(guard)
    }

    /// Trace one packet of queries through the wide scene.  The ray staging
    /// buffer and the traversal scratch come from the core's worker pool;
    /// packet boundaries are fixed by `batch_size`, so neither the work
    /// performed nor its accounting depends on how packets are scheduled.
    /// `ordered` is the launch-order query array and `perm` maps packet
    /// positions back to caller ordinals (None = identity).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn trace_packet(
        &self,
        ordered: &[Point3],
        perm: Option<&[u32]>,
        start: usize,
        len: usize,
        eps: f32,
        sink: &NeighborSink<'_>,
        cancel: Option<&CancelScope>,
    ) -> WorkCounters {
        let mut counters = WorkCounters::ZERO;
        let Some(scene) = self.scene() else {
            return counters;
        };
        // Packet granularity: a tripped scope skips the whole packet.
        if cancel.is_some_and(CancelScope::tripped) {
            return counters;
        }
        sat_bump(&mut counters.rays, len as u64);
        let packet_queries = &ordered[start..start + len];
        let mut guard = self.core.scratch.acquire();
        let scratch = &mut *guard;
        scratch.rays.clear();
        scratch
            .rays
            .extend(packet_queries.iter().map(|&q| Ray::epsilon_ray(q)));
        let eps_sq = eps * eps;
        let geometry = self.core.geometry;
        with_sink!(self.heatmap.as_ref(), |vsink| {
            traverse_batch_scene_with_scratch_sink(
                scene,
                &scratch.rays,
                &mut scratch.trav,
                &mut counters,
                self.simd,
                vsink,
                cancel,
                |q, sphere, counters| {
                    charge_candidate(geometry, counters);
                    if sphere.center.distance_squared(packet_queries[q]) <= eps_sq {
                        let n = Neighbor {
                            index: sphere.point_index,
                            multiplicity: sphere.multiplicity,
                        };
                        match sink(caller_ordinal(perm, start + q), n, counters) {
                            NeighborFlow::Continue => Traversal::Continue,
                            NeighborFlow::Stop => Traversal::Terminate,
                        }
                    } else {
                        Traversal::Continue
                    }
                },
            );
        });
        counters
    }

    /// The count-mode packet tracer: candidate runs are processed by one
    /// monomorphic loop with hoisted candidate charging, counts accumulate
    /// in a packet-local buffer, and each query flushes to its shared cell
    /// once at packet end.  Traversal order, early-exit points and every
    /// aggregate counter are identical to driving the count sink through
    /// [`WideBatchedIndex::trace_packet`] — only the per-neighbour dynamic
    /// dispatch is gone.  The no-early-exit path runs the SIMD leaf-run
    /// kernel over the SoA primitive lanes (bit-identical to the scalar
    /// sphere test; see [`crate::simd`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn trace_count_packet(
        &self,
        ordered: &[Point3],
        perm: Option<&[u32]>,
        start: usize,
        len: usize,
        eps: f32,
        exclude_self: bool,
        early_exit: Option<u64>,
        counts: &[std::sync::atomic::AtomicU64],
        cancel: Option<&CancelScope>,
    ) -> WorkCounters {
        use std::sync::atomic::Ordering;
        let mut counters = WorkCounters::ZERO;
        let Some(scene) = self.scene() else {
            return counters;
        };
        // Packet granularity: a tripped scope skips the whole packet.
        if cancel.is_some_and(CancelScope::tripped) {
            return counters;
        }
        sat_bump(&mut counters.rays, len as u64);
        let packet_queries = &ordered[start..start + len];
        let mut guard = self.core.scratch.acquire();
        let PacketScratch {
            rays,
            trav,
            counts: local,
        } = &mut *guard;
        rays.clear();
        rays.extend(packet_queries.iter().map(|&q| Ray::epsilon_ray(q)));
        local.clear();
        local.resize(len, 0);
        let eps_sq = eps * eps;
        let geometry = self.core.geometry;
        if early_exit.is_none() {
            // No early exit ⇒ every hit is accumulated, so self-exclusion
            // reduces to algebra: the query's own primitive (or group)
            // always hits at distance zero and contributes exactly one
            // countable unit less than its multiplicity, hence the adjusted
            // count is Σ multiplicity − 1.  That makes the candidate loop
            // branch-free — exactly the shape the SIMD run kernel consumes
            // from the SoA lanes.
            // analyze-allow: lib-unwrap -- lanes are built unconditionally with the scene in build()
            let lanes = self.lanes.as_ref().expect("lanes exist with the scene");
            let simd = self.simd;
            with_sink!(self.heatmap.as_ref(), |vsink| {
                traverse_batch_runs_with_scratch_sink_cancel(
                    scene,
                    rays,
                    trav,
                    &mut counters,
                    simd,
                    vsink,
                    cancel,
                    {
                        let local = &mut *local;
                        move |q, first, count, counters| {
                            charge_candidates(geometry, count as u64, counters);
                            local[q] += lanes.count_in_ball(
                                simd,
                                first as usize,
                                count as usize,
                                packet_queries[q],
                                eps_sq,
                            );
                            LeafVisit {
                                visited: count,
                                terminate: false,
                            }
                        }
                    },
                );
            });
            if exclude_self {
                for c in local.iter_mut() {
                    *c = c.saturating_sub(1);
                }
            }
        } else {
            traversal_count_launch(
                scene,
                rays,
                trav,
                &mut counters,
                self.simd,
                self.heatmap.as_ref(),
                cancel,
                |q| {
                    if exclude_self {
                        self.representative_of(caller_ordinal(perm, start + q) as u32)
                    } else {
                        u32::MAX
                    }
                },
                packet_queries,
                local,
                eps_sq,
                geometry,
                exclude_self,
                early_exit,
            );
        }
        for (i, &c) in local.iter().enumerate() {
            if c > 0 {
                // ordering: Relaxed — one flush per sub-range per launch,
                // distinct caller ordinals per worker; the dispatching
                // join publishes the cells to the caller.
                counts[caller_ordinal(perm, start + i)].fetch_add(c, Ordering::Relaxed);
            }
        }
        counters
    }

    /// The shared batched-callback launch body: Morton reorder, fixed
    /// packet boundaries, deterministic per-chunk counter merge.  `cancel`
    /// is a runtime parameter — `None` compiles to the exact pre-deadline
    /// launch, and the dispatch shape (hence counter merge order) is
    /// identical either way.  Returns the launch total; the caller decides
    /// whether to surface it (success) or fold it into
    /// [`Error::DeadlineExceeded`] (trip).
    fn batch_neighbors_impl(
        &self,
        queries: &[Point3],
        eps: f32,
        sink: &NeighborSink<'_>,
        cancel: Option<&CancelScope>,
    ) -> WorkCounters {
        debug_assert!(eps <= self.core.eps, "query radius exceeds build radius");
        // Morton launch order (if configured): the guard keeps the permuted
        // buffers alive across the parallel dispatch; sinks still see
        // caller ordinals.
        let mut setup = WorkCounters::ZERO;
        let reorder = self.morton_guard(queries, &mut setup);
        let (ordered, perm): (&[Point3], Option<&[u32]>) = match reorder.as_deref() {
            Some(g) => (&g.points, Some(&g.perm)),
            None => (queries, None),
        };
        // Fixed packet boundaries, derived arithmetically — no materialised
        // range list on the launch path.
        let start_ns = self.core.telemetry.now_ns();
        let packets = queries.len().div_ceil(self.batch_size);
        let mut total = super::dispatch_batch(
            packets,
            queries.len() >= self.core.min_parallel_launch,
            |packet| {
                let start = packet * self.batch_size;
                let len = self.batch_size.min(queries.len() - start);
                self.trace_packet(ordered, perm, start, len, eps, sink, cancel)
            },
        );
        total += setup;
        self.core
            .record_launch_metrics(queries.len(), Some(self.batch_size), start_ns, &total);
        self.core.record(&total);
        total
    }

    /// The shared count-mode launch body (see
    /// [`WideBatchedIndex::batch_neighbors_impl`] for the cancel
    /// semantics).
    fn batch_neighbor_counts_impl(
        &self,
        queries: &[Point3],
        eps: f32,
        exclude_self: bool,
        early_exit: Option<u64>,
        counts: &[std::sync::atomic::AtomicU64],
        cancel: Option<&CancelScope>,
    ) -> WorkCounters {
        debug_assert!(eps <= self.core.eps, "query radius exceeds build radius");
        assert_eq!(
            queries.len(),
            counts.len(),
            "one count cell per launched query"
        );
        let mut setup = WorkCounters::ZERO;
        let reorder = self.morton_guard(queries, &mut setup);
        let (ordered, perm): (&[Point3], Option<&[u32]>) = match reorder.as_deref() {
            Some(g) => (&g.points, Some(&g.perm)),
            None => (queries, None),
        };
        let start_ns = self.core.telemetry.now_ns();
        let packets = queries.len().div_ceil(self.batch_size);
        let mut total = super::dispatch_batch(
            packets,
            queries.len() >= self.core.min_parallel_launch,
            |packet| {
                let start = packet * self.batch_size;
                let len = self.batch_size.min(queries.len() - start);
                self.trace_count_packet(
                    ordered,
                    perm,
                    start,
                    len,
                    eps,
                    exclude_self,
                    early_exit,
                    counts,
                    cancel,
                )
            },
        );
        total += setup;
        self.core
            .record_launch_metrics(queries.len(), Some(self.batch_size), start_ns, &total);
        self.core.record(&total);
        total
    }
}

/// The hoisted-candidate count launch shared by [`WideBatchedIndex`]'s
/// count mode: one [`crate::traversal::LeafVisit`] handler that charges a
/// whole candidate run at once and un-charges the abandoned tail on early
/// exit, keeping totals bit-identical to the per-candidate sink path.
#[allow(clippy::too_many_arguments)]
fn traversal_count_launch(
    scene: WideScene<'_>,
    rays: &[Ray],
    trav: &mut TraversalScratch,
    counters: &mut WorkCounters,
    simd: SimdLevel,
    heatmap: Option<&NodeHeatmap>,
    cancel: Option<&CancelScope>,
    rep_of: impl Fn(usize) -> u32,
    packet_queries: &[Point3],
    local: &mut [u64],
    eps_sq: f32,
    geometry: GeometryKind,
    exclude_self: bool,
    early_exit: Option<u64>,
) {
    let all_prims = scene.primitives();
    with_sink!(heatmap, |vsink| {
        traverse_batch_runs_with_scratch_sink_cancel(
            scene,
            rays,
            trav,
            counters,
            simd,
            vsink,
            cancel,
            |q, first, count, counters| {
                let prims = &all_prims[first as usize..(first + count) as usize];
                charge_candidates(geometry, prims.len() as u64, counters);
                let query = packet_queries[q];
                let rep = rep_of(q);
                let count = &mut local[q];
                let mut visited = 0u32;
                for prim in prims {
                    visited += 1;
                    if prim.center.distance_squared(query) <= eps_sq {
                        let own_group = exclude_self && prim.point_index == rep;
                        let add = if own_group {
                            prim.multiplicity.saturating_sub(1) as u64
                        } else {
                            prim.multiplicity as u64
                        };
                        if add > 0 {
                            *count += add;
                            if let Some(min) = early_exit {
                                if *count >= min {
                                    // The rest of the run is never tested; give its
                                    // hoisted charge back.
                                    uncharge_candidates(
                                        geometry,
                                        (prims.len() - visited as usize) as u64,
                                        counters,
                                    );
                                    return LeafVisit {
                                        visited,
                                        terminate: true,
                                    };
                                }
                            }
                        }
                    }
                }
                LeafVisit::all(prims)
            },
        )
    });
}

impl NeighborIndex for WideBatchedIndex {
    fn len(&self) -> usize {
        self.core.n
    }

    fn eps(&self) -> f32 {
        self.core.eps
    }

    fn capabilities(&self) -> IndexCapabilities {
        self.core.capabilities(IndexKind::WideBatched, true)
    }

    fn build_counters(&self) -> WorkCounters {
        self.core.build_counters
    }

    fn counters(&self) -> WorkCounters {
        self.core.build_counters + *self.core.query_counters.lock()
    }

    fn device_bytes(&self) -> u64 {
        self.core.bvh.as_ref().map_or(0, Bvh::device_bytes)
            + self.wide.as_ref().map_or(0, WideBvh::device_bytes)
            + self
                .compact
                .as_ref()
                .map_or(0, CompactWideNodes::device_bytes)
            + self.lanes.as_ref().map_or(0, PrimLanes::device_bytes)
    }

    fn representative_of(&self, index: u32) -> u32 {
        self.core
            .representative_of
            .get(index as usize)
            .copied()
            .unwrap_or(index)
    }

    fn for_each_neighbor(
        &self,
        query: Point3,
        eps: f32,
        exclude: Option<u32>,
        counters: &mut WorkCounters,
        visit: &mut NeighborVisitor<'_>,
    ) {
        debug_assert!(eps <= self.core.eps, "query radius exceeds build radius");
        let Some(scene) = self.scene() else { return };
        let mut local = WorkCounters::ZERO;
        sat_bump(&mut local.rays, 1);
        let ray = Ray::epsilon_ray(query);
        let eps_sq = eps * eps;
        let geometry = self.core.geometry;
        let mut guard = self.core.scratch.acquire();
        with_sink!(self.heatmap.as_ref(), |vsink| {
            traverse_wide_scene_with_scratch_sink(
                scene,
                &ray,
                &mut guard.trav,
                &mut local,
                vsink,
                |sphere, counters| {
                    charge_candidate(geometry, counters);
                    if sphere.center.distance_squared(query) <= eps_sq
                        && Some(sphere.point_index) != exclude
                    {
                        let n = Neighbor {
                            index: sphere.point_index,
                            multiplicity: sphere.multiplicity,
                        };
                        match visit(n, counters) {
                            NeighborFlow::Continue => Traversal::Continue,
                            NeighborFlow::Stop => Traversal::Terminate,
                        }
                    } else {
                        Traversal::Continue
                    }
                },
            );
        });
        self.core.record(&local);
        *counters += local;
    }

    fn batch_neighbors(
        &self,
        queries: &[Point3],
        eps: f32,
        counters: &mut WorkCounters,
        sink: &NeighborSink<'_>,
    ) {
        let total = self.batch_neighbors_impl(queries, eps, sink, None);
        *counters += total;
    }

    fn batch_neighbors_cancellable(
        &self,
        queries: &[Point3],
        eps: f32,
        counters: &mut WorkCounters,
        sink: &NeighborSink<'_>,
        scope: &CancelScope,
    ) -> Result<()> {
        crate::fail_point!(self.fault, FaultSite::ScratchGrow);
        if self.fault.fire(FaultSite::LaunchDelay) {
            // A delayed launch blows its deadline instead of erroring.
            scope.trip();
        }
        if scope.should_stop() {
            return Err(Error::DeadlineExceeded {
                // analyze-allow: hot-path-alloc -- boxing the partial counters happens only on the cancelled error path, never in steady state
                partial: Box::new(WorkCounters::ZERO),
            });
        }
        let total = self.batch_neighbors_impl(queries, eps, sink, Some(scope));
        if scope.tripped() {
            return Err(Error::DeadlineExceeded {
                // analyze-allow: hot-path-alloc -- boxing the partial counters happens only on the cancelled error path, never in steady state
                partial: Box::new(total),
            });
        }
        *counters += total;
        Ok(())
    }

    fn batch_neighbor_counts(
        &self,
        queries: &[Point3],
        eps: f32,
        exclude_self: bool,
        early_exit: Option<u64>,
        counters: &mut WorkCounters,
        counts: &[std::sync::atomic::AtomicU64],
    ) {
        let total =
            self.batch_neighbor_counts_impl(queries, eps, exclude_self, early_exit, counts, None);
        *counters += total;
    }

    fn batch_neighbor_counts_cancellable(
        &self,
        queries: &[Point3],
        eps: f32,
        exclude_self: bool,
        early_exit: Option<u64>,
        counters: &mut WorkCounters,
        counts: &[std::sync::atomic::AtomicU64],
        scope: &CancelScope,
    ) -> Result<()> {
        crate::fail_point!(self.fault, FaultSite::ScratchGrow);
        if self.fault.fire(FaultSite::LaunchDelay) {
            scope.trip();
        }
        if scope.should_stop() {
            return Err(Error::DeadlineExceeded {
                // analyze-allow: hot-path-alloc -- boxing the partial counters happens only on the cancelled error path, never in steady state
                partial: Box::new(WorkCounters::ZERO),
            });
        }
        let total = self.batch_neighbor_counts_impl(
            queries,
            eps,
            exclude_self,
            early_exit,
            counts,
            Some(scope),
        );
        if scope.tripped() {
            return Err(Error::DeadlineExceeded {
                // analyze-allow: hot-path-alloc -- boxing the partial counters happens only on the cancelled error path, never in steady state
                partial: Box::new(total),
            });
        }
        *counters += total;
        Ok(())
    }

    fn batch_neighbors_csr_into(
        &self,
        queries: &[Point3],
        eps: f32,
        counters: &mut WorkCounters,
        out: &mut super::CsrNeighbors,
    ) {
        debug_assert!(eps <= self.core.eps, "query radius exceeds build radius");
        // Specialised CSR launch: each packet collects `(query, hit)` pairs
        // into its worker scratch (monomorphic candidate loop, hoisted
        // charging) and appends them to the shared pair list under one lock
        // per packet — not one per neighbour like the generic default.
        // Emission order within a query is the traversal order (invariant
        // under launch reordering), and the counting-sort rebuild restores
        // row order, so output and counters are identical to the
        // callback-mode launch whatever the query order.
        let mut setup = WorkCounters::ZERO;
        let reorder = self.morton_guard(queries, &mut setup);
        let (ordered, perm): (&[Point3], Option<&[u32]>) = match reorder.as_deref() {
            Some(g) => (&g.points, Some(&g.perm)),
            None => (queries, None),
        };
        // analyze-allow: hot-path-alloc -- one shared pair-sink allocation per launch, amortised over every packet
        let pairs_shared: Mutex<Vec<(u32, u32)>> = Mutex::new(Vec::new());
        let start_ns = self.core.telemetry.now_ns();
        let packets = queries.len().div_ceil(self.batch_size);
        let mut total = super::dispatch_batch(
            packets,
            queries.len() >= self.core.min_parallel_launch,
            |packet| {
                let start = packet * self.batch_size;
                let len = self.batch_size.min(queries.len() - start);
                let mut local = WorkCounters::ZERO;
                let Some(scene) = self.scene() else {
                    return local;
                };
                let all_prims = scene.primitives();
                sat_bump(&mut local.rays, len as u64);
                let packet_queries = &ordered[start..start + len];
                let mut guard = self.core.scratch.acquire();
                let PacketScratch { rays, trav, .. } = &mut *guard;
                rays.clear();
                rays.extend(packet_queries.iter().map(|&q| Ray::epsilon_ray(q)));
                let mut pairs = std::mem::take(&mut trav.pairs);
                pairs.clear();
                let eps_sq = eps * eps;
                let geometry = self.core.geometry;
                with_sink!(self.heatmap.as_ref(), |vsink| {
                    traverse_batch_runs_with_scratch_sink_cancel(
                        scene,
                        rays,
                        trav,
                        &mut local,
                        self.simd,
                        vsink,
                        None,
                        |q, first, count, c| {
                            let prims = &all_prims[first as usize..(first + count) as usize];
                            charge_candidates(geometry, prims.len() as u64, c);
                            let query = packet_queries[q];
                            for prim in prims {
                                if prim.center.distance_squared(query) <= eps_sq {
                                    pairs.push((
                                        caller_ordinal(perm, start + q) as u32,
                                        prim.point_index,
                                    ));
                                }
                            }
                            LeafVisit::all(prims)
                        },
                    );
                });
                pairs_shared.lock().extend_from_slice(&pairs);
                trav.pairs = pairs;
                local
            },
        );
        total += setup;
        self.core
            .record_launch_metrics(queries.len(), Some(self.batch_size), start_ns, &total);
        self.core.record(&total);
        *counters += total;
        out.rebuild_from_pairs(queries.len(), &pairs_shared.into_inner());
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        self.core.telemetry_handle()
    }

    fn heatmap(&self) -> Option<&NodeHeatmap> {
        self.heatmap.as_ref()
    }

    fn remove(&mut self, retired: &[u32]) -> Result<WorkCounters> {
        let mut counters = self.core.remove_impl(retired)?;
        // The collapsed scene follows the binary tree's shape.
        {
            let mut span = self.core.telemetry.span(PhaseKind::Bvh4Collapse);
            self.wide = self.core.bvh.as_ref().map(|b| {
                WideBvh::from_binary_parallel(b, self.build_workers, &self.core.telemetry)
            });
            if let Some(w) = &self.wide {
                counters += w.collapse_counters;
                self.core.build_counters += w.collapse_counters;
                span.add_counters(w.collapse_counters);
            }
        }
        let relayout = self.refresh_layout();
        counters += relayout;
        self.core.build_counters += relayout;
        Ok(counters)
    }

    fn update(&mut self, moved: &[(u32, Point3)]) -> Result<WorkCounters> {
        let mut counters = self.core.update_impl(moved)?;
        {
            let mut span = self.core.telemetry.span(PhaseKind::Bvh4Collapse);
            self.wide = self.core.bvh.as_ref().map(|b| {
                WideBvh::from_binary_parallel(b, self.build_workers, &self.core.telemetry)
            });
            if let Some(w) = &self.wide {
                counters += w.collapse_counters;
                self.core.build_counters += w.collapse_counters;
                span.add_counters(w.collapse_counters);
            }
        }
        let relayout = self.refresh_layout();
        counters += relayout;
        self.core.build_counters += relayout;
        Ok(counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::NeighborIndexBuilder;

    fn line(n: usize, spacing: f32) -> Vec<Point3> {
        (0..n)
            .map(|i| Point3::new(i as f32 * spacing, 0.0, 0.0))
            .collect()
    }

    #[test]
    fn compaction_reports_representatives_and_multiplicities() {
        let mut pts = line(5, 10.0);
        pts.push(pts[0]); // exact duplicate of point 0
        pts.push(pts[0]);
        let config = NeighborIndexBuilder {
            compaction: true,
            ..NeighborIndexBuilder::new(IndexKind::WideBatched)
        };
        let index = WideBatchedIndex::build(&config, &pts, 1.0).unwrap();
        assert!(index.capabilities().compacting);
        assert_eq!(index.build_counters().compaction_merges, 2);
        assert_eq!(index.representative_of(5), index.representative_of(0));
        // Querying at the duplicated location reports the representative
        // with the whole group's multiplicity.
        let mut c = WorkCounters::ZERO;
        let mut seen = Vec::new();
        index.for_each_neighbor(pts[0], 1.0, None, &mut c, &mut |n, _| {
            seen.push((n.index, n.multiplicity));
            NeighborFlow::Continue
        });
        assert_eq!(seen, vec![(index.representative_of(0), 3)]);
    }

    #[test]
    fn wide_backend_counts_wide_visits_and_packets() {
        let pts = line(300, 0.3);
        let config = NeighborIndexBuilder {
            batch_size: 64,
            min_parallel_launch: 0,
            ..NeighborIndexBuilder::new(IndexKind::WideBatched)
        };
        let index = WideBatchedIndex::build(&config, &pts, 0.5).unwrap();
        let mut c = WorkCounters::ZERO;
        index.batch_neighbors(&pts, 0.5, &mut c, &|_, _, _| NeighborFlow::Continue);
        assert_eq!(c.rays, 300);
        assert_eq!(c.node_visits, 0);
        assert!(c.wide_node_visits > 0);
        assert_eq!(c.batched_launches, 5, "300 rays in packets of 64");
    }

    #[test]
    fn binary_backend_refits_out_removed_points() {
        let pts = line(40, 1.0);
        let config = NeighborIndexBuilder::new(IndexKind::BinaryBvh);
        let mut index = BinaryBvhIndex::build(&config, &pts, 1.5).unwrap();
        let mut c = WorkCounters::ZERO;
        let mut got = index.neighbors_of(pts[10], 1.5, Some(10), &mut c);
        got.sort_unstable();
        assert_eq!(got, vec![9, 11]);
        let refit_work = index.remove(&[9, 11]).unwrap();
        assert!(refit_work.refit_node_ops > 0);
        assert!(index
            .neighbors_of(pts[10], 1.5, Some(10), &mut c)
            .is_empty());
        assert_eq!(index.len(), 38);
    }

    #[test]
    fn wide_backend_update_moves_points_in_place() {
        let pts = line(20, 5.0);
        let config = NeighborIndexBuilder::new(IndexKind::WideBatched);
        let mut index = WideBatchedIndex::build(&config, &pts, 1.0).unwrap();
        let mut c = WorkCounters::ZERO;
        assert!(index.neighbors_of(pts[0], 1.0, Some(0), &mut c).is_empty());
        // Move point 1 next to point 0.
        index.update(&[(1, Point3::new(0.5, 0.0, 0.0))]).unwrap();
        assert_eq!(index.neighbors_of(pts[0], 1.0, Some(0), &mut c), vec![1]);
    }

    #[test]
    fn compacted_indexes_refuse_refit_hooks() {
        let mut pts = line(4, 10.0);
        pts.push(pts[0]);
        let config = NeighborIndexBuilder {
            compaction: true,
            ..NeighborIndexBuilder::new(IndexKind::BinaryBvh)
        };
        let mut index = BinaryBvhIndex::build(&config, &pts, 1.0).unwrap();
        assert!(!index.capabilities().refittable);
        assert!(index.remove(&[0]).is_err());
        assert!(index.update(&[(0, Point3::ORIGIN)]).is_err());
    }
}

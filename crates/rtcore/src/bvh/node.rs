//! Flat BVH representation shared by every builder.

use crate::bvh::BuilderKind;
use crate::geometry::{Aabb, Sphere};
use crate::hardware::WorkCounters;

/// What a node contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An internal node with two children, stored as indices into
    /// [`Bvh::nodes`].
    Internal {
        /// Index of the left child.
        left: u32,
        /// Index of the right child.
        right: u32,
    },
    /// A leaf node owning a contiguous range of primitives in
    /// [`Bvh::primitives`].
    Leaf {
        /// Index of the first primitive.
        first_prim: u32,
        /// Number of primitives in the leaf.
        prim_count: u32,
    },
}

/// One node of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BvhNode {
    /// Bounds enclosing everything below this node.
    pub bounds: Aabb,
    /// Children or primitive range.
    pub kind: NodeKind,
}

impl BvhNode {
    /// True if this is a leaf node.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }
}

/// A built acceleration structure: flat node array plus the (re-ordered)
/// primitive array.
///
/// Node 0 is always the root.  Primitives referenced by a leaf are stored
/// contiguously, which keeps traversal cache-friendly — the layout mirrors
/// what GPU acceleration structures do.
#[derive(Debug, Clone)]
pub struct Bvh {
    /// Flat node storage; index 0 is the root.
    pub nodes: Vec<BvhNode>,
    /// Primitives, re-ordered so leaf ranges are contiguous.
    pub primitives: Vec<Sphere>,
    /// Which builder produced this tree.
    pub builder: BuilderKind,
    /// Work the build performed (fed to the device cost model).
    pub build_counters: WorkCounters,
}

impl Bvh {
    /// Number of primitives in the scene (after any compaction).
    pub fn primitive_count(&self) -> usize {
        self.primitives.len()
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The root node's bounds (the whole scene).
    pub fn scene_bounds(&self) -> Aabb {
        self.nodes.first().map(|n| n.bounds).unwrap_or(Aabb::EMPTY)
    }

    /// Maximum depth of the tree (root = depth 1).  Iterative to avoid stack
    /// overflow on degenerate trees.
    pub fn depth(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut max_depth = 0usize;
        let mut stack = vec![(0u32, 1usize)];
        while let Some((idx, depth)) = stack.pop() {
            max_depth = max_depth.max(depth);
            if let NodeKind::Internal { left, right } = self.nodes[idx as usize].kind {
                stack.push((left, depth + 1));
                stack.push((right, depth + 1));
            }
        }
        max_depth
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Estimated device-memory footprint of this acceleration structure in
    /// bytes (nodes + primitive records), used by the memory tracker.
    pub fn device_bytes(&self) -> u64 {
        let node_bytes = std::mem::size_of::<BvhNode>() as u64 * self.nodes.len() as u64;
        let prim_bytes = std::mem::size_of::<Sphere>() as u64 * self.primitives.len() as u64;
        node_bytes + prim_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bvh::{BvhBuilder, MedianSplitBuilder};
    use crate::geometry::Point3;

    fn small_bvh() -> Bvh {
        let spheres: Vec<Sphere> = (0..16)
            .map(|i| Sphere::new(Point3::new(i as f32, 0.0, 0.0), 0.4, i as u32))
            .collect();
        MedianSplitBuilder::default().build(spheres).unwrap()
    }

    #[test]
    fn node_kind_queries() {
        let leaf = BvhNode {
            bounds: Aabb::EMPTY,
            kind: NodeKind::Leaf {
                first_prim: 0,
                prim_count: 2,
            },
        };
        let internal = BvhNode {
            bounds: Aabb::EMPTY,
            kind: NodeKind::Internal { left: 1, right: 2 },
        };
        assert!(leaf.is_leaf());
        assert!(!internal.is_leaf());
    }

    #[test]
    fn statistics_of_a_small_tree() {
        let bvh = small_bvh();
        assert_eq!(bvh.primitive_count(), 16);
        assert!(bvh.node_count() >= 3);
        assert!(bvh.depth() >= 2);
        assert!(bvh.leaf_count() >= 2);
        assert!(bvh.device_bytes() > 0);
        let b = bvh.scene_bounds();
        assert!(b.contains_point(Point3::new(0.0, 0.0, 0.0)));
        assert!(b.contains_point(Point3::new(15.0, 0.0, 0.0)));
    }

    #[test]
    fn empty_bvh_statistics() {
        let bvh = Bvh {
            nodes: vec![],
            primitives: vec![],
            builder: BuilderKind::MedianSplit,
            build_counters: WorkCounters::ZERO,
        };
        assert_eq!(bvh.depth(), 0);
        assert_eq!(bvh.leaf_count(), 0);
        assert!(bvh.scene_bounds().is_empty());
    }
}

//! Fixture: a module that is not in the atomics allowlist at all.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn sneaky(c: &AtomicU64) -> u64 {
    // ordering: a justification does not help outside the allowlist.
    c.load(Ordering::Relaxed)
}

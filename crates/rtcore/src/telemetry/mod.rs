//! Phase-scoped spans, metrics, and the node-visit heatmap profiler.
//!
//! The engine's cost model ([`crate::hardware::WorkCounters`]) says *how
//! much* work a run performed; this module says *where it went*: which
//! pipeline phase, on which thread, over which wall-clock interval, and —
//! with the [`NodeHeatmap`] profiler — against which BVH nodes.
//!
//! Three layers, all hanging off one cloneable [`Telemetry`] handle:
//!
//! 1. **Spans** — [`Telemetry::span`] returns a [`Span`] RAII guard scoping
//!    one pipeline phase ([`PhaseKind`]: LBVH build, BVH4 collapse,
//!    quantized bake, Morton reorder, stage-1 launch, stage-2 union-find,
//!    refit, rebuild, streaming slide).  On drop the span records its
//!    wall-time, thread, nesting depth and an attached [`WorkCounters`]
//!    delta into a fixed-capacity ring buffer.  Export with
//!    [`Telemetry::chrome_trace_json`] (open the file in `chrome://tracing`
//!    or [Perfetto](https://ui.perfetto.dev)) or
//!    [`Telemetry::summary_table`].
//! 2. **Metrics** — a [`MetricsRegistry`] of monotonic counters and
//!    fixed-bucket histograms (per-launch latency, packet occupancy,
//!    per-query distance comparisons), snapshotable as JSON.
//! 3. **Heatmap** — an opt-in per-node visit-frequency accumulator the
//!    traversal engines feed, dumpable per depth or per treelet
//!    ([`NodeHeatmap`]).
//!
//! # Zero cost when off
//!
//! [`TelemetryConfig::Off`] (the default everywhere) builds a disabled
//! handle: [`Telemetry::span`] reads no clock, takes no lock and records
//! nothing, and the traversal engines compile to the exact same code paths
//! as before the module existed — the heatmap hook is monomorphised away,
//! counters stay bit-identical, and the steady state stays allocation-free
//! (`tests/alloc_regression.rs` pins all of it).  When enabled, recording
//! is allocation-free after warm-up too: the ring buffer is pre-allocated
//! and full rings overwrite the oldest span.
//!
//! # Example
//!
//! ```
//! use rtcore::hardware::WorkCounters;
//! use rtcore::telemetry::{PhaseKind, Telemetry, TelemetryConfig};
//!
//! let tel = Telemetry::new(TelemetryConfig::Spans);
//! {
//!     let mut span = tel.span(PhaseKind::Stage1Launch);
//!     let mut work = WorkCounters::ZERO;
//!     work.rays += 64; // ... the launch ...
//!     span.add_counters(work);
//! } // span records on drop
//! let spans = tel.spans();
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].phase, PhaseKind::Stage1Launch);
//! assert_eq!(spans[0].counters.rays, 64);
//! let trace = tel.chrome_trace_json();
//! assert!(trace.contains("\"stage1_launch\""));
//! ```

mod heatmap;
mod metrics;

pub use heatmap::NodeHeatmap;
pub use metrics::{
    Histogram, MetricsRegistry, DIST_COMPS_BUCKETS, LATENCY_US_BUCKETS, OCCUPANCY_BUCKETS,
};

use crate::hardware::WorkCounters;
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How much telemetry a component records.  `Copy`, so it travels through
/// the `Copy` configuration structs ([`crate::index::NeighborIndexBuilder`],
/// [`crate::pipeline::PipelineConfig`], streaming configs) like every other
/// knob.
///
/// ```
/// use rtcore::telemetry::TelemetryConfig;
///
/// // Off is the default and costs nothing.
/// assert_eq!(TelemetryConfig::default(), TelemetryConfig::Off);
/// assert!(!TelemetryConfig::Off.enabled());
/// assert!(TelemetryConfig::Spans.enabled());
/// // Only Profile turns on the per-node heatmap accumulator.
/// assert!(!TelemetryConfig::Spans.heatmap_enabled());
/// assert!(TelemetryConfig::Profile.heatmap_enabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryConfig {
    /// Record nothing; compiles to the pre-telemetry code paths.
    #[default]
    Off,
    /// Record phase spans and metrics (no per-node accumulation).
    Spans,
    /// Spans and metrics plus the per-node [`NodeHeatmap`] accumulator —
    /// adds one counted store per node visit, so keep it off outside
    /// profiling runs.
    Profile,
}

impl TelemetryConfig {
    /// True when any recording happens at all.
    pub fn enabled(self) -> bool {
        self != TelemetryConfig::Off
    }

    /// True when the per-node visit heatmap accumulates.
    pub fn heatmap_enabled(self) -> bool {
        self == TelemetryConfig::Profile
    }
}

/// The pipeline phase a [`Span`] scopes — the fixed taxonomy every
/// component records against, so traces from the index, the clustering
/// engine and the streaming layer compose into one timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Binary BVH construction (compaction pass + builder), whichever
    /// builder the device uses.
    LbvhBuild,
    /// Collapse of the binary tree into BVH4 wide nodes.
    Bvh4Collapse,
    /// Re-encoding the wide nodes into the quantized compact layout.
    QuantizedBake,
    /// Morton sorting a launch's queries into coherent order.
    MortonReorder,
    /// Stage 1: the batched neighbour-count launch over all points.
    Stage1Launch,
    /// Stage 2: union-find cluster formation over core points.
    Stage2UnionFind,
    /// In-place BVH refit after removals/updates.
    Refit,
    /// Full rebuild of the acceleration structure.
    Rebuild,
    /// One streaming window slide (ingest + evict bookkeeping).
    StreamingSlide,
    /// Top-level (TLAS) build over the shard instances of a sharded scene.
    TlasBuild,
    /// TLAS descent enumerating the BLASes a query packet overlaps.
    TlasVisit,
    /// Cross-shard boundary pass merging clusters through the epoch
    /// union-find so sharded labels match the flat path.
    ShardStitch,
    /// A graceful-degradation step under memory pressure or fault
    /// recovery: dropping the quantized bake, evicting or quarantining a
    /// shard BLAS, or rebuilding one from quarantine.
    Degrade,
}

impl PhaseKind {
    /// Every phase, in taxonomy order.
    pub const ALL: [PhaseKind; 13] = [
        PhaseKind::LbvhBuild,
        PhaseKind::Bvh4Collapse,
        PhaseKind::QuantizedBake,
        PhaseKind::MortonReorder,
        PhaseKind::Stage1Launch,
        PhaseKind::Stage2UnionFind,
        PhaseKind::Refit,
        PhaseKind::Rebuild,
        PhaseKind::StreamingSlide,
        PhaseKind::TlasBuild,
        PhaseKind::TlasVisit,
        PhaseKind::ShardStitch,
        PhaseKind::Degrade,
    ];

    /// Stable snake_case name used in trace events and summaries.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::LbvhBuild => "lbvh_build",
            PhaseKind::Bvh4Collapse => "bvh4_collapse",
            PhaseKind::QuantizedBake => "quantized_bake",
            PhaseKind::MortonReorder => "morton_reorder",
            PhaseKind::Stage1Launch => "stage1_launch",
            PhaseKind::Stage2UnionFind => "stage2_union_find",
            PhaseKind::Refit => "refit",
            PhaseKind::Rebuild => "rebuild",
            PhaseKind::StreamingSlide => "streaming_slide",
            PhaseKind::TlasBuild => "tlas_build",
            PhaseKind::TlasVisit => "tlas_visit",
            PhaseKind::ShardStitch => "shard_stitch",
            PhaseKind::Degrade => "degrade",
        }
    }
}

/// The time source spans read.  Injectable so tests drive a deterministic
/// clock; production handles use the monotonic wall clock.
#[derive(Debug, Clone)]
pub enum Clock {
    /// `std::time::Instant` relative to the handle's creation.
    Monotonic {
        /// The instant timestamps are measured from.
        epoch: Instant,
    },
    /// A manually advanced nanosecond counter (deterministic tests).
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// A monotonic clock starting now.
    pub fn monotonic() -> Clock {
        Clock::Monotonic {
            epoch: Instant::now(),
        }
    }

    /// A manual clock plus the shared cell that advances it: store
    /// nanoseconds into the cell and every subsequent `now_ns` reads them.
    pub fn manual() -> (Clock, Arc<AtomicU64>) {
        let cell = Arc::new(AtomicU64::new(0));
        (Clock::Manual(cell.clone()), cell)
    }

    /// Nanoseconds since the clock's epoch.
    // ordering: Relaxed — the manual clock cell is a single monotone value
    // with no guarded payload; tests that advance it do so from the same
    // thread that reads, and cross-thread skew only shifts span timestamps.
    pub fn now_ns(&self) -> u64 {
        match self {
            Clock::Monotonic { epoch } => epoch.elapsed().as_nanos() as u64,
            Clock::Manual(cell) => cell.load(Ordering::Relaxed),
        }
    }
}

/// One recorded span: a closed phase interval with its work attribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Which pipeline phase this span scoped.
    pub phase: PhaseKind,
    /// Start time, nanoseconds since the handle's clock epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Recording thread (small per-process ordinal, not the OS id).
    pub thread: u64,
    /// Nesting depth at open time (0 = top level on its thread).
    pub depth: u32,
    /// The work counters attributed to this span via
    /// [`Span::add_counters`].
    pub counters: WorkCounters,
}

/// Fixed-capacity span recorder: full rings overwrite the oldest record,
/// so steady-state recording never allocates.
#[derive(Debug)]
struct SpanRing {
    records: Vec<SpanRecord>,
    capacity: usize,
    /// Next write position once the ring has wrapped.
    next: usize,
    /// Spans overwritten because the ring was full.
    dropped: u64,
}

impl SpanRing {
    fn new(capacity: usize) -> SpanRing {
        SpanRing {
            records: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, record: SpanRecord) {
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.records[self.next] = record;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records oldest-first.
    fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.records.len());
        out.extend_from_slice(&self.records[self.next..]);
        out.extend_from_slice(&self.records[..self.next]);
        out
    }
}

#[derive(Debug)]
struct Inner {
    config: TelemetryConfig,
    clock: Clock,
    ring: Mutex<SpanRing>,
    metrics: MetricsRegistry,
}

/// Default ring capacity: generous for per-launch spans without growing.
const DEFAULT_RING_CAPACITY: usize = 4096;

static NEXT_THREAD_ORDINAL: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ORDINAL: Cell<u64> = const { Cell::new(0) };
    static SPAN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

// ordering: Relaxed fetch_add — the global ordinal only needs uniqueness
// (atomicity), not ordering against any other memory.
fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|cell| {
        let v = cell.get();
        if v != 0 {
            v
        } else {
            let id = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
            cell.set(id);
            id
        }
    })
}

/// The cloneable telemetry handle — all clones share one recorder, so
/// spans opened by the index build, the clustering stages and the caller
/// land in a single timeline.
///
/// A `Default` (or [`TelemetryConfig::Off`]) handle is *disabled*: every
/// operation is a no-op that reads no clock and takes no lock.
///
/// ```
/// use rtcore::telemetry::{Clock, PhaseKind, Telemetry, TelemetryConfig};
/// use std::sync::atomic::Ordering;
///
/// // A deterministic clock makes spans reproducible in tests.
/// let (clock, ticks) = Clock::manual();
/// let tel = Telemetry::with_clock(TelemetryConfig::Spans, clock);
/// let span = tel.span(PhaseKind::LbvhBuild);
/// ticks.store(1_500, Ordering::Relaxed); // 1.5 µs pass
/// drop(span);
/// let spans = tel.spans();
/// assert_eq!((spans[0].start_ns, spans[0].duration_ns), (0, 1_500));
///
/// // Disabled handles record nothing at all.
/// let off = Telemetry::new(TelemetryConfig::Off);
/// drop(off.span(PhaseKind::LbvhBuild));
/// assert!(off.spans().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A handle with the given config, a monotonic clock and the default
    /// ring capacity.  [`TelemetryConfig::Off`] yields a disabled handle.
    pub fn new(config: TelemetryConfig) -> Telemetry {
        Telemetry::with_clock(config, Clock::monotonic())
    }

    /// [`Telemetry::new`] with an injected clock.
    pub fn with_clock(config: TelemetryConfig, clock: Clock) -> Telemetry {
        Telemetry::with_clock_and_capacity(config, clock, DEFAULT_RING_CAPACITY)
    }

    /// Fully explicit constructor: config, clock, and ring capacity (the
    /// maximum number of retained spans; older spans are overwritten).
    pub fn with_clock_and_capacity(
        config: TelemetryConfig,
        clock: Clock,
        capacity: usize,
    ) -> Telemetry {
        if !config.enabled() {
            return Telemetry::disabled();
        }
        Telemetry {
            inner: Some(Arc::new(Inner {
                config,
                clock,
                ring: Mutex::new(SpanRing::new(capacity.max(1))),
                metrics: MetricsRegistry::default(),
            })),
        }
    }

    /// The no-op handle (what `Default` also gives you).
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// True when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The config the handle was created with ([`TelemetryConfig::Off`]
    /// for disabled handles).
    pub fn config(&self) -> TelemetryConfig {
        self.inner
            .as_ref()
            .map_or(TelemetryConfig::Off, |i| i.config)
    }

    /// Open a phase span.  The returned guard records itself on drop;
    /// attach a work delta with [`Span::add_counters`] before then.  On a
    /// disabled handle this is free: no clock read, no lock, no record.
    pub fn span(&self, phase: PhaseKind) -> Span<'_> {
        match &self.inner {
            None => Span {
                inner: None,
                phase,
                start_ns: 0,
                depth: 0,
                counters: WorkCounters::ZERO,
            },
            Some(inner) => {
                let depth = SPAN_DEPTH.with(|d| {
                    let v = d.get();
                    d.set(v + 1);
                    v
                });
                Span {
                    inner: Some(inner),
                    phase,
                    start_ns: inner.clock.now_ns(),
                    depth,
                    counters: WorkCounters::ZERO,
                }
            }
        }
    }

    /// Current reading of the handle's clock (0 on a disabled handle).
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// The metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_ref().map(|i| &i.metrics)
    }

    /// Snapshot of the recorded spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.ring.lock().snapshot())
    }

    /// Spans lost to ring-buffer overwrite.
    pub fn dropped_spans(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ring.lock().dropped)
    }

    /// Total recorded wall time of one phase, in nanoseconds.
    pub fn phase_total_ns(&self, phase: PhaseKind) -> u64 {
        self.spans()
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.duration_ns)
            .sum()
    }

    /// Export every recorded span as Chrome-trace JSON (the
    /// `chrome://tracing` / Perfetto "JSON array with metadata" format:
    /// one complete `"ph":"X"` event per span, timestamps in
    /// microseconds).  Write it to a `.json` file and open it in
    /// [Perfetto](https://ui.perfetto.dev).
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.spans();
        let mut out = String::with_capacity(256 + spans.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"rtdbscan\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"depth\":{}",
                s.phase.name(),
                s.start_ns as f64 / 1_000.0,
                s.duration_ns as f64 / 1_000.0,
                s.thread,
                s.depth,
            ));
            for (label, value) in s.counters.summary_rows() {
                out.push_str(&format!(",\"{label}\":{value}"));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Human-readable per-phase aggregation: span count, total/mean wall
    /// time, and the summed non-zero work counters.
    pub fn summary_table(&self) -> String {
        let spans = self.spans();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>6} {:>12} {:>12}  counters\n",
            "phase", "spans", "total_ms", "mean_ms"
        ));
        for phase in PhaseKind::ALL {
            let mut count = 0u64;
            let mut total_ns = 0u64;
            let mut counters = WorkCounters::ZERO;
            for s in spans.iter().filter(|s| s.phase == phase) {
                count += 1;
                total_ns += s.duration_ns;
                counters += s.counters;
            }
            if count == 0 {
                continue;
            }
            let total_ms = total_ns as f64 / 1e6;
            let rows = counters.summary_rows();
            let detail: Vec<String> = rows
                .iter()
                .map(|(label, value)| format!("{label}={value}"))
                .collect();
            out.push_str(&format!(
                "{:<18} {:>6} {:>12.3} {:>12.3}  {}\n",
                phase.name(),
                count,
                total_ms,
                total_ms / count as f64,
                detail.join(" "),
            ));
        }
        out
    }
}

/// RAII guard for one phase interval; see [`Telemetry::span`].  Records a
/// [`SpanRecord`] when dropped (no-op for disabled handles).
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; bind it with `let`"]
pub struct Span<'a> {
    inner: Option<&'a Inner>,
    phase: PhaseKind,
    start_ns: u64,
    depth: u32,
    counters: WorkCounters,
}

impl Span<'_> {
    /// Attribute a work delta to this span (accumulates across calls).
    /// Free on disabled handles.
    pub fn add_counters(&mut self, delta: WorkCounters) {
        if self.inner.is_some() {
            self.counters += delta;
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner else { return };
        SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let end_ns = inner.clock.now_ns();
        inner.ring.lock().push(SpanRecord {
            phase: self.phase,
            start_ns: self.start_ns,
            duration_ns: end_ns.saturating_sub(self.start_ns),
            thread: thread_ordinal(),
            depth: self.depth,
            counters: self.counters,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_handle() -> (Telemetry, Arc<AtomicU64>) {
        let (clock, ticks) = Clock::manual();
        (Telemetry::with_clock(TelemetryConfig::Spans, clock), ticks)
    }

    #[test]
    fn deterministic_clock_drives_span_times() {
        let (tel, ticks) = manual_handle();
        ticks.store(100, Ordering::Relaxed);
        let span = tel.span(PhaseKind::LbvhBuild);
        ticks.store(350, Ordering::Relaxed);
        drop(span);
        let spans = tel.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start_ns, 100);
        assert_eq!(spans[0].duration_ns, 250);
        assert_eq!(spans[0].depth, 0);
    }

    #[test]
    fn nested_spans_record_children_first_with_increasing_depth() {
        let (tel, ticks) = manual_handle();
        let outer = tel.span(PhaseKind::Stage1Launch);
        ticks.store(10, Ordering::Relaxed);
        let inner = tel.span(PhaseKind::MortonReorder);
        ticks.store(20, Ordering::Relaxed);
        drop(inner);
        ticks.store(40, Ordering::Relaxed);
        drop(outer);

        let spans = tel.spans();
        assert_eq!(spans.len(), 2);
        // Children close (and record) before their parents.
        assert_eq!(spans[0].phase, PhaseKind::MortonReorder);
        assert_eq!(spans[1].phase, PhaseKind::Stage1Launch);
        assert_eq!((spans[0].depth, spans[1].depth), (1, 0));
        // The child's interval nests inside the parent's.
        assert!(spans[0].start_ns >= spans[1].start_ns);
        assert!(
            spans[0].start_ns + spans[0].duration_ns <= spans[1].start_ns + spans[1].duration_ns
        );
        // Depth bookkeeping unwinds fully.
        let reopened = tel.span(PhaseKind::Refit);
        assert_eq!(reopened.depth, 0);
    }

    #[test]
    fn counters_accumulate_onto_the_span() {
        let (tel, _ticks) = manual_handle();
        let mut span = tel.span(PhaseKind::Stage2UnionFind);
        span.add_counters(WorkCounters {
            union_ops: 5,
            ..WorkCounters::ZERO
        });
        span.add_counters(WorkCounters {
            union_ops: 2,
            find_ops: 9,
            ..WorkCounters::ZERO
        });
        drop(span);
        let spans = tel.spans();
        assert_eq!(spans[0].counters.union_ops, 7);
        assert_eq!(spans[0].counters.find_ops, 9);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert_eq!(tel.config(), TelemetryConfig::Off);
        let mut span = tel.span(PhaseKind::LbvhBuild);
        span.add_counters(WorkCounters {
            rays: 1,
            ..WorkCounters::ZERO
        });
        drop(span);
        assert!(tel.spans().is_empty());
        assert!(tel.metrics().is_none());
        assert_eq!(
            tel.chrome_trace_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let (clock, ticks) = Clock::manual();
        let tel = Telemetry::with_clock_and_capacity(TelemetryConfig::Spans, clock, 3);
        for i in 0..5u64 {
            ticks.store(i * 100, Ordering::Relaxed);
            drop(tel.span(PhaseKind::Refit));
        }
        let spans = tel.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(tel.dropped_spans(), 2);
        // Oldest-first snapshot of the last three records.
        assert_eq!(spans[0].start_ns, 200);
        assert_eq!(spans[2].start_ns, 400);
    }

    #[test]
    fn clones_share_one_recorder() {
        let (tel, _ticks) = manual_handle();
        let clone = tel.clone();
        drop(clone.span(PhaseKind::Rebuild));
        drop(tel.span(PhaseKind::Refit));
        assert_eq!(tel.spans().len(), 2);
        assert_eq!(clone.spans().len(), 2);
    }

    #[test]
    fn phase_names_are_stable_and_unique() {
        let mut names: Vec<&str> = PhaseKind::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PhaseKind::ALL.len());
    }

    #[test]
    fn summary_table_lists_only_recorded_phases() {
        let (tel, ticks) = manual_handle();
        let mut span = tel.span(PhaseKind::Stage1Launch);
        span.add_counters(WorkCounters {
            rays: 7,
            ..WorkCounters::ZERO
        });
        ticks.store(2_000_000, Ordering::Relaxed);
        drop(span);
        let table = tel.summary_table();
        assert!(table.contains("stage1_launch"));
        assert!(table.contains("rays=7"));
        assert!(!table.contains("refit"));
    }
}

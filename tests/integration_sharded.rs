//! Two-level scene equivalence suite: a TLAS over sharded bottom-level
//! scenes must be *indistinguishable* from the flat wide-batched backend —
//! same labels, same neighbour sets, same CSR rows, and (with the builder
//! pinned to LBVH, full-precision lanes and no early exit) the same
//! `dist_comps` / `prim_tests` counters, because aligned Morton sharding
//! reproduces the flat tree's leaf partition exactly.
//!
//! Also home of the refit/re-collapse invariant property: `bvh::refit`
//! removals and updates followed by a BVH4 re-collapse must keep every
//! [`validate_wide`] invariant, including emptied leaves and a fully
//! evicted (Morton-range) shard.

use proptest::prelude::*;
use rtcore::bvh::{
    remove_points, spheres_from_points, update_spheres, validate_wide, BuilderKind, BvhBuilder,
    LbvhBuilder, WideBvh,
};
use rtcore::geometry::Point3;
use rtcore::hardware::WorkCounters;
use rtcore::index::{IndexKind, NeighborIndex, NeighborIndexBuilder, ShardingConfig};
use rtdbscan::metrics::same_clustering;
use rtdbscan::{ClusterEngine, DbscanParams};

/// Mixed workload: blobs laid out in a row (so clusters span the Morton
/// shard cuts), plus far-away noise and exact duplicates.
fn workload(
    blobs: usize,
    per_blob: usize,
    noise: usize,
    duplicates: usize,
    seed: u64,
) -> Vec<Point3> {
    let mut pts = Vec::new();
    for b in 0..blobs {
        let cx = b as f32 * 4.0;
        for i in 0..per_blob {
            let angle = (i as f32 + seed as f32) * 0.7;
            let radius = 1.4 * ((i * 7 + b * 3) % 10) as f32 / 10.0;
            pts.push(Point3::new_2d(
                cx + radius * angle.cos(),
                radius * angle.sin(),
            ));
        }
    }
    for i in 0..noise {
        pts.push(Point3::new_2d(
            40.0 + (i as f32 * 13.7 + seed as f32) % 40.0,
            -40.0 - (i as f32 * 7.3) % 40.0,
        ));
    }
    for i in 0..duplicates.min(pts.len()) {
        pts.push(pts[i * 31 % pts.len()]);
    }
    pts
}

/// Counter-identity requires the same construction choices on both sides:
/// LBVH (aligned sharding reproduces its subtrees), full-precision lanes,
/// no early exit.
fn flat_index(points: &[Point3], eps: f32) -> Box<dyn NeighborIndex> {
    NeighborIndexBuilder {
        bvh_builder: BuilderKind::Lbvh,
        min_parallel_launch: 0,
        batch_size: 64,
        ..NeighborIndexBuilder::new(IndexKind::WideBatched)
    }
    .build(points, eps)
    .unwrap()
}

fn sharded_index(points: &[Point3], eps: f32, shard: usize) -> Box<dyn NeighborIndex> {
    NeighborIndexBuilder {
        bvh_builder: BuilderKind::Lbvh,
        min_parallel_launch: 0,
        batch_size: 64,
        sharding: Some(ShardingConfig::new(shard)),
        ..NeighborIndexBuilder::new(IndexKind::WideBatched)
    }
    .build(points, eps)
    .unwrap()
}

/// Per-query sorted neighbour rows: CSR emission order may differ between
/// one flat launch and per-shard sub-launches, the *sets* may not.
fn sorted_rows(
    index: &dyn NeighborIndex,
    queries: &[Point3],
    eps: f32,
) -> (Vec<Vec<u32>>, WorkCounters) {
    let mut counters = WorkCounters::ZERO;
    let csr = index.batch_neighbors_csr(queries, eps, &mut counters);
    let rows = (0..queries.len())
        .map(|q| {
            let mut row: Vec<u32> = csr.neighbors(q).to_vec();
            row.sort_unstable();
            row
        })
        .collect();
    (rows, counters)
}

#[test]
fn boundary_spanning_cluster_stitches_into_one_label() {
    // One dense line of points crossing every shard cut: the flat path sees
    // one cluster, and the stitched path must agree even though every
    // ε-neighbourhood on a cut straddles two BLASes.
    let pts: Vec<Point3> = (0..600)
        .map(|i| Point3::new_2d(i as f32 * 0.4, 0.0))
        .collect();
    let params = DbscanParams::new(0.5, 2).unwrap();
    let flat = ClusterEngine::builder()
        .eps(params.eps)
        .min_pts(params.min_pts)
        .bvh_builder(BuilderKind::Lbvh)
        .build()
        .unwrap()
        .run(&pts)
        .unwrap();
    let sharded = ClusterEngine::builder()
        .eps(params.eps)
        .min_pts(params.min_pts)
        .bvh_builder(BuilderKind::Lbvh)
        .shard_size(64)
        .build()
        .unwrap()
        .run(&pts)
        .unwrap();
    assert_eq!(sharded.clustering.num_clusters(), 1);
    assert_eq!(flat.clustering.core, sharded.clustering.core);
    assert!(same_clustering(
        &flat.clustering,
        &sharded.clustering,
        &pts,
        params
    ));
    // Stage-1 candidate work is bit-identical under aligned LBVH sharding.
    assert_eq!(
        flat.counters.core_identification.dist_comps,
        sharded.counters.core_identification.dist_comps
    );
    assert_eq!(
        flat.counters.core_identification.prim_tests,
        sharded.counters.core_identification.prim_tests
    );
}

#[test]
fn exact_eps_distances_agree_across_the_shard_cut() {
    // Grid spacing exactly ε: every on-boundary pair must be admitted (or
    // not) identically by both paths — a ULP of slop in the stitched
    // distance math would show up here.
    let eps = 1.0f32;
    let pts: Vec<Point3> = (0..24 * 24)
        .map(|i| Point3::new_2d((i % 24) as f32 * eps, (i / 24) as f32 * eps))
        .collect();
    let flat = flat_index(&pts, eps);
    let sharded = sharded_index(&pts, eps, 96);
    let (flat_rows, fc) = sorted_rows(flat.as_ref(), &pts, eps);
    let (sharded_rows, sc) = sorted_rows(sharded.as_ref(), &pts, eps);
    assert_eq!(flat_rows, sharded_rows);
    assert_eq!(fc.dist_comps, sc.dist_comps);
    assert_eq!(fc.prim_tests, sc.prim_tests);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: on arbitrary blob + noise + duplicate workloads, the
    /// sharded engine produces identical core flags and an equivalent
    /// clustering to the flat engine, with identical stage-1 candidate
    /// counters.
    #[test]
    fn sharded_engine_matches_flat_engine(
        blobs in 1usize..5,
        per_blob in 10usize..60,
        noise in 0usize..25,
        duplicates in 0usize..20,
        eps in 0.4f32..1.6,
        min_pts in 2usize..7,
        shard in 32usize..120,
        seed in 0u64..1000,
    ) {
        let pts = workload(blobs, per_blob, noise, duplicates, seed);
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let flat = ClusterEngine::builder()
            .eps(eps)
            .min_pts(min_pts)
            .bvh_builder(BuilderKind::Lbvh)
            .build()
            .unwrap()
            .run(&pts)
            .unwrap();
        let sharded = ClusterEngine::builder()
            .eps(eps)
            .min_pts(min_pts)
            .bvh_builder(BuilderKind::Lbvh)
            .shard_size(shard)
            .build()
            .unwrap()
            .run(&pts)
            .unwrap();
        prop_assert_eq!(&flat.clustering.core, &sharded.clustering.core);
        prop_assert!(same_clustering(&flat.clustering, &sharded.clustering, &pts, params));
        prop_assert_eq!(
            flat.counters.core_identification.dist_comps,
            sharded.counters.core_identification.dist_comps
        );
        prop_assert_eq!(
            flat.counters.core_identification.prim_tests,
            sharded.counters.core_identification.prim_tests
        );
    }

    /// Property: the raw index surfaces agree — per-row sorted CSR
    /// neighbour sets and candidate counters are identical between the
    /// flat and sharded backends on the same workload.
    #[test]
    fn sharded_csr_rows_and_counters_match_flat(
        blobs in 1usize..4,
        per_blob in 10usize..50,
        duplicates in 0usize..15,
        eps in 0.4f32..1.4,
        shard in 24usize..100,
        seed in 0u64..1000,
    ) {
        let pts = workload(blobs, per_blob, 8, duplicates, seed);
        let flat = flat_index(&pts, eps);
        let sharded = sharded_index(&pts, eps, shard);
        let (flat_rows, fc) = sorted_rows(flat.as_ref(), &pts, eps);
        let (sharded_rows, sc) = sorted_rows(sharded.as_ref(), &pts, eps);
        prop_assert_eq!(flat_rows, sharded_rows);
        prop_assert_eq!(fc.dist_comps, sc.dist_comps);
        prop_assert_eq!(fc.prim_tests, sc.prim_tests);
    }

    /// Property (satellite): refit removals and in-place updates followed
    /// by a BVH4 re-collapse keep every wide-scene invariant — including
    /// leaves emptied by the removal and a whole Morton-range shard
    /// evicted to nothing.
    #[test]
    fn refit_then_recollapse_keeps_wide_invariants(
        n in 2usize..300,
        remove_modulus in 1u32..6,
        drift in 0.0f32..2.0,
        seed in 0u64..1000,
    ) {
        let pts: Vec<Point3> = (0..n)
            .map(|i| {
                let a = (i as f32 + seed as f32) * 0.61;
                Point3::new(a.cos() * (i % 17) as f32, a.sin() * (i % 13) as f32, (i % 5) as f32)
            })
            .collect();
        let mut bvh = LbvhBuilder::default()
            .build(spheres_from_points(&pts, 0.3))
            .unwrap();
        let mut counters = WorkCounters::ZERO;

        // Removal leaves some leaves partially emptied and (for
        // remove_modulus == 1) the entire tree evicted.
        remove_points(&mut bvh, |i| i % remove_modulus == 0, &mut counters);
        let wide = WideBvh::from_binary(&bvh);
        prop_assert!(validate_wide(&wide).is_ok(), "{:?}", validate_wide(&wide));
        if remove_modulus == 1 {
            prop_assert_eq!(wide.primitive_count(), 0);
        }

        // In-place motion then re-collapse: bounds must still contain the
        // moved primitives.
        update_spheres(
            &mut bvh,
            |s| {
                s.center.x += drift * (s.point_index % 3) as f32;
                s.center.y -= drift * (s.point_index % 2) as f32;
            },
            &mut counters,
        );
        let wide = WideBvh::from_binary(&bvh);
        prop_assert!(validate_wide(&wide).is_ok(), "{:?}", validate_wide(&wide));
    }

    /// Property (satellite): evicting an entire shard from a two-level
    /// scene drops its BLAS and leaves every remaining query answer exact.
    #[test]
    fn evicting_a_full_shard_keeps_sharded_answers_exact(
        n_side in 8usize..18,
        shard in 16usize..80,
        victim_pick in 0usize..8,
    ) {
        let pts: Vec<Point3> = (0..n_side * n_side)
            .map(|i| Point3::new_2d((i % n_side) as f32, (i / n_side) as f32))
            .collect();
        let eps = 1.2f32;
        let mut index = sharded_index(&pts, eps, shard);
        let sharded = index.as_sharded().unwrap();
        let shard_count = sharded.shard_count();
        if shard_count < 2 {
            // A single-shard plan has no shard to evict around; skip.
            return Ok(());
        }
        let victim = (victim_pick % shard_count) as u32;
        let evicted: Vec<u32> = (0..pts.len() as u32)
            .filter(|&i| index.as_sharded().unwrap().owner_shard(i) == Some(victim))
            .collect();
        index.remove(&evicted).unwrap();
        prop_assert_eq!(
            index.as_sharded().unwrap().live_shard_count(),
            shard_count - 1
        );
        let gone: Vec<bool> = {
            let mut gone = vec![false; pts.len()];
            for &i in &evicted {
                gone[i as usize] = true;
            }
            gone
        };
        let mut c = WorkCounters::ZERO;
        for q in (0..pts.len()).step_by(13) {
            let mut got = index.neighbors_of(pts[q], eps, Some(q as u32), &mut c);
            got.sort_unstable();
            let mut want: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|&(j, p)| {
                    j != q && !gone[j] && p.distance_squared(pts[q]) <= eps * eps
                })
                .map(|(j, _)| j as u32)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "query {}", q);
        }
    }
}

//! User-programmable pipeline stages.

use crate::geometry::{Ray, Sphere};
use crate::hardware::WorkCounters;

/// Control-flow decision returned by the Intersection / AnyHit programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramFlow {
    /// Keep traversing: more candidate primitives may be reported for this
    /// ray.
    Continue,
    /// Terminate traversal of this ray.  OptiX only allows this from the
    /// AnyHit program; the simulator permits it from the Intersection
    /// program too so the early-exit ablation can be expressed, but
    /// RT-DBSCAN itself never uses it (Section VI-B).
    TerminateRay,
}

/// How sphere primitives are presented to the (simulated) hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GeometryKind {
    /// Custom sphere primitives with a user Intersection program — the
    /// configuration RT-DBSCAN uses.
    #[default]
    CustomSpheres,
    /// Spheres tessellated into triangles so the hardware ray–triangle unit
    /// can be used.  Every accepted hit must then go through the AnyHit
    /// program, which Section VI-C measures as a 2–5× slowdown.
    TriangleSpheres {
        /// Number of triangles each sphere is tessellated into.
        triangles_per_sphere: u32,
    },
}

/// The bundle of user programs bound to a pipeline launch.
///
/// `Payload` is the per-ray state (OptiX's ray payload registers): the
/// neighbour count for stage 1 of RT-DBSCAN, or nothing at all for stage 2,
/// which updates the disjoint-set structure directly from the Intersection
/// program.
pub trait RayProgram: Sync {
    /// Per-ray payload carried through the launch and returned to the caller.
    type Payload: Send;

    /// RayGen program: produce the ray and initial payload for a launch
    /// index.
    fn ray_gen(&self, launch_index: usize) -> (Ray, Self::Payload);

    /// Intersection program: invoked for every primitive in every leaf whose
    /// bounds the ray reached.  The program is responsible for the exact
    /// sphere membership test (bounding boxes are conservative) and for any
    /// algorithm-specific work; it reports the work it does through
    /// `counters`.
    fn intersection(
        &self,
        launch_index: usize,
        sphere: &Sphere,
        ray: &Ray,
        payload: &mut Self::Payload,
        counters: &mut WorkCounters,
    ) -> ProgramFlow;

    /// AnyHit program: only invoked for [`GeometryKind::TriangleSpheres`]
    /// geometry, once per accepted hit.  The default implementation does
    /// nothing and continues traversal.
    fn any_hit(
        &self,
        _launch_index: usize,
        _sphere: &Sphere,
        _ray: &Ray,
        _payload: &mut Self::Payload,
        _counters: &mut WorkCounters,
    ) -> ProgramFlow {
        ProgramFlow::Continue
    }

    /// Miss program: invoked when the ray's traversal reached no primitive at
    /// all.  The default implementation does nothing.
    fn miss(&self, _launch_index: usize, _payload: &mut Self::Payload) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point3;

    struct Trivial;
    impl RayProgram for Trivial {
        type Payload = usize;
        fn ray_gen(&self, launch_index: usize) -> (Ray, usize) {
            (Ray::epsilon_ray(Point3::ORIGIN), launch_index)
        }
        fn intersection(
            &self,
            _launch_index: usize,
            _sphere: &Sphere,
            _ray: &Ray,
            payload: &mut usize,
            _counters: &mut WorkCounters,
        ) -> ProgramFlow {
            *payload += 1;
            ProgramFlow::Continue
        }
    }

    #[test]
    fn default_geometry_is_custom_spheres() {
        assert_eq!(GeometryKind::default(), GeometryKind::CustomSpheres);
    }

    #[test]
    fn default_any_hit_and_miss_are_noops() {
        let p = Trivial;
        let sphere = Sphere::new(Point3::ORIGIN, 1.0, 0);
        let ray = Ray::epsilon_ray(Point3::ORIGIN);
        let mut payload = 0usize;
        let mut counters = WorkCounters::ZERO;
        assert_eq!(
            p.any_hit(0, &sphere, &ray, &mut payload, &mut counters),
            ProgramFlow::Continue
        );
        p.miss(0, &mut payload);
        assert_eq!(payload, 0);
        assert_eq!(counters, WorkCounters::ZERO);
    }

    #[test]
    fn program_flow_equality() {
        assert_ne!(ProgramFlow::Continue, ProgramFlow::TerminateRay);
    }
}

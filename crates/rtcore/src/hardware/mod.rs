//! The simulated device: work counters, cost profiles and memory budget.
//!
//! The paper's speedups come from running BVH build and traversal on RT
//! cores instead of shader (SM) cores.  Without RT hardware we cannot measure
//! those speedups as wall-clock time, so this module makes the cost structure
//! explicit instead:
//!
//! 1. every unit of work the algorithms perform (BVH node visits, AABB tests,
//!    primitive intersection tests, distance computations, build and sort
//!    operations, union-find operations …) is **counted** — these counters are
//!    real measurements of algorithmic work, identical to what a profiler
//!    would report on the authors' testbed; and
//! 2. a [`DeviceModel`] converts the counters into *simulated execution time*
//!    using per-operation costs calibrated against the paper's own runtime
//!    analysis (Section V-D): the RT build is ~2.5× more expensive per
//!    primitive than a plain spatial-tree build, while RT traversal and
//!    intersection are ~an order of magnitude cheaper per operation than the
//!    same work done in shader code.
//!
//! Benchmarks report both wall-clock time of this software implementation
//! (useful for comparing the Rust code against itself) and simulated device
//! time (used to regenerate the paper's tables and figures).

mod counters;
mod device;
mod memory;

pub use counters::{sat_bump, SharedCounters, WorkCounters};
pub use device::{CostProfile, DeviceModel, ExecutionPath, SimulatedDuration};
pub use memory::MemoryTracker;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_are_usable() {
        let mut c = WorkCounters::default();
        c.node_visits += 10;
        let model = DeviceModel::rtx2060();
        let t = model.traversal_time(&c, ExecutionPath::RtCore);
        assert!(t.as_secs_f64() > 0.0);
    }
}

//! Allocation regression tests for the zero-allocation hot path.
//!
//! A counting global allocator wraps the system allocator; after one
//! warm-up launch has grown every scratch arena, repeated batched
//! neighbour launches on a reused index (or engine session) must perform
//! **zero** heap allocations — the property the `TraversalScratch` /
//! `ScratchPool` design exists to provide.  Measurements run on the
//! sequential dispatch path (the parallel path hands work to scoped
//! threads, whose spawning allocates by design); a static mutex serialises
//! the measured sections so concurrently running tests cannot blur each
//! other's counts.
//!
//! The same file property-tests the CSR output mode: on blobs plus exact
//! duplicates plus exact-ε boundary pairs, `batch_neighbors_csr` must
//! report exactly the callback-mode neighbour sets (per query, in order)
//! at exactly the callback-mode counter cost, and `batch_neighbor_counts`
//! must agree with per-query counting.

use proptest::prelude::*;
use rtcore::geometry::Point3;
use rtcore::hardware::WorkCounters;
use rtcore::index::{CsrNeighbors, IndexKind, NeighborFlow, NeighborIndexBuilder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------------

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serialises measured sections across the test binary's worker threads
/// (any concurrent test's allocations would otherwise leak into a
/// measurement).  Recovers from poisoning: a failed sibling test must not
/// cascade.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

fn measure_guard() -> std::sync::MutexGuard<'static, ()> {
    MEASURE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Allocation calls performed by `f` (alloc + alloc_zeroed + realloc).
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    f();
    ALLOC_CALLS.load(Ordering::SeqCst) - before
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// Three dense blobs plus exact duplicates plus an exact-ε pair — the
/// boundary zoo the equivalence suites use.
fn workload(n_per_blob: usize, eps: f32) -> Vec<Point3> {
    let mut pts = Vec::new();
    for b in 0..3 {
        let cx = (b % 2) as f32 * 8.0;
        let cy = (b / 2) as f32 * 8.0;
        for i in 0..n_per_blob {
            let a = i as f32 * 0.61;
            let r = 1.2 * ((i * 13 + b * 5) % 17) as f32 / 17.0;
            pts.push(Point3::new_2d(cx + r * a.cos(), cy + r * a.sin()));
        }
    }
    pts.push(pts[0]);
    pts.push(pts[0]); // exact duplicates
    pts.push(Point3::new_2d(50.0, 0.0));
    pts.push(Point3::new_2d(50.0 + eps, 0.0)); // exact-ε pair
    pts
}

/// A builder whose batched launches stay on the sequential dispatch path.
fn sequential_builder(kind: IndexKind) -> NeighborIndexBuilder {
    NeighborIndexBuilder {
        min_parallel_launch: usize::MAX,
        batch_size: 128,
        ..NeighborIndexBuilder::new(kind)
    }
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state
// ---------------------------------------------------------------------------

#[test]
fn steady_state_batch_neighbors_is_allocation_free_on_every_backend() {
    let eps = 0.9f32;
    let points = workload(400, eps);
    for kind in IndexKind::ALL {
        let index = sequential_builder(kind).build(&points, eps).unwrap();
        let hits = AtomicU64::new(0);
        let sink = |_q: usize, _n: rtcore::index::Neighbor, _c: &mut WorkCounters| {
            hits.fetch_add(1, Ordering::Relaxed);
            NeighborFlow::Continue
        };

        let guard = measure_guard();
        // Warm-up launch: grows every per-worker scratch arena.
        let mut counters = WorkCounters::ZERO;
        index.batch_neighbors(&points, eps, &mut counters, &sink);
        let warm_hits = hits.swap(0, Ordering::Relaxed);
        assert!(warm_hits > 0, "{kind:?}: workload must produce neighbours");

        // Steady state: repeated launches on the reused index allocate
        // nothing at all.
        let allocs = allocations_during(|| {
            for _ in 0..3 {
                let mut c = WorkCounters::ZERO;
                index.batch_neighbors(&points, eps, &mut c, &sink);
            }
        });
        drop(guard);
        assert_eq!(
            allocs, 0,
            "{kind:?}: steady-state batch_neighbors must not allocate"
        );
        assert_eq!(hits.load(Ordering::Relaxed), 3 * warm_hits, "{kind:?}");
    }
}

#[test]
fn steady_state_count_mode_is_allocation_free() {
    let eps = 0.9f32;
    let points = workload(400, eps);
    for kind in [IndexKind::BinaryBvh, IndexKind::WideBatched] {
        let index = sequential_builder(kind).build(&points, eps).unwrap();
        let counts: Vec<AtomicU64> = (0..points.len()).map(|_| AtomicU64::new(0)).collect();

        let guard = measure_guard();
        let mut counters = WorkCounters::ZERO;
        index.batch_neighbor_counts(&points, eps, true, None, &mut counters, &counts);

        let allocs = allocations_during(|| {
            for _ in 0..3 {
                for c in &counts {
                    c.store(0, Ordering::Relaxed);
                }
                let mut c = WorkCounters::ZERO;
                index.batch_neighbor_counts(&points, eps, true, None, &mut c, &counts);
            }
        });
        drop(guard);
        assert_eq!(
            allocs, 0,
            "{kind:?}: steady-state batch_neighbor_counts must not allocate"
        );
    }
}

#[test]
fn steady_state_session_launches_are_allocation_free() {
    use rtdbscan::engine::{Algo, ClusterEngine};

    // Small enough that the engine's default launch configuration stays on
    // the sequential dispatch path (n < min_parallel_launch).
    let eps = 0.9f32;
    let points = workload(60, eps);
    assert!(points.len() < 256);
    let engine = ClusterEngine::builder()
        .algorithm(Algo::Rt)
        .index(IndexKind::WideBatched)
        .eps(eps)
        .min_pts(4)
        .build()
        .unwrap();
    // The session's construction performs the index build and the stage-1
    // count — the warm-up that sizes every scratch arena.
    let session = engine.session(&points).unwrap();
    let index = session.index();
    let hits = AtomicU64::new(0);
    let sink = |_q: usize, _n: rtcore::index::Neighbor, _c: &mut WorkCounters| {
        hits.fetch_add(1, Ordering::Relaxed);
        NeighborFlow::Continue
    };
    let guard = measure_guard();
    let mut c = WorkCounters::ZERO;
    index.batch_neighbors(&points, eps, &mut c, &sink);

    let allocs = allocations_during(|| {
        for _ in 0..3 {
            let mut c = WorkCounters::ZERO;
            index.batch_neighbors(&points, eps, &mut c, &sink);
        }
    });
    drop(guard);
    assert_eq!(
        allocs, 0,
        "steady-state launches through a reused engine session must not allocate"
    );
    assert!(hits.load(Ordering::Relaxed) > 0);
}

#[test]
fn inert_cancel_scope_is_allocation_free_and_counter_identical() {
    use rtcore::fault::CancelScope;

    // The robustness layer must be provably free when unused: with
    // `FaultPlan::Off` (the builder default) and `CancelScope::none()`,
    // steady-state cancellable launches perform zero heap allocations and
    // count bit-identical work to the unchecked entry point.
    let eps = 0.9f32;
    let points = workload(400, eps);
    let scope = CancelScope::none();
    for kind in [IndexKind::BinaryBvh, IndexKind::WideBatched] {
        let index = sequential_builder(kind).build(&points, eps).unwrap();
        let sink =
            |_q: usize, _n: rtcore::index::Neighbor, _c: &mut WorkCounters| NeighborFlow::Continue;

        let guard = measure_guard();
        let mut unchecked = WorkCounters::ZERO;
        index.batch_neighbors(&points, eps, &mut unchecked, &sink);

        let mut checked = WorkCounters::ZERO;
        let allocs = allocations_during(|| {
            for _ in 0..3 {
                checked = WorkCounters::ZERO;
                index
                    .batch_neighbors_cancellable(&points, eps, &mut checked, &sink, &scope)
                    .unwrap();
            }
        });
        drop(guard);
        assert_eq!(
            allocs, 0,
            "{kind:?}: an inert scope must not allocate in steady state"
        );
        assert_eq!(
            checked, unchecked,
            "{kind:?}: deadline checks must not change counted work"
        );
    }
}

#[test]
fn csr_rebuild_into_warm_buffers_is_allocation_free() {
    use rtcore::bvh::{spheres_from_points, BvhBuilder, SahBuilder, WideBvh};
    use rtcore::geometry::Ray;
    use rtcore::traversal::{collect_sphere_hits_csr, TraversalScratch};

    let eps = 0.9f32;
    let points = workload(200, eps);
    let bvh = SahBuilder::default()
        .build(spheres_from_points(&points, eps))
        .unwrap();
    let wide = WideBvh::from_binary(&bvh);
    let rays: Vec<Ray> = points.iter().map(|&p| Ray::epsilon_ray(p)).collect();
    let exclude: Vec<Option<u32>> = (0..points.len()).map(|i| Some(i as u32)).collect();

    let mut scratch = TraversalScratch::default();
    let mut csr = CsrNeighbors::new();
    let guard = measure_guard();
    let mut c = WorkCounters::ZERO;
    collect_sphere_hits_csr(&wide, &rays, &exclude, &mut scratch, &mut c, &mut csr);
    assert!(csr.total_neighbors() > 0);

    let allocs = allocations_during(|| {
        for _ in 0..3 {
            let mut c = WorkCounters::ZERO;
            collect_sphere_hits_csr(&wide, &rays, &exclude, &mut scratch, &mut c, &mut csr);
        }
    });
    drop(guard);
    assert_eq!(
        allocs, 0,
        "CSR rebuilds into warm buffers must not allocate"
    );
}

#[test]
fn explicit_telemetry_off_keeps_the_steady_state_allocation_free() {
    use rtcore::telemetry::TelemetryConfig;

    // `TelemetryConfig::Off` is the default, but the knob must also cost
    // nothing when spelled out: no recorder is allocated and the warm
    // steady state stays allocation-free, so opting the field in (even
    // explicitly) cannot regress the zero-allocation hot path.
    let eps = 0.9f32;
    let points = workload(400, eps);
    for kind in [IndexKind::BinaryBvh, IndexKind::WideBatched] {
        let index = NeighborIndexBuilder {
            telemetry: TelemetryConfig::Off,
            ..sequential_builder(kind)
        }
        .build(&points, eps)
        .unwrap();
        assert!(
            index.telemetry().is_none() && index.heatmap().is_none(),
            "{kind:?}: Off must not allocate a recorder or heatmap"
        );
        let counts: Vec<AtomicU64> = (0..points.len()).map(|_| AtomicU64::new(0)).collect();

        let guard = measure_guard();
        let mut counters = WorkCounters::ZERO;
        index.batch_neighbor_counts(&points, eps, true, None, &mut counters, &counts);

        let allocs = allocations_during(|| {
            for _ in 0..3 {
                let mut c = WorkCounters::ZERO;
                index.batch_neighbor_counts(&points, eps, true, None, &mut c, &counts);
            }
        });
        drop(guard);
        assert_eq!(
            allocs, 0,
            "{kind:?}: explicit TelemetryConfig::Off must not allocate in steady state"
        );
    }
}

// ---------------------------------------------------------------------------
// CSR ≡ callback mode (property test)
// ---------------------------------------------------------------------------

fn callback_lists(
    index: &dyn rtcore::index::NeighborIndex,
    points: &[Point3],
    eps: f32,
) -> (Vec<Vec<u32>>, WorkCounters) {
    let lists: Vec<Mutex<Vec<u32>>> = (0..points.len()).map(|_| Mutex::new(Vec::new())).collect();
    let mut counters = WorkCounters::ZERO;
    index.batch_neighbors(points, eps, &mut counters, &|q, n, _| {
        lists[q].lock().unwrap().push(n.index);
        NeighborFlow::Continue
    });
    (
        lists.into_iter().map(|m| m.into_inner().unwrap()).collect(),
        counters,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn csr_output_equals_callback_mode_on_every_backend(
        n_per_blob in 20usize..60,
        eps in 0.4f32..1.2,
        seed in 0u64..u64::MAX,
    ) {
        let _guard = measure_guard();
        let mut points = workload(n_per_blob, eps);
        // Seed-dependent jitter point so cases differ.
        points.push(Point3::new_2d((seed % 97) as f32 * 0.1, (seed % 89) as f32 * 0.1));
        for kind in IndexKind::ALL {
            let index = NeighborIndexBuilder::new(kind).build(&points, eps).unwrap();
            let (lists, cb_counters) = callback_lists(index.as_ref(), &points, eps);

            let mut csr_counters = WorkCounters::ZERO;
            let csr = index.batch_neighbors_csr(&points, eps, &mut csr_counters);

            prop_assert!(
                cb_counters == csr_counters,
                "{:?}: CSR mode changed counted work: {:?} vs {:?}",
                kind, cb_counters, csr_counters
            );
            prop_assert_eq!(csr.num_queries(), points.len());
            for (q, list) in lists.iter().enumerate() {
                prop_assert!(
                    csr.neighbors(q) == list.as_slice(),
                    "{:?} query {} differs: {:?} vs {:?}",
                    kind, q, csr.neighbors(q), list
                );
            }
        }
    }

    #[test]
    fn count_mode_equals_per_query_counts_on_every_backend(
        n_per_blob in 20usize..60,
        eps in 0.4f32..1.2,
        early_exit_bit in 0u64..2,
    ) {
        let early_exit = early_exit_bit == 1;
        let _guard = measure_guard();
        let points = workload(n_per_blob, eps);
        let min_pts = 5u64;
        for kind in IndexKind::ALL {
            let index = NeighborIndexBuilder::new(kind).build(&points, eps).unwrap();

            // Reference: the count sink driven through callback mode (the
            // pre-redesign stage-1 formulation).
            let ref_counts: Vec<AtomicU64> =
                (0..points.len()).map(|_| AtomicU64::new(0)).collect();
            let mut ref_counters = WorkCounters::ZERO;
            index.batch_neighbors(&points, eps, &mut ref_counters, &|q, nb, _| {
                let own = nb.index == index.representative_of(q as u32);
                let add = if own { nb.multiplicity.saturating_sub(1) as u64 } else { nb.multiplicity as u64 };
                if add == 0 {
                    return NeighborFlow::Continue;
                }
                let total = ref_counts[q].fetch_add(add, Ordering::Relaxed) + add;
                if early_exit && total >= min_pts {
                    NeighborFlow::Stop
                } else {
                    NeighborFlow::Continue
                }
            });

            let counts: Vec<AtomicU64> = (0..points.len()).map(|_| AtomicU64::new(0)).collect();
            let mut counters = WorkCounters::ZERO;
            index.batch_neighbor_counts(
                &points,
                eps,
                true,
                early_exit.then_some(min_pts),
                &mut counters,
                &counts,
            );

            prop_assert!(
                ref_counters == counters,
                "{:?} early_exit={}: count mode changed counted work: {:?} vs {:?}",
                kind, early_exit, ref_counters, counters
            );
            for q in 0..points.len() {
                prop_assert!(
                    counts[q].load(Ordering::Relaxed) == ref_counts[q].load(Ordering::Relaxed),
                    "{:?} early_exit={} query {}: {} vs {}",
                    kind, early_exit, q,
                    counts[q].load(Ordering::Relaxed),
                    ref_counts[q].load(Ordering::Relaxed)
                );
            }
        }
    }
}

//! Runtime SIMD dispatch for the traversal hot path.
//!
//! The wide (BVH4) engines have two inner loops worth vectorising: the
//! 4-slot point-in-box test of [`crate::bvh::WideNode::point_hit_mask_xyz`]
//! and the leaf-run squared-distance count of the stage-1 neighbour-count
//! launch.  This module owns the **dispatch policy** for both:
//!
//! * [`SimdLevel`] — what the launch actually runs: portable scalar code,
//!   SSE2 lane compares (baseline on `x86_64`), or AVX2 (runtime-detected
//!   via `is_x86_feature_detected!`).
//! * [`SimdPolicy`] — what the caller asked for.  `Auto` resolves to the
//!   best detected level; forcing a level above what the CPU supports
//!   falls back to the best available one, and every policy resolves to
//!   [`SimdLevel::Scalar`] on non-x86 targets.
//!
//! Resolution happens **once per launch** (the backends cache the resolved
//! level at index build), never per node: the traversal engines are
//! monomorphised per level, so the inner loops contain no dispatch at all.
//!
//! Every SIMD kernel in the workspace is bit-exact against its scalar
//! fallback: comparisons use the same predicates (`>=`/`<=`, false on NaN)
//! and squared distances are accumulated in the same association order
//! (`(dx² + dy²) + dz²`, no FMA), so enabling SIMD can never change a hit
//! mask, a neighbour set or a counter — only wall-clock.  This module also
//! hosts the leaf-run count kernels that consume the structure-of-arrays
//! primitive lanes of [`crate::bvh::PrimLanes`].

/// What SIMD capability a launch actually runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Portable scalar code — the reference every SIMD kernel must match
    /// bit for bit.
    Scalar,
    /// 128-bit SSE2 lane compares (always available on `x86_64`).
    Sse2,
    /// 256-bit AVX2 kernels (runtime-detected).
    Avx2,
}

impl SimdLevel {
    /// Report name used by benches and logs.
    pub fn name(&self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// Which SIMD level a launch should use — the configuration knob carried
/// by `NeighborIndexBuilder` and `PipelineConfig`.
///
/// # Examples
///
/// ```
/// use rtcore::simd::{SimdLevel, SimdPolicy};
///
/// // Auto resolves once (per launch, not per node) to the best level the
/// // CPU supports; forcing a level the CPU lacks falls back gracefully.
/// let level = SimdPolicy::Auto.resolve();
/// assert_eq!(SimdPolicy::Scalar.resolve(), SimdLevel::Scalar);
/// assert!(SimdPolicy::Avx2.resolve() <= level || level == SimdLevel::Scalar);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimdPolicy {
    /// Use the best level the CPU supports (the default).
    #[default]
    Auto,
    /// Force the portable scalar path (the bit-exactness oracle).
    Scalar,
    /// Request SSE2; falls back to scalar off `x86_64`.
    Sse2,
    /// Request AVX2; falls back to the best available lower level when the
    /// CPU (or target) lacks it.
    Avx2,
}

impl SimdPolicy {
    /// Resolve the policy against the running CPU.  Called once per launch
    /// (or once per index build) — never inside a traversal loop.
    pub fn resolve(self) -> SimdLevel {
        match self {
            SimdPolicy::Scalar => SimdLevel::Scalar,
            SimdPolicy::Auto | SimdPolicy::Avx2 => detect_simd(),
            SimdPolicy::Sse2 => match detect_simd() {
                SimdLevel::Scalar => SimdLevel::Scalar,
                _ => SimdLevel::Sse2,
            },
        }
    }

    /// Report name used by benches and configuration dumps.
    pub fn name(&self) -> &'static str {
        match self {
            SimdPolicy::Auto => "auto",
            SimdPolicy::Scalar => "scalar",
            SimdPolicy::Sse2 => "sse2",
            SimdPolicy::Avx2 => "avx2",
        }
    }
}

// `SimdLevel` ordering used by the doctest above: Scalar < Sse2 < Avx2.
impl PartialOrd for SimdLevel {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimdLevel {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(l: &SimdLevel) -> u8 {
            match l {
                SimdLevel::Scalar => 0,
                SimdLevel::Sse2 => 1,
                SimdLevel::Avx2 => 2,
            }
        }
        rank(self).cmp(&rank(other))
    }
}

/// The best SIMD level the running CPU supports, detected once and cached.
#[cfg(target_arch = "x86_64")]
pub fn detect_simd() -> SimdLevel {
    use std::sync::OnceLock;
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            // SSE2 is part of the x86_64 baseline.
            SimdLevel::Sse2
        }
    })
}

/// The best SIMD level the running CPU supports (always scalar off
/// `x86_64`).
#[cfg(not(target_arch = "x86_64"))]
pub fn detect_simd() -> SimdLevel {
    SimdLevel::Scalar
}

// ---------------------------------------------------------------------------
// Leaf-run squared-distance count kernels
// ---------------------------------------------------------------------------
//
// The stage-1 count launch spends most of its time in one loop: for a run
// of candidate primitives, count (multiplicity-weighted) how many lie
// within ε of the query.  The kernels below run it over the contiguous SoA
// primitive lanes of `PrimLanes` instead of gathering 24-byte `Sphere`
// structs.  All of them compute `d² = (dx·dx + dy·dy) + dz·dz` in exactly
// the association order of `geometry::distance_squared`, so the `d² <= ε²`
// verdict per candidate is identical to the scalar sphere test.

/// Scalar reference: multiplicity-weighted hit count of the candidates in
/// `px/py/pz[first..first + count]` against the closed ball `(qx,qy,qz,
/// eps_sq)`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn count_run_scalar(
    px: &[f32],
    py: &[f32],
    pz: &[f32],
    mult: &[u32],
    first: usize,
    count: usize,
    qx: f32,
    qy: f32,
    qz: f32,
    eps_sq: f32,
) -> u64 {
    // Reslice to the run first: the loop then indexes equal-length local
    // slices and every bounds check is elided (the hot path calls this
    // tens of millions of times per launch).
    let end = first + count;
    let (px, py, pz, mult) = (
        &px[first..end],
        &py[first..end],
        &pz[first..end],
        &mult[first..end],
    );
    let mut add = 0u64;
    for i in 0..count {
        let dx = px[i] - qx;
        let dy = py[i] - qy;
        let dz = pz[i] - qz;
        let hit = (dx * dx + dy * dy) + dz * dz <= eps_sq;
        add += hit as u64 * mult[i] as u64;
    }
    add
}

/// [`count_run_scalar`] for the uniform-multiplicity case (no compaction):
/// every hit counts exactly one, so the multiplicity lane is never read.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn count_run_scalar_unit(
    px: &[f32],
    py: &[f32],
    pz: &[f32],
    first: usize,
    count: usize,
    qx: f32,
    qy: f32,
    qz: f32,
    eps_sq: f32,
) -> u64 {
    let end = first + count;
    let (px, py, pz) = (&px[first..end], &py[first..end], &pz[first..end]);
    let mut add = 0u64;
    for i in 0..count {
        let dx = px[i] - qx;
        let dy = py[i] - qy;
        let dz = pz[i] - qz;
        add += ((dx * dx + dy * dy) + dz * dz <= eps_sq) as u64;
    }
    add
}

/// How many lanes of padding [`crate::bvh::PrimLanes`] appends so the
/// vector kernels may read whole vectors past a run's end (the padding
/// holds `+∞` coordinates that can never pass the closed-ball test, and
/// tail lanes are additionally masked out).
pub(crate) const LANE_PADDING: usize = 8;

/// SSE2 run count: 4 candidates per iteration over the padded SoA lanes.
///
/// # Safety
/// The lane slices must extend at least [`LANE_PADDING`] elements past
/// `first + count` (guaranteed by `PrimLanes`).  SSE2 itself is part of
/// the `x86_64` baseline.
#[cfg(target_arch = "x86_64")]
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn count_run_sse2(
    px: &[f32],
    py: &[f32],
    pz: &[f32],
    mult: &[u32],
    first: usize,
    count: usize,
    qx: f32,
    qy: f32,
    qz: f32,
    eps_sq: f32,
) -> u64 {
    use std::arch::x86_64::*;
    debug_assert!(px.len() >= first + count + LANE_PADDING);
    // SAFETY: `_mm_set1_ps` has no memory or alignment preconditions; SSE2
    // is part of the x86_64 baseline.
    let (qxv, qyv, qzv, epsv) = unsafe {
        (
            _mm_set1_ps(qx),
            _mm_set1_ps(qy),
            _mm_set1_ps(qz),
            _mm_set1_ps(eps_sq),
        )
    };
    let mut add = 0u64;
    let mut i = 0usize;
    while i < count {
        // SAFETY: padded loads stay within the lane allocations.
        let hits = unsafe {
            let x = _mm_loadu_ps(px.as_ptr().add(first + i));
            let y = _mm_loadu_ps(py.as_ptr().add(first + i));
            let z = _mm_loadu_ps(pz.as_ptr().add(first + i));
            let dx = _mm_sub_ps(x, qxv);
            let dy = _mm_sub_ps(y, qyv);
            let dz = _mm_sub_ps(z, qzv);
            // (dx² + dy²) + dz², matching the scalar association order.
            let d2 = _mm_add_ps(
                _mm_add_ps(_mm_mul_ps(dx, dx), _mm_mul_ps(dy, dy)),
                _mm_mul_ps(dz, dz),
            );
            _mm_movemask_ps(_mm_cmple_ps(d2, epsv)) as u32
        };
        let lanes = (count - i).min(4) as u32;
        let mut m = hits & ((1u32 << lanes) - 1);
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            add += mult[first + i + lane] as u64;
            m &= m - 1;
        }
        i += 4;
    }
    add
}

/// AVX2 run count: 8 candidates per iteration over the padded SoA lanes.
///
/// # Safety
/// The lane slices must extend at least [`LANE_PADDING`] elements past
/// `first + count`, and the CPU must support AVX2 (checked by the caller's
/// [`SimdPolicy::resolve`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn count_run_avx2(
    px: &[f32],
    py: &[f32],
    pz: &[f32],
    mult: &[u32],
    first: usize,
    count: usize,
    qx: f32,
    qy: f32,
    qz: f32,
    eps_sq: f32,
) -> u64 {
    use std::arch::x86_64::*;
    debug_assert!(px.len() >= first + count + LANE_PADDING);
    let qxv = _mm256_set1_ps(qx);
    let qyv = _mm256_set1_ps(qy);
    let qzv = _mm256_set1_ps(qz);
    let epsv = _mm256_set1_ps(eps_sq);
    let mut add = 0u64;
    let mut i = 0usize;
    while i < count {
        // SAFETY: padded loads stay within the lane allocations.
        let hits = unsafe {
            let x = _mm256_loadu_ps(px.as_ptr().add(first + i));
            let y = _mm256_loadu_ps(py.as_ptr().add(first + i));
            let z = _mm256_loadu_ps(pz.as_ptr().add(first + i));
            let dx = _mm256_sub_ps(x, qxv);
            let dy = _mm256_sub_ps(y, qyv);
            let dz = _mm256_sub_ps(z, qzv);
            let d2 = _mm256_add_ps(
                _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
                _mm256_mul_ps(dz, dz),
            );
            _mm256_movemask_ps(_mm256_cmp_ps(d2, epsv, _CMP_LE_OQ)) as u32
        };
        let lanes = (count - i).min(8) as u32;
        let mut m = hits & ((1u32 << lanes) - 1);
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            add += mult[first + i + lane] as u64;
            m &= m - 1;
        }
        i += 8;
    }
    add
}

/// SSE2 run count for uniform multiplicity: every masked hit counts one,
/// so the whole tail reduces to a popcount — no multiplicity gathers, no
/// per-bit loop.
///
/// # Safety
/// The lane slices must extend at least [`LANE_PADDING`] elements past
/// `first + count` (guaranteed by `PrimLanes`).
#[cfg(target_arch = "x86_64")]
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn count_run_sse2_unit(
    px: &[f32],
    py: &[f32],
    pz: &[f32],
    first: usize,
    count: usize,
    qx: f32,
    qy: f32,
    qz: f32,
    eps_sq: f32,
) -> u64 {
    use std::arch::x86_64::*;
    debug_assert!(px.len() >= first + count + LANE_PADDING);
    // SAFETY: padded loads stay within the lane allocations.
    unsafe {
        let qxv = _mm_set1_ps(qx);
        let qyv = _mm_set1_ps(qy);
        let qzv = _mm_set1_ps(qz);
        let epsv = _mm_set1_ps(eps_sq);
        let mut add = 0u64;
        let mut i = 0usize;
        while i < count {
            let x = _mm_loadu_ps(px.as_ptr().add(first + i));
            let y = _mm_loadu_ps(py.as_ptr().add(first + i));
            let z = _mm_loadu_ps(pz.as_ptr().add(first + i));
            let dx = _mm_sub_ps(x, qxv);
            let dy = _mm_sub_ps(y, qyv);
            let dz = _mm_sub_ps(z, qzv);
            let d2 = _mm_add_ps(
                _mm_add_ps(_mm_mul_ps(dx, dx), _mm_mul_ps(dy, dy)),
                _mm_mul_ps(dz, dz),
            );
            let hits = _mm_movemask_ps(_mm_cmple_ps(d2, epsv)) as u32;
            let lanes = (count - i).min(4) as u32;
            add += (hits & ((1u32 << lanes) - 1)).count_ones() as u64;
            i += 4;
        }
        add
    }
}

/// AVX2 run count for uniform multiplicity (see
/// [`count_run_sse2_unit`]): 8 candidates per popcounted iteration.
///
/// # Safety
/// The lane slices must extend at least [`LANE_PADDING`] elements past
/// `first + count`, and the CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn count_run_avx2_unit(
    px: &[f32],
    py: &[f32],
    pz: &[f32],
    first: usize,
    count: usize,
    qx: f32,
    qy: f32,
    qz: f32,
    eps_sq: f32,
) -> u64 {
    use std::arch::x86_64::*;
    debug_assert!(px.len() >= first + count + LANE_PADDING);
    // SAFETY: padded loads stay within the lane allocations.
    unsafe {
        let qxv = _mm256_set1_ps(qx);
        let qyv = _mm256_set1_ps(qy);
        let qzv = _mm256_set1_ps(qz);
        let epsv = _mm256_set1_ps(eps_sq);
        let mut add = 0u64;
        let mut i = 0usize;
        while i < count {
            let x = _mm256_loadu_ps(px.as_ptr().add(first + i));
            let y = _mm256_loadu_ps(py.as_ptr().add(first + i));
            let z = _mm256_loadu_ps(pz.as_ptr().add(first + i));
            let dx = _mm256_sub_ps(x, qxv);
            let dy = _mm256_sub_ps(y, qyv);
            let dz = _mm256_sub_ps(z, qzv);
            let d2 = _mm256_add_ps(
                _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
                _mm256_mul_ps(dz, dz),
            );
            let hits = _mm256_movemask_ps(_mm256_cmp_ps(d2, epsv, _CMP_LE_OQ)) as u32;
            let lanes = (count - i).min(8) as u32;
            add += (hits & ((1u32 << lanes) - 1)).count_ones() as u64;
            i += 8;
        }
        add
    }
}

/// Dispatch one leaf run through the multiplicity-weighted kernel for
/// `level` — the only branch is on the (launch-constant) level.  Short
/// runs at the AVX2 level take the 128-bit kernel: with four or fewer
/// candidates the 256-bit shape only wastes load bandwidth.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn count_run(
    level: SimdLevel,
    px: &[f32],
    py: &[f32],
    pz: &[f32],
    mult: &[u32],
    first: usize,
    count: usize,
    qx: f32,
    qy: f32,
    qz: f32,
    eps_sq: f32,
) -> u64 {
    match level {
        SimdLevel::Scalar => count_run_scalar(px, py, pz, mult, first, count, qx, qy, qz, eps_sq),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; the lanes carry LANE_PADDING.
        SimdLevel::Sse2 => unsafe {
            count_run_sse2(px, py, pz, mult, first, count, qx, qy, qz, eps_sq)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only ever resolved after runtime detection (and
        // the short-run path only needs baseline SSE2).
        SimdLevel::Avx2 => unsafe {
            if count <= 4 {
                count_run_sse2(px, py, pz, mult, first, count, qx, qy, qz, eps_sq)
            } else {
                count_run_avx2(px, py, pz, mult, first, count, qx, qy, qz, eps_sq)
            }
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => count_run_scalar(px, py, pz, mult, first, count, qx, qy, qz, eps_sq),
    }
}

/// [`count_run`] for uniform-multiplicity lanes (no compaction): the hit
/// mask popcount is the answer, so the multiplicity lane is never read.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn count_run_unit(
    level: SimdLevel,
    px: &[f32],
    py: &[f32],
    pz: &[f32],
    first: usize,
    count: usize,
    qx: f32,
    qy: f32,
    qz: f32,
    eps_sq: f32,
) -> u64 {
    match level {
        SimdLevel::Scalar => count_run_scalar_unit(px, py, pz, first, count, qx, qy, qz, eps_sq),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; the lanes carry LANE_PADDING.
        SimdLevel::Sse2 => unsafe {
            count_run_sse2_unit(px, py, pz, first, count, qx, qy, qz, eps_sq)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only ever resolved after runtime detection (and
        // the short-run path only needs baseline SSE2).
        SimdLevel::Avx2 => unsafe {
            if count <= 4 {
                count_run_sse2_unit(px, py, pz, first, count, qx, qy, qz, eps_sq)
            } else {
                count_run_avx2_unit(px, py, pz, first, count, qx, qy, qz, eps_sq)
            }
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => count_run_scalar_unit(px, py, pz, first, count, qx, qy, qz, eps_sq),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes(n: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<u32>) {
        let mut px = Vec::new();
        let mut py = Vec::new();
        let mut pz = Vec::new();
        let mut mult = Vec::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) & 0xFFFF) as f32 / 6553.5
        };
        for i in 0..n {
            px.push(next());
            py.push(next());
            pz.push(next() * 0.1);
            mult.push(1 + (i % 3) as u32);
        }
        for _ in 0..LANE_PADDING {
            px.push(f32::INFINITY);
            py.push(f32::INFINITY);
            pz.push(f32::INFINITY);
            mult.push(0);
        }
        (px, py, pz, mult)
    }

    #[test]
    fn policies_resolve_to_available_levels() {
        assert_eq!(SimdPolicy::Scalar.resolve(), SimdLevel::Scalar);
        let auto = SimdPolicy::Auto.resolve();
        assert_eq!(auto, detect_simd());
        assert!(SimdPolicy::Sse2.resolve() <= SimdLevel::Sse2);
        assert!(SimdPolicy::Avx2.resolve() <= SimdLevel::Avx2);
        for p in [
            SimdPolicy::Auto,
            SimdPolicy::Scalar,
            SimdPolicy::Sse2,
            SimdPolicy::Avx2,
        ] {
            assert!(!p.name().is_empty());
            assert!(!p.resolve().name().is_empty());
        }
    }

    #[test]
    fn vector_count_kernels_match_scalar_for_every_run_shape() {
        let (px, py, pz, mult) = lanes(97);
        let queries = [
            (0.5f32, 0.5f32, 0.05f32),
            (9.9, 0.0, 0.0),
            (5.0, 5.0, 0.1),
            (px[13], py[13], pz[13]), // exact-distance-zero hit
        ];
        for eps_sq in [0.01f32, 1.0, 25.0, 1e6] {
            for &(qx, qy, qz) in &queries {
                for first in [0usize, 1, 3, 40, 90] {
                    for count in [0usize, 1, 2, 3, 4, 5, 7, 8, 9] {
                        if first + count > 97 {
                            continue;
                        }
                        let want = count_run_scalar(
                            &px, &py, &pz, &mult, first, count, qx, qy, qz, eps_sq,
                        );
                        let unit_want =
                            count_run_scalar_unit(&px, &py, &pz, first, count, qx, qy, qz, eps_sq);
                        for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
                            if level > detect_simd() {
                                continue;
                            }
                            let got = count_run(
                                level, &px, &py, &pz, &mult, first, count, qx, qy, qz, eps_sq,
                            );
                            assert_eq!(
                                got, want,
                                "{level:?} first={first} count={count} q=({qx},{qy},{qz})"
                            );
                            // The popcount (uniform-multiplicity) kernels
                            // agree with the scalar unit reference on the
                            // same runs.
                            let unit = count_run_unit(
                                level, &px, &py, &pz, first, count, qx, qy, qz, eps_sq,
                            );
                            assert_eq!(unit, unit_want, "{level:?} unit kernel");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn boundary_candidates_count_identically_across_levels() {
        // An exact-ε candidate (d² == ε² in f32) must be inside on every
        // level — the closed-ball rule evaluated with the same predicate.
        let eps = 0.75f32;
        let px = {
            let mut v = vec![eps, 0.0, f32::NAN];
            v.extend([f32::INFINITY; LANE_PADDING]);
            v
        };
        let py = vec![0.0; 3 + LANE_PADDING];
        let pz = vec![0.0; 3 + LANE_PADDING];
        let mult = vec![1u32; 3 + LANE_PADDING];
        let eps_sq = eps * eps;
        for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
            if level > detect_simd() {
                continue;
            }
            // Exact-ε neighbour and the origin hit; the NaN candidate never
            // does (comparisons are false on NaN on every level).
            let got = count_run(level, &px, &py, &pz, &mult, 0, 3, 0.0, 0.0, 0.0, eps_sq);
            assert_eq!(got, 2, "{level:?}");
        }
    }
}

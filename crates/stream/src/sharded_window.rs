//! Streaming eviction over a two-level scene: **drop a BLAS** instead of
//! refitting a monolithic tree.
//!
//! The flat streaming clusterer ([`crate::StreamingClusterer`]) keeps one
//! BVH alive and refits expiring points out of it, accepting gradual tree
//! degradation until a rebuild heuristic fires.  A two-level scene
//! ([`rtcore::index::ShardedIndex`]) changes the failure mode: each
//! Morton-range shard owns its own bottom-level scene, so when a region of
//! space ages out of the window its shard empties and the whole BLAS is
//! *dropped* — the TLAS leaf becomes an empty box, queries stop visiting
//! it, and no rebuild debt accumulates.  Partially-expired shards refit
//! like the flat path, but in parallel and independently.
//!
//! [`ShardedWindow`] is the thin windowing wrapper that drives this:
//! evictions are routed through [`rtcore::index::NeighborIndex::remove`]
//! under a `streaming_slide` telemetry span, and the per-slide statistics
//! (dropped BLASes, live shards, refit work) are exposed for the bench
//! harness and tests.

use rtcore::geometry::Point3;
use rtcore::hardware::WorkCounters;
use rtcore::index::{IndexKind, NeighborIndex, NeighborIndexBuilder, ShardedIndex, ShardingConfig};
use rtcore::telemetry::{PhaseKind, TelemetryConfig};
use rtcore::Result;

/// Cumulative statistics of a [`ShardedWindow`]'s slides.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardedWindowStats {
    /// Points evicted so far.
    pub evicted_points: usize,
    /// Shards planned at build time.
    pub planned_shards: usize,
    /// Shards still holding a live bottom-level scene.
    pub live_shards: usize,
    /// Bottom-level scenes dropped because eviction emptied them.
    pub dropped_blases: usize,
    /// Slides performed.
    pub slides: usize,
}

/// A sliding window over a two-level scene where aging out a region drops
/// its bottom-level BVH wholesale.
///
/// ```
/// use rtcore::geometry::Point3;
/// use rtdbscan_stream::ShardedWindow;
///
/// let pts: Vec<Point3> = (0..256)
///     .map(|i| Point3::new_2d((i % 16) as f32, (i / 16) as f32))
///     .collect();
/// let mut window = ShardedWindow::build(&pts, 1.5, 32).unwrap();
/// // Age out one whole shard's worth of points…
/// let shard0: Vec<u32> = (0..pts.len() as u32)
///     .filter(|&i| window.index().owner_shard(i) == Some(0))
///     .collect();
/// window.evict(&shard0).unwrap();
/// // …and its BLAS is gone, not refitted.
/// assert_eq!(window.stats().dropped_blases, 1);
/// ```
#[derive(Debug)]
pub struct ShardedWindow {
    index: ShardedIndex,
    evicted: usize,
    slides: usize,
}

impl ShardedWindow {
    /// Build the windowed scene over `points` with search radius `eps` and
    /// the given shard-size ceiling, recording telemetry spans.
    pub fn build(points: &[Point3], eps: f32, max_shard_size: usize) -> Result<Self> {
        let config = NeighborIndexBuilder {
            sharding: Some(ShardingConfig::new(max_shard_size)),
            telemetry: TelemetryConfig::Spans,
            ..NeighborIndexBuilder::new(IndexKind::WideBatched)
        };
        Ok(ShardedWindow {
            index: ShardedIndex::build(&config, points, eps)?,
            evicted: 0,
            slides: 0,
        })
    }

    /// The underlying two-level index, for queries and shard inspection.
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    /// Number of points still live in the window.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True once every point has been evicted.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Slide the window: retire `expired` points from the scene.  Shards
    /// they partially occupy refit in parallel; shards they empty drop
    /// their BLAS entirely.  Returns the maintenance work performed.
    pub fn evict(&mut self, expired: &[u32]) -> Result<WorkCounters> {
        let telemetry = self.index.telemetry().cloned();
        let span = telemetry
            .as_ref()
            .map(|t| t.span(PhaseKind::StreamingSlide));
        let counters = self.index.remove(expired)?;
        if let Some(mut s) = span {
            s.add_counters(counters);
        }
        self.evicted += expired.len();
        self.slides += 1;
        Ok(counters)
    }

    /// Cumulative slide statistics.
    pub fn stats(&self) -> ShardedWindowStats {
        ShardedWindowStats {
            evicted_points: self.evicted,
            planned_shards: self.index.shard_count(),
            live_shards: self.index.live_shard_count(),
            dropped_blases: self.index.shard_count() - self.index.live_shard_count(),
            slides: self.slides,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n_side: usize) -> Vec<Point3> {
        (0..n_side * n_side)
            .map(|i| Point3::new_2d((i % n_side) as f32, (i / n_side) as f32))
            .collect()
    }

    #[test]
    fn evicting_a_whole_shard_drops_its_blas() {
        let pts = grid(20);
        let mut window = ShardedWindow::build(&pts, 1.5, 64).unwrap();
        let planned = window.stats().planned_shards;
        assert!(planned > 1);
        let shard0: Vec<u32> = (0..pts.len() as u32)
            .filter(|&i| window.index().owner_shard(i) == Some(0))
            .collect();
        window.evict(&shard0).unwrap();
        let stats = window.stats();
        assert_eq!(stats.dropped_blases, 1);
        assert_eq!(stats.live_shards, planned - 1);
        assert_eq!(stats.evicted_points, shard0.len());
        assert_eq!(stats.slides, 1);
    }

    #[test]
    fn partial_eviction_refits_and_keeps_answers_exact() {
        let pts = grid(16);
        let mut window = ShardedWindow::build(&pts, 1.2, 48).unwrap();
        // Retire every third point — most shards survive, refitted.
        let expired: Vec<u32> = (0..pts.len() as u32).step_by(3).collect();
        let counters = window.evict(&expired).unwrap();
        assert!(counters.refit_node_ops > 0 || counters.refits > 0);
        let mut c = WorkCounters::ZERO;
        for q in (0..pts.len()).step_by(29) {
            let mut got = window
                .index()
                .neighbors_of(pts[q], 1.2, Some(q as u32), &mut c);
            got.sort_unstable();
            let mut want: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|&(j, p)| {
                    j != q
                        && !(j as u32).is_multiple_of(3)
                        && p.distance_squared(pts[q]) <= 1.2 * 1.2
                })
                .map(|(j, _)| j as u32)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn evicting_everything_empties_the_scene() {
        let pts = grid(10);
        let mut window = ShardedWindow::build(&pts, 1.0, 16).unwrap();
        let all: Vec<u32> = (0..pts.len() as u32).collect();
        window.evict(&all).unwrap();
        assert!(window.is_empty());
        assert_eq!(window.stats().live_shards, 0);
        let mut c = WorkCounters::ZERO;
        assert!(window
            .index()
            .neighbors_of(Point3::ORIGIN, 1.0, None, &mut c)
            .is_empty());
        // The slide trace records the eviction work.
        let trace = window.index().telemetry().unwrap().chrome_trace_json();
        assert!(trace.contains("streaming_slide"));
        assert!(trace.contains("tlas_build"));
    }
}

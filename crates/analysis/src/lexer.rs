//! A small hand-rolled Rust lexer for the lint engine.
//!
//! The rules in [`crate::rules`] match token patterns, so the lexer's only
//! job is to split source text into tokens **without being fooled by
//! comments and string literals** — `unsafe` inside a doc comment or a
//! `r#"raw string"#` must never look like the keyword.  Comments are kept
//! as tokens (rules read `// SAFETY:` / `// ordering:` / `// analyze-allow:`
//! annotations from them); string/char literal *contents* are opaque.
//!
//! This is deliberately not a full Rust lexer: no token trees, no keyword
//! table, no float-suffix validation.  It handles exactly the constructs
//! that would otherwise break token matching:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments;
//! - string, byte-string, raw-string (`r"…"`, `r#"…"#`, `br##"…"##`) and
//!   C-string literals, with escapes;
//! - char literals vs. lifetimes (`'a'` vs `'a`), including `'\''`;
//! - raw identifiers (`r#type`);
//! - numbers that stop before method calls (`1.to_vec()` lexes as
//!   `1` `.` `to_vec`, while `1.5` stays one token);
//! - multi-character punctuation (`::`, `+=`, `..=`, `->`, …).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish them).
    Ident,
    /// `// …` to end of line, including doc comments.
    LineComment,
    /// `/* … */`, nesting respected, including doc block comments.
    BlockComment,
    /// Any string-like literal: `"…"`, `b"…"`, `r#"…"#`, `c"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// Lifetime: `'a`, `'static`.
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// Punctuation, longest-match: `::`, `+=`, `..=`, `{`, …
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True when this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// True when this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }

    /// True for line and block comments.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Three-character punctuation, checked before the two- and one-character
/// forms so the longest match wins.
const PUNCT3: &[&str] = &["..=", "...", "<<=", ">>="];
const PUNCT2: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=", "<<", ">>",
];

/// Lex `src` into tokens.  Never fails: bytes that fit no token class are
/// skipped (the lint rules only care about the constructs listed in the
/// module docs, and a file that far off Rust syntax won't compile anyway).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// Advance one byte, maintaining the line/column counters.
    fn bump(&mut self) -> u8 {
        let b = self.src[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            text: String::from_utf8_lossy(&self.src[start..self.pos]).into_owned(),
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.src.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, start, line, col);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.block_comment();
                    self.push(TokenKind::BlockComment, start, line, col);
                }
                b'r' | b'b' | b'c' if self.raw_or_byte_string() => {
                    self.push(TokenKind::Str, start, line, col);
                }
                b'b' if self.peek(1) == b'\'' => {
                    self.bump(); // b
                    self.char_literal();
                    self.push(TokenKind::Char, start, line, col);
                }
                b'"' => {
                    self.string_literal();
                    self.push(TokenKind::Str, start, line, col);
                }
                b'\'' => {
                    let kind = self.char_or_lifetime();
                    self.push(kind, start, line, col);
                }
                b'0'..=b'9' => {
                    self.number();
                    self.push(TokenKind::Num, start, line, col);
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    self.ident();
                    self.push(TokenKind::Ident, start, line, col);
                }
                _ => {
                    self.punct(line, col);
                }
            }
        }
        self.out
    }

    /// Consume `/* … */` with nesting; tolerates an unterminated comment at
    /// end of file.
    fn block_comment(&mut self) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
            } else {
                self.bump();
            }
        }
    }

    /// If the cursor sits on a raw/byte/C string opener (`r"`, `r#"`, `br"`,
    /// `b"`, `c"`, `br##"` …), consume the whole literal and return true.
    /// A raw *identifier* (`r#match`) returns false and is lexed as an
    /// identifier by the caller.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut ahead = 0usize;
        // Optional leading b/c, optional r.
        if self.peek(ahead) == b'b' || self.peek(ahead) == b'c' {
            ahead += 1;
        }
        let raw = self.peek(ahead) == b'r';
        if raw {
            ahead += 1;
        }
        let mut hashes = 0usize;
        while raw && self.peek(ahead) == b'#' {
            ahead += 1;
            hashes += 1;
        }
        if self.peek(ahead) != b'"' {
            return false; // r#ident, plain ident `b`/`c`/`r`, b'x', …
        }
        if ahead == 0 {
            return false; // bare `"` — plain string, handled by the caller
        }
        // Consume the opener: prefix bytes plus the quote itself.
        for _ in 0..=ahead {
            self.bump();
        }
        if raw {
            // …then scan to `"` followed by `hashes` hashes, no escapes.
            loop {
                if self.pos >= self.src.len() {
                    return true; // unterminated; tolerate
                }
                if self.bump() == b'"' {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == b'#' {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return true;
                    }
                }
            }
        } else {
            // b"…" / c"…": ordinary escape rules.
            self.string_body();
            true
        }
    }

    /// Consume a `"`-opened string literal including the opening quote.
    fn string_literal(&mut self) {
        self.bump(); // "
        self.string_body();
    }

    /// Consume up to and including the closing quote, honouring `\"` and
    /// `\\` escapes.
    fn string_body(&mut self) {
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' if self.pos < self.src.len() => {
                    self.bump();
                }
                b'"' => return,
                _ => {}
            }
        }
    }

    /// At a `'`: decide char literal vs lifetime.
    fn char_or_lifetime(&mut self) -> TokenKind {
        // '\… is always a char literal; 'X' (any single char then ') too.
        // Otherwise it's a lifetime: consume identifier chars.
        if self.peek(1) == b'\\' {
            self.char_literal();
            return TokenKind::Char;
        }
        let second_is_ident =
            matches!(self.peek(1), b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_');
        if second_is_ident && self.peek(2) != b'\'' {
            // 'static, 'a — a lifetime.
            self.bump(); // '
            while matches!(self.peek(0), b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_') {
                self.bump();
            }
            TokenKind::Lifetime
        } else {
            self.char_literal();
            TokenKind::Char
        }
    }

    /// Consume `'…'` with escapes, starting at the opening quote.
    fn char_literal(&mut self) {
        self.bump(); // '
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' if self.pos < self.src.len() => {
                    self.bump();
                }
                b'\'' => return,
                _ => {}
            }
        }
    }

    /// Consume a numeric literal.  A `.` is part of the number only when
    /// followed by a digit, so `1.to_vec()` and `0..n` split correctly;
    /// `1e-5` keeps its exponent.
    fn number(&mut self) {
        self.bump();
        loop {
            match self.peek(0) {
                b'0'..=b'9' | b'_' | b'A'..=b'Z' | b'a'..=b'z' => {
                    let c = self.bump();
                    // Exponent sign: 1e-5, 2E+3.
                    if (c == b'e' || c == b'E')
                        && matches!(self.peek(0), b'+' | b'-')
                        && self.peek(1).is_ascii_digit()
                    {
                        self.bump();
                    }
                }
                b'.' if self.peek(1).is_ascii_digit() => {
                    self.bump();
                }
                _ => return,
            }
        }
    }

    fn ident(&mut self) {
        // Raw identifier prefix r#.
        if self.peek(0) == b'r' && self.peek(1) == b'#' {
            self.bump();
            self.bump();
        }
        while matches!(self.peek(0), b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_') {
            self.bump();
        }
    }

    fn punct(&mut self, line: u32, col: u32) {
        let start = self.pos;
        let rest = &self.src[self.pos..];
        let take = PUNCT3
            .iter()
            .chain(PUNCT2.iter())
            .find(|p| rest.starts_with(p.as_bytes()))
            .map_or(1, |p| p.len());
        for _ in 0..take {
            self.bump();
        }
        self.push(TokenKind::Punct, start, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn keywords_in_strings_and_comments_are_not_idents() {
        let toks = kinds(r#"let s = "unsafe { }"; // unsafe too"#);
        let unsafe_idents = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Ident && t == "unsafe")
            .count();
        assert_eq!(unsafe_idents, 0);
        assert_eq!(toks.last().unwrap().0, TokenKind::LineComment);
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let toks = kinds(r###"let s = r#"a "quoted" unsafe"#; x"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("quoted")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "x"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = kinds("/* a /* nested */ still comment */ real");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "real".into()));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds(r"fn f<'a>(x: &'a u8) { let c = 'x'; let q = '\''; }");
        let lifetimes = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .count();
        let chars = toks.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_stop_before_method_calls_and_ranges() {
        let toks = kinds("1.to_vec(); 1.5f32; 0..n; 2e-3;");
        assert_eq!(toks[0], (TokenKind::Num, "1".into()));
        assert_eq!(toks[1], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokenKind::Ident, "to_vec".into()));
        assert!(toks.contains(&(TokenKind::Num, "1.5f32".into())));
        assert!(toks.contains(&(TokenKind::Punct, "..".into())));
        assert!(toks.contains(&(TokenKind::Num, "2e-3".into())));
    }

    #[test]
    fn multi_char_punct_longest_match() {
        let toks = kinds("a += b; c ..= d; e :: f");
        assert!(toks.contains(&(TokenKind::Punct, "+=".into())));
        assert!(toks.contains(&(TokenKind::Punct, "..=".into())));
        assert!(toks.contains(&(TokenKind::Punct, "::".into())));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#type".into())));
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds(r##"let a = b"bytes"; let b = c"cstr"; let d = br"raw";"##);
        let strs = toks.iter().filter(|(k, _)| *k == TokenKind::Str).count();
        assert_eq!(strs, 3);
    }

    #[test]
    fn line_and_column_positions() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}

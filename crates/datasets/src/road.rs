//! 3DRoad-like road-network generator.
//!
//! The real 3DRoad dataset contains points sampled along the road network of
//! North Jutland, Denmark (Kaul et al. 2013); the paper uses its 2-D
//! latitude/longitude projection.  The synthetic analogue builds a random
//! planar road graph over a comparable coordinate extent (~1.0° × 0.6°,
//! centred on North Jutland) and samples points densely along its edges with
//! small GPS-style jitter.  The result has the same character the evaluation
//! relies on: elongated 1-D filaments of varying density embedded in 2-D, so
//! sweeping ε from ~0.01 to ~0.25 moves the clustering from "many small
//! clusters" to "a few large clusters".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use rtcore::geometry::Point3;

/// Coordinate extent of the synthetic road network (degrees, roughly North
/// Jutland: longitude 9.4–10.4, latitude 56.9–57.5).
pub const ROAD_LON_RANGE: (f32, f32) = (9.4, 10.4);
/// Latitude extent of the synthetic road network.
pub const ROAD_LAT_RANGE: (f32, f32) = (56.9, 57.5);

/// Generate `n` road-network points with the given seed.
///
/// The network is built from `~sqrt(n)/4 + 32` junctions connected to their
/// nearest few junctions; points are then distributed along the edges
/// proportionally to edge length, with Gaussian jitter of ~5 m (5e-5 degrees)
/// simulating GPS noise and parallel carriageways.
pub fn generate_road_network(n: usize, seed: u64) -> Vec<Point3> {
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3d50ad);
    let n_junctions = ((n as f64).sqrt() as usize / 4 + 32).min(n.max(2));

    // 1. Junctions scattered over the region, denser near a few "towns".
    let towns: Vec<(f32, f32, f32)> = (0..6)
        .map(|_| {
            (
                rng.gen_range(ROAD_LON_RANGE.0..ROAD_LON_RANGE.1),
                rng.gen_range(ROAD_LAT_RANGE.0..ROAD_LAT_RANGE.1),
                rng.gen_range(0.02..0.08), // town radius in degrees
            )
        })
        .collect();
    let mut junctions: Vec<(f32, f32)> = Vec::with_capacity(n_junctions);
    for _ in 0..n_junctions {
        if rng.gen_bool(0.6) {
            let (tx, ty, tr) = towns[rng.gen_range(0..towns.len())];
            let normal = Normal::new(0.0f32, tr).unwrap();
            junctions.push((
                (tx + normal.sample(&mut rng)).clamp(ROAD_LON_RANGE.0, ROAD_LON_RANGE.1),
                (ty + normal.sample(&mut rng)).clamp(ROAD_LAT_RANGE.0, ROAD_LAT_RANGE.1),
            ));
        } else {
            junctions.push((
                rng.gen_range(ROAD_LON_RANGE.0..ROAD_LON_RANGE.1),
                rng.gen_range(ROAD_LAT_RANGE.0..ROAD_LAT_RANGE.1),
            ));
        }
    }

    // 2. Edges: connect every junction to its 2–3 nearest neighbours.
    let mut edges: Vec<(usize, usize, f32)> = Vec::new();
    for i in 0..junctions.len() {
        let mut dists: Vec<(usize, f32)> = junctions
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(j, &(x, y))| {
                let dx = x - junctions[i].0;
                let dy = y - junctions[i].1;
                (j, (dx * dx + dy * dy).sqrt())
            })
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let degree = rng.gen_range(2..=3usize).min(dists.len());
        for &(j, d) in dists.iter().take(degree) {
            if i < j {
                edges.push((i, j, d));
            } else {
                edges.push((j, i, d));
            }
        }
    }
    edges.sort_by_key(|a| (a.0, a.1));
    edges.dedup_by_key(|e| (e.0, e.1));
    if edges.is_empty() {
        // Degenerate tiny inputs: a single self-edge so sampling still works.
        edges.push((0, 0, 0.0));
    }

    // 3. Distribute points along edges proportionally to length.
    let total_len: f32 = edges
        .iter()
        .map(|e| e.2)
        .sum::<f32>()
        .max(f32::MIN_POSITIVE);
    let jitter = Normal::new(0.0f32, 5e-5).unwrap();
    let mut pts = Vec::with_capacity(n);
    'outer: loop {
        for &(a, b, len) in &edges {
            // At least one point per edge per sweep; long edges get more.
            let share = ((len / total_len) * n as f32).ceil() as usize;
            for _ in 0..share.max(1) {
                if pts.len() >= n {
                    break 'outer;
                }
                let t: f32 = rng.gen_range(0.0..=1.0);
                let (ax, ay) = junctions[a];
                let (bx, by) = junctions[b];
                let x = ax + t * (bx - ax) + jitter.sample(&mut rng);
                let y = ay + t * (by - ay) + jitter.sample(&mut rng);
                pts.push(Point3::new_2d(x, y));
            }
        }
        if pts.len() >= n {
            break;
        }
    }
    pts.truncate(n);
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_exactly_n_points_in_region() {
        for n in [1usize, 10, 1000, 20_000] {
            let pts = generate_road_network(n, 1);
            assert_eq!(pts.len(), n);
            for p in &pts {
                assert!(p.x >= ROAD_LON_RANGE.0 - 0.01 && p.x <= ROAD_LON_RANGE.1 + 0.01);
                assert!(p.y >= ROAD_LAT_RANGE.0 - 0.01 && p.y <= ROAD_LAT_RANGE.1 + 0.01);
                assert_eq!(p.z, 0.0);
            }
        }
    }

    #[test]
    fn zero_points_is_fine() {
        assert!(generate_road_network(0, 1).is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate_road_network(500, 4), generate_road_network(500, 4));
        assert_ne!(generate_road_network(500, 4), generate_road_network(500, 5));
    }

    #[test]
    fn points_form_filaments_not_uniform_noise() {
        // Road points live on 1-D filaments, so the average nearest-neighbour
        // distance is far smaller than it would be for uniform points in the
        // same area.  (Uniform: ~0.5/sqrt(n) degrees; filament: ~total road
        // length / n.)
        let n = 4000;
        let pts = generate_road_network(n, 2);
        let mut nn_sum = 0.0f64;
        for (i, p) in pts.iter().enumerate().step_by(40) {
            let mut best = f32::INFINITY;
            for (j, q) in pts.iter().enumerate() {
                if i != j {
                    best = best.min(p.distance(*q));
                }
            }
            nn_sum += best as f64;
        }
        let avg_nn = nn_sum / (n as f64 / 40.0);
        let uniform_expectation = 0.5 / (n as f64).sqrt() * 0.8; // area ~0.6 deg^2
        assert!(
            avg_nn < uniform_expectation,
            "avg nn {avg_nn} not below uniform expectation {uniform_expectation}"
        );
    }
}

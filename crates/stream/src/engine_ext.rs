//! Streaming as a mode of the batch [`ClusterEngine`]: the
//! [`EngineStreamExt`] extension trait adds `engine.stream(window_policy)`,
//! so one validated configuration drives the one-shot, session and
//! streaming shapes alike.

use crate::{StreamingClusterer, StreamingConfig, WindowPolicy};
use rtcore::pipeline::TraversalEngine;
use rtdbscan::engine::{ClusterEngine, IndexKind};

/// Streaming entry points on [`ClusterEngine`] (bring this trait into scope
/// — it is part of the workspace prelude).
///
/// The engine's ε / `minPts` parameters carry over unchanged; its backend
/// choice selects the snapshot-repair traversal substrate: the wide batched
/// backend maps to [`TraversalEngine::WideBatched`], every other backend to
/// the binary oracle (the streaming scene is maintained by refit and
/// rebuild, which are BVH operations).
///
/// ```
/// use rtcore::geometry::Point3;
/// use rtdbscan::engine::{Algo, ClusterEngine, IndexKind};
/// use rtdbscan_stream::{EngineStreamExt, WindowPolicy};
///
/// let engine = ClusterEngine::builder()
///     .algorithm(Algo::Rt)
///     .index(IndexKind::WideBatched)
///     .eps(1.0)
///     .min_pts(1)
///     .build()
///     .unwrap();
/// let mut stream = engine.stream(WindowPolicy::Count(4)).unwrap();
/// stream
///     .ingest(&[
///         (Point3::new_2d(0.0, 0.0), 0.0),
///         (Point3::new_2d(0.5, 0.0), 1.0),
///     ])
///     .unwrap();
/// assert_eq!(stream.snapshot().num_clusters(), 1);
/// ```
pub trait EngineStreamExt {
    /// The [`StreamingConfig`] this engine's settings translate to.
    fn streaming_config(&self, window: WindowPolicy) -> StreamingConfig;

    /// A [`StreamingClusterer`] over this engine's parameters and backend.
    fn stream(&self, window: WindowPolicy) -> rtcore::Result<StreamingClusterer>;
}

impl EngineStreamExt for ClusterEngine {
    fn streaming_config(&self, window: WindowPolicy) -> StreamingConfig {
        let mut config = StreamingConfig::new(self.params(), window);
        config.snapshot_traversal = match self.index_kind() {
            IndexKind::WideBatched => TraversalEngine::WideBatched,
            _ => TraversalEngine::Binary,
        };
        config
    }

    fn stream(&self, window: WindowPolicy) -> rtcore::Result<StreamingClusterer> {
        StreamingClusterer::new(self.streaming_config(window))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcore::geometry::Point3;
    use rtdbscan::engine::Algo;
    use rtdbscan::metrics::same_clustering;
    use rtdbscan::{ClassicDbscan, DbscanParams};

    #[test]
    fn engine_stream_matches_the_batch_engine_on_window_contents() {
        let params = DbscanParams::new(0.8, 3).unwrap();
        let engine = ClusterEngine::builder()
            .algorithm(Algo::Rt)
            .index(IndexKind::WideBatched)
            .params(params)
            .build()
            .unwrap();
        let mut stream = engine.stream(WindowPolicy::Count(500)).unwrap();
        let pts: Vec<Point3> = (0..120)
            .map(|i| Point3::new_2d((i % 30) as f32 * 0.4, (i / 30) as f32 * 0.4))
            .collect();
        let timed: Vec<(Point3, f64)> = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as f64))
            .collect();
        stream.ingest(&timed).unwrap();
        let snapshot = stream.snapshot();
        let reference = ClassicDbscan::cluster(&pts, params).unwrap();
        assert_eq!(reference.core, snapshot.core);
        assert!(same_clustering(&reference, &snapshot, &pts, params));
    }

    #[test]
    fn backend_choice_selects_the_snapshot_traversal() {
        let base = ClusterEngine::builder().eps(0.5).min_pts(2);
        let wide = base
            .clone()
            .index(IndexKind::WideBatched)
            .build()
            .unwrap()
            .streaming_config(WindowPolicy::Count(10));
        assert_eq!(wide.snapshot_traversal, TraversalEngine::WideBatched);
        for kind in [
            IndexKind::BinaryBvh,
            IndexKind::UniformGrid,
            IndexKind::BruteForce,
        ] {
            let cfg = base
                .clone()
                .index(kind)
                .build()
                .unwrap()
                .streaming_config(WindowPolicy::Count(10));
            assert_eq!(cfg.snapshot_traversal, TraversalEngine::Binary, "{kind:?}");
        }
    }

    #[test]
    fn invalid_window_policies_are_rejected() {
        let engine = ClusterEngine::builder()
            .eps(0.5)
            .min_pts(2)
            .build()
            .unwrap();
        assert!(engine.stream(WindowPolicy::Count(0)).is_err());
        assert!(engine.stream(WindowPolicy::Time(-1.0)).is_err());
    }
}

//! Running one algorithm on one workload and collecting every number the
//! experiments need.

use rtcore::geometry::Point3;
use rtcore::hardware::DeviceModel;
use rtdbscan::runner::SimulatedBreakdown;
use rtdbscan::{DbscanAlgorithm, DbscanParams, RunResult};

/// Everything measured from a single algorithm run.
#[derive(Debug, Clone)]
pub struct MeasuredRun {
    /// Algorithm name ("RT-DBSCAN", "FDBSCAN", …).
    pub name: &'static str,
    /// The full run result (clustering, counters, wall-clock timings).
    pub result: RunResult,
    /// Simulated per-phase device time on the RTX 2060 model.
    pub simulated: SimulatedBreakdown,
    /// Short error text when the run failed (e.g. simulated out-of-memory),
    /// in which case `result`/`simulated` hold zeroed placeholders.
    pub error: Option<String>,
}

impl MeasuredRun {
    /// Total simulated device time in seconds (`f64::INFINITY` for failed
    /// runs so speedup math stays well-defined).
    pub fn simulated_seconds(&self) -> f64 {
        if self.error.is_some() {
            f64::INFINITY
        } else {
            self.simulated.total().as_secs_f64()
        }
    }

    /// Total wall-clock seconds of this Rust implementation.
    pub fn wall_seconds(&self) -> f64 {
        self.result.timings.total().as_secs_f64()
    }

    /// Number of clusters the run produced (0 for failed runs).
    pub fn clusters(&self) -> usize {
        self.result.clustering.num_clusters()
    }

    /// True if the run failed (e.g. out of simulated device memory).
    pub fn failed(&self) -> bool {
        self.error.is_some()
    }
}

/// Run `algo` on `points` with `params` and collect all measurements,
/// converting counters to simulated time on `device`.
pub fn measure_on(
    algo: &dyn DbscanAlgorithm,
    points: &[Point3],
    params: DbscanParams,
    device: &DeviceModel,
) -> MeasuredRun {
    match algo.run(points, params) {
        Ok(result) => {
            let simulated = result.simulate_on(device);
            MeasuredRun {
                name: algo.name(),
                result,
                simulated,
                error: None,
            }
        }
        Err(err) => MeasuredRun {
            name: algo.name(),
            result: empty_result(),
            simulated: SimulatedBreakdown::default(),
            error: Some(err.to_string()),
        },
    }
}

/// [`measure_on`] with the default simulated device (RTX 2060).
pub fn measure(algo: &dyn DbscanAlgorithm, points: &[Point3], params: DbscanParams) -> MeasuredRun {
    measure_on(algo, points, params, &DeviceModel::default())
}

fn empty_result() -> RunResult {
    RunResult {
        clustering: rtdbscan::Clustering::new(vec![], vec![]),
        timings: rtdbscan::PhaseTimings::default(),
        counters: rtdbscan::PhaseCounters::default(),
        path: rtcore::hardware::ExecutionPath::ShaderCore,
        device_bytes: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdbscan::{Fdbscan, GDbscan, RtDbscan};

    fn small_blobs() -> Vec<Point3> {
        let mut pts = Vec::new();
        for c in 0..2 {
            for i in 0..40 {
                pts.push(Point3::new_2d(
                    c as f32 * 20.0 + (i % 8) as f32 * 0.1,
                    (i / 8) as f32 * 0.1,
                ));
            }
        }
        pts
    }

    #[test]
    fn measure_produces_consistent_numbers() {
        let pts = small_blobs();
        let params = DbscanParams::new(0.5, 3).unwrap();
        let m = measure(&RtDbscan::default(), &pts, params);
        assert!(!m.failed());
        assert_eq!(m.clusters(), 2);
        assert!(m.simulated_seconds() > 0.0);
        assert!(m.simulated_seconds() < 1.0);
        assert!(m.wall_seconds() > 0.0);
        assert_eq!(m.name, "RT-DBSCAN");
    }

    #[test]
    fn failed_runs_report_infinite_time() {
        let pts = small_blobs();
        let params = DbscanParams::new(0.5, 3).unwrap();
        let oom = GDbscan {
            device_memory_bytes: 16,
        };
        let m = measure(&oom, &pts, params);
        assert!(m.failed());
        assert!(m.simulated_seconds().is_infinite());
        assert_eq!(m.clusters(), 0);
        assert!(m.error.as_ref().unwrap().contains("memory"));
    }

    #[test]
    fn identical_work_is_cheaper_on_the_rt_path() {
        // RT-DBSCAN and FDBSCAN do comparable traversal work on this small
        // input, but RT work is charged to the RT-core profile.
        let pts = small_blobs();
        let params = DbscanParams::new(0.5, 3).unwrap();
        let rt = measure(&RtDbscan::default(), &pts, params);
        let fd = measure(&Fdbscan::default(), &pts, params);
        assert!(rt.simulated.clustering_fraction() < fd.simulated.clustering_fraction());
    }
}

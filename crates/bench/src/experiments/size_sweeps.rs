//! Dataset-size sweeps: Fig 6, Fig 7 and Table I.

use super::{dataset, ExperimentScale};
use crate::measure::measure;
use crate::table::ExperimentTable;
use rtdbscan::{DbscanParams, Fdbscan, RtDbscan};
use rtdbscan_datasets::PaperDataset;

/// Paper dataset sizes swept in the size experiments.
pub fn size_sweep_values(which: PaperDataset) -> Vec<usize> {
    match which {
        // 3DRoad caps at its real ~435 K points ("a maximum of 400 K", §V-B3).
        PaperDataset::RoadNetwork => vec![50_000, 100_000, 200_000, 400_000],
        // Porto and NGSIM: Table I / Table III go from 500 K to 8 M.
        PaperDataset::PortoTaxi | PaperDataset::Ngsim => {
            vec![500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000]
        }
        PaperDataset::Ionosphere3d => vec![125_000, 250_000, 500_000, 1_000_000],
    }
}

/// The fixed (ε, minPts) pair the paper uses for each dataset's size sweep
/// (§V-B3): (0.05, 100) for 3DRoad, (0.5, 1000) for Porto, (0.5, 10) for
/// 3DIono, and the Table III setting (0.0005, 100) for NGSIM.
pub fn size_sweep_params(which: PaperDataset, scale: &ExperimentScale) -> (f32, usize) {
    let (eps, min_pts) = which.default_params();
    // NGSIM's duplication structure does not change with the sample size, so
    // its minPts is kept at the paper's value (that is what keeps the cluster
    // count at zero); the others scale with dataset size.
    let min_pts = if which == PaperDataset::Ngsim {
        min_pts
    } else {
        scale.min_pts(min_pts)
    };
    (eps, min_pts)
}

fn run_size_sweep(scale: &ExperimentScale, which: PaperDataset) -> Vec<(usize, f64, f64, usize)> {
    let (eps, min_pts) = size_sweep_params(which, scale);
    size_sweep_values(which)
        .into_iter()
        .map(|paper_n| {
            let points = dataset(scale, which, paper_n);
            let params = DbscanParams::new(eps, min_pts).expect("valid params");
            let fd = measure(&Fdbscan::default(), &points, params);
            let rt = measure(&RtDbscan::default(), &points, params);
            (
                points.len(),
                fd.simulated_seconds(),
                rt.simulated_seconds(),
                rt.clusters(),
            )
        })
        .collect()
}

/// **Figure 6 (a/b/c)** — speedup of RT-DBSCAN over FDBSCAN while varying the
/// dataset size, with (ε, minPts) fixed per dataset.
pub fn fig6_size_sweep(scale: &ExperimentScale, which: PaperDataset) -> ExperimentTable {
    let sub = match which {
        PaperDataset::RoadNetwork => "6a",
        PaperDataset::PortoTaxi => "6b",
        PaperDataset::Ionosphere3d => "6c",
        PaperDataset::Ngsim => "8b",
    };
    let (eps, min_pts) = size_sweep_params(which, scale);
    let mut table = ExperimentTable::new(
        format!(
            "Figure {sub}: RT-DBSCAN speedup over FDBSCAN vs dataset size ({}, eps={eps}, minPts={min_pts})",
            which.name()
        ),
        "dataset size",
        vec![
            "speedup".to_string(),
            "FDBSCAN sim (s)".to_string(),
            "RT-DBSCAN sim (s)".to_string(),
            "clusters".to_string(),
        ],
    );
    for (n, fd, rt, clusters) in run_size_sweep(scale, which) {
        table.push_row(
            format!("{n}"),
            vec![Some(fd / rt), Some(fd), Some(rt), Some(clusters as f64)],
        );
    }
    table.push_note(match which {
        PaperDataset::RoadNetwork => {
            "Paper: max speedup 1.37x (small dataset, build-dominated).".to_string()
        }
        PaperDataset::PortoTaxi => "Paper: max speedup 2.9x at the largest size.".to_string(),
        PaperDataset::Ionosphere3d => "Paper: max speedup 4.1x at the largest size.".to_string(),
        PaperDataset::Ngsim => "See Table III.".to_string(),
    });
    table
}

/// **Figure 7** — raw execution-time growth of both algorithms on 3DIono as
/// the dataset size increases (same runs as Fig 6c, absolute values).
pub fn fig7_scalability(scale: &ExperimentScale) -> ExperimentTable {
    let which = PaperDataset::Ionosphere3d;
    let (eps, min_pts) = size_sweep_params(which, scale);
    let mut table = ExperimentTable::new(
        format!("Figure 7: execution-time scalability on 3DIono (eps={eps}, minPts={min_pts})"),
        "dataset size",
        vec![
            "FDBSCAN sim (s)".to_string(),
            "RT-DBSCAN sim (s)".to_string(),
        ],
    );
    for (n, fd, rt, _) in run_size_sweep(scale, which) {
        table.push_row(format!("{n}"), vec![Some(fd), Some(rt)]);
    }
    table.push_note(
        "Paper: RT-DBSCAN's execution time grows significantly more slowly than FDBSCAN's."
            .to_string(),
    );
    table
}

/// **Table I** — raw execution times for the Porto dataset while varying the
/// dataset size (the largest dataset the paper examines).
pub fn table1_porto(scale: &ExperimentScale) -> ExperimentTable {
    let which = PaperDataset::PortoTaxi;
    let (eps, min_pts) = size_sweep_params(which, scale);
    let mut table = ExperimentTable::new(
        format!(
            "Table I: execution time (s) for Porto vs dataset size (eps={eps}, minPts={min_pts})"
        ),
        "dataset size",
        vec![
            "FDBSCAN (s)".to_string(),
            "RT-DBSCAN (s)".to_string(),
            "speedup".to_string(),
        ],
    );
    for (n, fd, rt, _) in run_size_sweep(scale, which) {
        table.push_row(format!("{n}"), vec![Some(fd), Some(rt), Some(fd / rt)]);
    }
    table.push_note(
        "Paper values (1M): FDBSCAN 2868.1 s, RT-DBSCAN 1347.2 s on the authors' full pipeline; \
         shape (RT-DBSCAN ~2-3x faster, gap widening with size) is the reproduction target."
            .to_string(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_sizes_are_increasing() {
        for d in PaperDataset::ALL {
            let v = size_sweep_values(d);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "{}", d.name());
        }
    }

    #[test]
    fn params_scale_except_for_ngsim() {
        let scale = ExperimentScale::standard();
        let (_, road) = size_sweep_params(PaperDataset::RoadNetwork, &scale);
        assert_eq!(road, scale.min_pts(100));
        let (_, ngsim) = size_sweep_params(PaperDataset::Ngsim, &scale);
        assert_eq!(ngsim, 100);
    }

    #[test]
    fn fig7_smoke_table_has_two_columns_per_row() {
        let scale = ExperimentScale::smoke();
        let t = fig7_scalability(&scale);
        assert_eq!(t.columns.len(), 2);
        assert_eq!(
            t.rows.len(),
            size_sweep_values(PaperDataset::Ionosphere3d).len()
        );
        for (label, row) in &t.rows {
            assert!(label.parse::<usize>().is_ok());
            assert!(row.iter().all(|v| v.unwrap() > 0.0));
        }
    }
}

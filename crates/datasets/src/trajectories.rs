//! Trajectory-style generators: Porto taxi GPS and NGSIM vehicle traces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use rtcore::geometry::Point3;

// ---------------------------------------------------------------------------
// Porto taxi trajectories
// ---------------------------------------------------------------------------

/// Spatial extent of the synthetic Porto dataset, in kilometres from the city
/// centre.  The paper's ε sweep for Porto runs from ~0.1 to ~1.0, which in
/// this coordinate system moves the clustering from "hotspots only" to "most
/// of the city is one cluster".
pub const PORTO_EXTENT_KM: f32 = 30.0;

/// Generate `n` Porto-like taxi GPS points.
///
/// Structure: a number of pick-up hotspots (airport, station, centre) with
/// heavy point mass, connected by random-walk trajectories that thin out
/// toward the suburbs.  About 10 % of points are scattered background noise
/// (GPS glitches, rare destinations).
pub fn generate_porto_taxi(n: usize, seed: u64) -> Vec<Point3> {
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0009_0970);
    let hotspots: Vec<(f32, f32, f32)> = vec![
        (0.0, 0.0, 0.6),   // city centre
        (6.0, 4.0, 0.9),   // airport
        (-4.0, 2.5, 0.5),  // station
        (3.0, -5.0, 0.8),  // beach front
        (-7.0, -3.0, 1.0), // industrial area
        (9.0, -1.0, 1.2),  // suburb hub
    ];
    let jitter = Normal::new(0.0f32, 0.04).unwrap();
    let mut pts = Vec::with_capacity(n);

    while pts.len() < n {
        let roll: f64 = rng.gen();
        if roll < 0.10 {
            // Background noise over the whole metro area.
            pts.push(Point3::new_2d(
                rng.gen_range(-PORTO_EXTENT_KM..PORTO_EXTENT_KM),
                rng.gen_range(-PORTO_EXTENT_KM..PORTO_EXTENT_KM),
            ));
        } else if roll < 0.55 {
            // Hotspot mass.
            let (hx, hy, hr) = hotspots[rng.gen_range(0..hotspots.len())];
            let spread = Normal::new(0.0f32, hr).unwrap();
            pts.push(Point3::new_2d(
                hx + spread.sample(&mut rng),
                hy + spread.sample(&mut rng),
            ));
        } else {
            // A trajectory: random walk between two hotspots.
            let (sx, sy, _) = hotspots[rng.gen_range(0..hotspots.len())];
            let (tx, ty, _) = hotspots[rng.gen_range(0..hotspots.len())];
            let steps = rng.gen_range(20..=60usize);
            for s in 0..steps {
                if pts.len() >= n {
                    break;
                }
                let t = s as f32 / steps as f32;
                pts.push(Point3::new_2d(
                    sx + t * (tx - sx) + jitter.sample(&mut rng) * 4.0,
                    sy + t * (ty - sy) + jitter.sample(&mut rng) * 4.0,
                ));
            }
        }
    }
    pts.truncate(n);
    pts
}

// ---------------------------------------------------------------------------
// NGSIM vehicle trajectories
// ---------------------------------------------------------------------------

/// Lane-centre x coordinates (feet) of the synthetic NGSIM highway segment.
pub const NGSIM_LANES: [f32; 6] = [6.0, 18.0, 30.0, 42.0, 54.0, 66.0];
/// Length of the synthetic highway segment (feet).
pub const NGSIM_SEGMENT_FT: f32 = 2000.0;
/// Coordinate quantisation of the recorded positions (feet).  Real NGSIM
/// positions are post-processed to limited precision, which is what creates
/// its massive numbers of exactly duplicated coordinates.
pub const NGSIM_QUANTUM_FT: f32 = 0.05;

/// Generate `n` NGSIM-like vehicle-trajectory points.
///
/// Character of the real dataset that matters for the paper's experiments:
///
/// * the spatial domain is tiny (a ~2000 ft highway segment with 6 lanes) and
///   the point count is huge, so the dataset is extraordinarily dense;
/// * vehicles are sampled at 10 Hz with quantised local coordinates, so
///   stop-and-go traffic produces long runs of *exactly identical*
///   coordinates (the same vehicle stopped) and many near-identical ones
///   (neighbouring vehicles in a jam);
/// * with the paper's tiny ε (1e-4 … 1e-3) and minPts = 100, no point gathers
///   enough neighbours and **zero clusters** are formed.
///
/// Congestion is modelled explicitly: a fraction of the segment is jammed and
/// attracts most of the points, with stopped vehicles emitting duplicate
/// coordinates.  Outside the jams, vehicles move freely and leave
/// well-spaced samples.
pub fn generate_ngsim(n: usize, seed: u64) -> Vec<Point3> {
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0000_9516);
    // Two jam regions covering ~5 % of the segment.
    let jams: Vec<(f32, f32)> = vec![(300.0, 360.0), (1400.0, 1450.0)];
    let quantize = |v: f32| (v / NGSIM_QUANTUM_FT).round() * NGSIM_QUANTUM_FT;

    let mut pts = Vec::with_capacity(n);
    while pts.len() < n {
        let lane = NGSIM_LANES[rng.gen_range(0..NGSIM_LANES.len())];
        let lateral_offset = quantize(rng.gen_range(-1.0f32..1.0));
        let x = quantize(lane + lateral_offset);

        if rng.gen_bool(0.7) {
            // A vehicle stuck in a jam: it creeps forward very slowly and is
            // sampled many times at the same quantised position.
            let (js, je) = jams[rng.gen_range(0..jams.len())];
            let y0 = quantize(rng.gen_range(js..je));
            let dwell = rng.gen_range(8..=60usize); // samples at this position
            for _ in 0..dwell {
                if pts.len() >= n {
                    break;
                }
                pts.push(Point3::new_2d(x, y0));
            }
        } else {
            // Free-flowing vehicle: 10 Hz samples at ~50 ft/s → ~5 ft spacing.
            let mut y = rng.gen_range(0.0f32..NGSIM_SEGMENT_FT);
            let samples = rng.gen_range(5..=40usize);
            for _ in 0..samples {
                if pts.len() >= n {
                    break;
                }
                pts.push(Point3::new_2d(x, quantize(y)));
                y += rng.gen_range(3.0f32..7.0);
                if y > NGSIM_SEGMENT_FT {
                    y -= NGSIM_SEGMENT_FT;
                }
            }
        }
    }
    pts.truncate(n);
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn porto_points_are_in_the_metro_area() {
        let pts = generate_porto_taxi(5000, 3);
        assert_eq!(pts.len(), 5000);
        for p in &pts {
            assert!(p.x.abs() <= PORTO_EXTENT_KM + 6.0);
            assert!(p.y.abs() <= PORTO_EXTENT_KM + 6.0);
            assert_eq!(p.z, 0.0);
        }
    }

    #[test]
    fn porto_has_hotspot_density_structure() {
        let pts = generate_porto_taxi(20_000, 5);
        // The city-centre hotspot at (0,0) should hold far more than a
        // uniform share of points within 1.5 km.
        let near_centre = pts
            .iter()
            .filter(|p| p.x * p.x + p.y * p.y < 1.5 * 1.5)
            .count();
        let uniform_share = 20_000.0 * (std::f32::consts::PI * 1.5 * 1.5)
            / (4.0 * PORTO_EXTENT_KM * PORTO_EXTENT_KM);
        assert!(
            near_centre as f32 > 5.0 * uniform_share,
            "near_centre {near_centre} vs uniform {uniform_share}"
        );
    }

    #[test]
    fn ngsim_is_confined_to_the_highway_segment() {
        let pts = generate_ngsim(5000, 7);
        assert_eq!(pts.len(), 5000);
        for p in &pts {
            assert!(p.x >= 0.0 && p.x <= 70.0, "x = {}", p.x);
            assert!(p.y >= -1.0 && p.y <= NGSIM_SEGMENT_FT + 1.0, "y = {}", p.y);
            assert_eq!(p.z, 0.0);
        }
    }

    #[test]
    fn ngsim_has_heavy_exact_duplication() {
        let pts = generate_ngsim(50_000, 11);
        let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
        for p in &pts {
            *counts.entry((p.x.to_bits(), p.y.to_bits())).or_default() += 1;
        }
        let unique = counts.len();
        let dup_ratio = pts.len() as f64 / unique as f64;
        assert!(
            dup_ratio > 2.0,
            "expected heavy duplication, got ratio {dup_ratio:.2} ({unique} unique / {} total)",
            pts.len()
        );
        // No single location should reach the paper's minPts = 100 on a
        // 50 K sample, which is what keeps the cluster count at zero.
        let max_dup = counts.values().copied().max().unwrap_or(0);
        assert!(max_dup < 100, "max duplicates {max_dup}");
    }

    #[test]
    fn ngsim_is_much_denser_than_porto() {
        let ngsim = generate_ngsim(10_000, 1);
        let porto = generate_porto_taxi(10_000, 1);
        let area = |pts: &[Point3]| {
            let (mut minx, mut maxx, mut miny, mut maxy) = (
                f32::INFINITY,
                f32::NEG_INFINITY,
                f32::INFINITY,
                f32::NEG_INFINITY,
            );
            for p in pts {
                minx = minx.min(p.x);
                maxx = maxx.max(p.x);
                miny = miny.min(p.y);
                maxy = maxy.max(p.y);
            }
            ((maxx - minx) as f64) * ((maxy - miny) as f64)
        };
        // Points per unit area: NGSIM's absolute area is larger in raw units
        // (feet vs km) but its *occupied* area per point is what matters less
        // here than duplication; still, its bounding box is far smaller than
        // Porto's relative to the coordinate scale of the ε values used
        // (1e-4 vs 1e-1).  Sanity check the raw extents instead.
        assert!(area(&ngsim) < 80.0 * 2100.0);
        assert!(area(&porto) > 100.0);
    }

    #[test]
    fn generators_deterministic_and_zero_safe() {
        assert!(generate_porto_taxi(0, 1).is_empty());
        assert!(generate_ngsim(0, 1).is_empty());
        assert_eq!(generate_porto_taxi(777, 9), generate_porto_taxi(777, 9));
        assert_eq!(generate_ngsim(777, 9), generate_ngsim(777, 9));
        assert_ne!(generate_ngsim(777, 9), generate_ngsim(777, 10));
    }
}

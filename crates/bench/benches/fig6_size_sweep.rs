//! Criterion wall-clock benchmark behind Figures 6/7 and Tables I/III:
//! RT-DBSCAN vs FDBSCAN while varying the dataset size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtdbscan::{DbscanAlgorithm, DbscanParams, Fdbscan, RtDbscan};
use rtdbscan_datasets::{generate, PaperDataset};

fn bench_size_sweep(c: &mut Criterion) {
    let configs = [
        (PaperDataset::PortoTaxi, 0.5f32, 13usize),
        (PaperDataset::Ionosphere3d, 0.5f32, 2usize),
        (PaperDataset::Ngsim, 0.0005f32, 100usize),
    ];
    for (dataset, eps, min_pts) in configs {
        let mut group = c.benchmark_group(format!("fig6_{}", dataset.name()));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(3));
        for n in [15_000usize, 60_000] {
            let points = generate(dataset, n, 42);
            let params = DbscanParams::new(eps, min_pts).unwrap();
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new("rt_dbscan", n), &n, |b, _| {
                b.iter(|| {
                    RtDbscan::default()
                        .run(std::hint::black_box(&points), params)
                        .unwrap()
                })
            });
            group.bench_with_input(BenchmarkId::new("fdbscan", n), &n, |b, _| {
                b.iter(|| {
                    Fdbscan::default()
                        .run(std::hint::black_box(&points), params)
                        .unwrap()
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_size_sweep);
criterion_main!(benches);

//! Synthetic dataset generators for the RT-DBSCAN reproduction.
//!
//! The paper evaluates on four real-world datasets that are not
//! redistributable here (3DRoad, Porto taxi trajectories, NGSIM vehicle
//! trajectories and 3DIono).  This crate generates synthetic datasets with
//! the same statistical structure — dimensionality, scale, density regime,
//! cluster shape and (for NGSIM) heavy coordinate duplication — so that every
//! experiment in the paper can be re-run.  DESIGN.md §1 documents the
//! substitution in detail.
//!
//! Every generator is deterministic given a seed, so benchmark runs are
//! reproducible.
//!
//! ```
//! use rtdbscan_datasets::{PaperDataset, generate};
//!
//! let pts = generate(PaperDataset::RoadNetwork, 10_000, 7);
//! assert_eq!(pts.len(), 10_000);
//! ```

#![warn(missing_docs)]

pub mod io;
pub mod iono;
pub mod road;
pub mod stream;
pub mod synthetic;
pub mod trajectories;

pub use io::{load_csv, save_csv};
pub use stream::{PointStream, StreamConfig, TimedPoint};

use rtcore::geometry::Point3;

/// The four evaluation datasets of the paper, as synthetic analogues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// 3DRoad: road-network points of North Jutland, used as a 2-D dataset
    /// (~435 K points in the paper).
    RoadNetwork,
    /// Porto: taxi GPS trajectories in a city (~1.7 M points in the paper).
    PortoTaxi,
    /// NGSIM: extremely dense, lane-constrained vehicle trajectories with
    /// heavy coordinate duplication (~11 M points in the paper).
    Ngsim,
    /// 3DIono: 3-D ionosphere measurements (latitude, longitude, total
    /// electron count; ~1 M points in the paper).
    Ionosphere3d,
}

impl PaperDataset {
    /// All four datasets, in the order the paper introduces them.
    pub const ALL: [PaperDataset; 4] = [
        PaperDataset::RoadNetwork,
        PaperDataset::PortoTaxi,
        PaperDataset::Ngsim,
        PaperDataset::Ionosphere3d,
    ];

    /// Short name used in reports and file names.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::RoadNetwork => "3DRoad",
            PaperDataset::PortoTaxi => "Porto",
            PaperDataset::Ngsim => "NGSIM",
            PaperDataset::Ionosphere3d => "3DIono",
        }
    }

    /// True if the dataset is used in its 2-D form (z = 0).
    pub fn is_2d(&self) -> bool {
        !matches!(self, PaperDataset::Ionosphere3d)
    }

    /// The (ε, minPts) pair the paper fixes for this dataset in the
    /// dataset-size experiments (Fig 6): (0.05, 100) for 3DRoad,
    /// (0.5, 1000) for Porto, (0.5, 10) for 3DIono.  NGSIM uses the Table II
    /// setting (0.0005, 100).
    pub fn default_params(&self) -> (f32, usize) {
        match self {
            PaperDataset::RoadNetwork => (0.05, 100),
            PaperDataset::PortoTaxi => (0.5, 1000),
            PaperDataset::Ngsim => (0.0005, 100),
            PaperDataset::Ionosphere3d => (0.5, 10),
        }
    }

    /// Dataset size used in the paper's full-scale experiments.
    pub fn paper_size(&self) -> usize {
        match self {
            PaperDataset::RoadNetwork => 435_000,
            PaperDataset::PortoTaxi => 1_000_000,
            PaperDataset::Ngsim => 1_000_000,
            PaperDataset::Ionosphere3d => 1_000_000,
        }
    }
}

/// Generate `n` points of the requested dataset with the given seed.
pub fn generate(dataset: PaperDataset, n: usize, seed: u64) -> Vec<Point3> {
    match dataset {
        PaperDataset::RoadNetwork => road::generate_road_network(n, seed),
        PaperDataset::PortoTaxi => trajectories::generate_porto_taxi(n, seed),
        PaperDataset::Ngsim => trajectories::generate_ngsim(n, seed),
        PaperDataset::Ionosphere3d => iono::generate_ionosphere(n, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_requested_size() {
        for d in PaperDataset::ALL {
            let pts = generate(d, 2000, 42);
            assert_eq!(pts.len(), 2000, "{}", d.name());
            assert!(pts.iter().all(|p| p.is_finite()), "{}", d.name());
        }
    }

    #[test]
    fn two_d_datasets_have_zero_z() {
        for d in PaperDataset::ALL.iter().filter(|d| d.is_2d()) {
            let pts = generate(*d, 500, 1);
            assert!(pts.iter().all(|p| p.z == 0.0), "{}", d.name());
        }
    }

    #[test]
    fn three_d_dataset_uses_z() {
        let pts = generate(PaperDataset::Ionosphere3d, 500, 1);
        assert!(pts.iter().any(|p| p.z != 0.0));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for d in PaperDataset::ALL {
            let a = generate(d, 300, 9);
            let b = generate(d, 300, 9);
            let c = generate(d, 300, 10);
            assert_eq!(a, b, "{}", d.name());
            assert_ne!(a, c, "{}", d.name());
        }
    }

    #[test]
    fn metadata_is_consistent() {
        assert_eq!(PaperDataset::ALL.len(), 4);
        for d in PaperDataset::ALL {
            assert!(!d.name().is_empty());
            let (eps, min_pts) = d.default_params();
            assert!(eps > 0.0);
            assert!(min_pts > 0);
            assert!(d.paper_size() >= 100_000);
        }
    }
}

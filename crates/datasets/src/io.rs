//! Minimal CSV persistence for point sets.
//!
//! The real datasets the paper uses are distributed as CSV files; users who
//! do have access to them can load them with [`load_csv`] and run the same
//! experiments on the real data.  [`save_csv`] lets the synthetic datasets be
//! exported for inspection or for cross-checking against other DBSCAN
//! implementations.

use rtcore::geometry::Point3;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Save points as `x,y,z` CSV (no header).
pub fn save_csv(path: &Path, points: &[Point3]) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for p in points {
        writeln!(w, "{},{},{}", p.x, p.y, p.z)?;
    }
    w.flush()
}

/// Load points from a CSV file.
///
/// Accepted formats, per line: `x,y` (z is set to 0) or `x,y,z`.  Extra
/// columns are ignored, as are empty lines and lines starting with `#`.
/// A line whose first two columns do not parse as numbers is treated as a
/// header if it is the first line, and as an error otherwise.
pub fn load_csv(path: &Path) -> io::Result<Vec<Point3>> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut pts = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut cols = trimmed.split(',').map(str::trim);
        let x = cols.next().and_then(|c| c.parse::<f32>().ok());
        let y = cols.next().and_then(|c| c.parse::<f32>().ok());
        let z = cols
            .next()
            .and_then(|c| c.parse::<f32>().ok())
            .unwrap_or(0.0);
        match (x, y) {
            (Some(x), Some(y)) => pts.push(Point3::new(x, y, z)),
            _ if lineno == 0 => continue, // header row
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: could not parse '{}'", lineno + 1, trimmed),
                ))
            }
        }
    }
    Ok(pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rtdbscan_io_test_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip_save_and_load() {
        let pts = vec![
            Point3::new(1.5, -2.25, 3.0),
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1e-6, 1e6, -4.5),
        ];
        let path = temp_path("roundtrip.csv");
        save_csv(&path, &pts).unwrap();
        let loaded = load_csv(&path).unwrap();
        assert_eq!(loaded, pts);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loads_2d_rows_with_zero_z() {
        let path = temp_path("2d.csv");
        let mut f = File::create(&path).unwrap();
        writeln!(f, "1.0,2.0").unwrap();
        writeln!(f, "3.0,4.0").unwrap();
        drop(f);
        let pts = load_csv(&path).unwrap();
        assert_eq!(
            pts,
            vec![Point3::new_2d(1.0, 2.0), Point3::new_2d(3.0, 4.0)]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn skips_header_comments_and_blank_lines() {
        let path = temp_path("header.csv");
        let mut f = File::create(&path).unwrap();
        writeln!(f, "lon,lat,tec").unwrap();
        writeln!(f, "# a comment").unwrap();
        writeln!(f).unwrap();
        writeln!(f, "1.0, 2.0, 3.0").unwrap();
        drop(f);
        let pts = load_csv(&path).unwrap();
        assert_eq!(pts, vec![Point3::new(1.0, 2.0, 3.0)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_mid_file_is_an_error() {
        let path = temp_path("garbage.csv");
        let mut f = File::create(&path).unwrap();
        writeln!(f, "1.0,2.0").unwrap();
        writeln!(f, "not,numbers").unwrap();
        drop(f);
        let err = load_csv(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn extra_columns_are_ignored() {
        let path = temp_path("extra.csv");
        let mut f = File::create(&path).unwrap();
        writeln!(f, "1.0,2.0,3.0,99,hello").unwrap();
        drop(f);
        let pts = load_csv(&path).unwrap();
        assert_eq!(pts, vec![Point3::new(1.0, 2.0, 3.0)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_csv(Path::new("/nonexistent/definitely_missing.csv")).is_err());
    }
}

//! `DbscanAlgorithm` adapter: run a batch workload through the streaming
//! path so the oracle, metrics and bench machinery apply to it unchanged.

use crate::clusterer::StreamingClusterer;
use crate::window::{StreamingConfig, WindowPolicy};
use rtcore::geometry::Point3;
use rtcore::hardware::ExecutionPath;
use rtcore::Result;
use rtdbscan::runner::{DbscanAlgorithm, PhaseCounters, PhaseTimings, RunResult};
use rtdbscan::DbscanParams;

/// Replays a batch input through [`StreamingClusterer`] and returns the
/// final snapshot as an ordinary [`RunResult`].
///
/// The window is sized to hold the entire input, so the final snapshot
/// covers exactly the same point set a batch algorithm sees — which is what
/// lets `rtdbscan::metrics::same_clustering` and the equivalence test suite
/// compare the streaming subsystem directly against `ClassicDbscan` and
/// RT-DBSCAN.
///
/// ```
/// use rtcore::geometry::Point3;
/// use rtdbscan::{ClassicDbscan, DbscanAlgorithm, DbscanParams};
/// use rtdbscan::metrics::same_clustering;
/// use rtdbscan_stream::StreamingSnapshotAlgorithm;
///
/// let points: Vec<Point3> = (0..40).map(|i| Point3::new_2d(0.2 * i as f32, 0.0)).collect();
/// let params = DbscanParams::new(0.5, 2).unwrap();
/// let streamed = StreamingSnapshotAlgorithm::default().run(&points, params).unwrap();
/// let reference = ClassicDbscan::cluster(&points, params).unwrap();
/// assert!(same_clustering(&reference, &streamed.clustering, &points, params));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StreamingSnapshotAlgorithm {
    /// Points per ingestion batch during the replay.
    pub batch_size: usize,
    /// Snapshot after every batch (exercises incremental maintenance the
    /// way a live deployment would) instead of only at the end.
    pub snapshot_every_batch: bool,
}

impl Default for StreamingSnapshotAlgorithm {
    fn default() -> Self {
        StreamingSnapshotAlgorithm {
            batch_size: 512,
            snapshot_every_batch: false,
        }
    }
}

impl DbscanAlgorithm for StreamingSnapshotAlgorithm {
    fn name(&self) -> &'static str {
        "Streaming RT-DBSCAN (snapshot)"
    }

    fn run(&self, points: &[Point3], params: DbscanParams) -> Result<RunResult> {
        params.validate()?;
        let window = WindowPolicy::Count(points.len().max(1));
        let mut clusterer = StreamingClusterer::new(StreamingConfig::new(params, window))?;

        let start = std::time::Instant::now();
        let batch = self.batch_size.max(1);
        let mut time = 0.0f64;
        for chunk in points.chunks(batch) {
            let timed: Vec<(Point3, f64)> = chunk
                .iter()
                .map(|&p| {
                    time += 1.0;
                    (p, time)
                })
                .collect();
            clusterer.ingest(&timed)?;
            if self.snapshot_every_batch {
                let _ = clusterer.snapshot();
            }
        }
        let clustering = clusterer.snapshot();
        let elapsed = start.elapsed();

        let (build, stage1, stage2) = clusterer.phase_counters();
        Ok(RunResult {
            clustering,
            // The streaming path interleaves all three phases; wall-clock
            // time is reported against the total, with the per-phase *work*
            // split carried by the counters.
            timings: PhaseTimings {
                build: std::time::Duration::ZERO,
                core_identification: std::time::Duration::ZERO,
                cluster_formation: elapsed,
            },
            counters: PhaseCounters {
                build,
                core_identification: stage1,
                cluster_formation: stage2,
            },
            path: ExecutionPath::RtCore,
            device_bytes: clusterer.device_bytes(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdbscan::metrics::same_clustering;
    use rtdbscan::{ClassicDbscan, RtDbscan};

    fn blobs() -> Vec<Point3> {
        let mut pts = Vec::new();
        for c in 0..3 {
            let cx = c as f32 * 12.0;
            for i in 0..45 {
                let a = i as f32 * 0.41;
                let r = 0.8 * ((i % 9) as f32 / 9.0);
                pts.push(Point3::new_2d(cx + r * a.cos(), 3.0 + r * a.sin()));
            }
        }
        for i in 0..7 {
            pts.push(Point3::new_2d(5.0 + i as f32, -40.0));
        }
        pts
    }

    #[test]
    fn adapter_matches_batch_algorithms() {
        let pts = blobs();
        for (eps, min_pts) in [(0.5, 4), (1.0, 8), (2.0, 3)] {
            let params = DbscanParams::new(eps, min_pts).unwrap();
            let reference = ClassicDbscan::cluster(&pts, params).unwrap();
            let rt = RtDbscan::default().run(&pts, params).unwrap().clustering;
            let streamed = StreamingSnapshotAlgorithm::default()
                .run(&pts, params)
                .unwrap()
                .clustering;
            assert_eq!(reference.core, streamed.core, "eps={eps}");
            assert!(
                same_clustering(&reference, &streamed, &pts, params),
                "eps={eps}"
            );
            assert!(same_clustering(&rt, &streamed, &pts, params), "eps={eps}");
        }
    }

    #[test]
    fn small_batches_with_per_batch_snapshots_agree_too() {
        let pts = blobs();
        let params = DbscanParams::new(0.8, 5).unwrap();
        let algo = StreamingSnapshotAlgorithm {
            batch_size: 17,
            snapshot_every_batch: true,
        };
        let reference = ClassicDbscan::cluster(&pts, params).unwrap();
        let streamed = algo.run(&pts, params).unwrap().clustering;
        assert_eq!(reference.core, streamed.core);
        assert!(same_clustering(&reference, &streamed, &pts, params));
    }

    #[test]
    fn run_result_is_fully_populated() {
        let pts = blobs();
        let params = DbscanParams::new(0.8, 5).unwrap();
        let run = StreamingSnapshotAlgorithm::default()
            .run(&pts, params)
            .unwrap();
        assert_eq!(run.path, ExecutionPath::RtCore);
        assert!(run.device_bytes > 0);
        assert!(run.counters.build.build_prims > 0);
        assert!(run.counters.core_identification.rays as usize >= pts.len());
        assert!(run.counters.total().total_ops() > 0);
        // Streaming work feeds the simulated-device model like any other run.
        assert!(run.simulated_total().as_secs_f64() > 0.0);
    }

    #[test]
    fn empty_input_is_fine() {
        let params = DbscanParams::new(0.5, 2).unwrap();
        let run = StreamingSnapshotAlgorithm::default()
            .run(&[], params)
            .unwrap();
        assert!(run.clustering.is_empty());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(
            StreamingSnapshotAlgorithm::default().name(),
            "Streaming RT-DBSCAN (snapshot)"
        );
    }
}

//! `hotpath` — the steady-state query-path wall-clock trajectory.
//!
//! Runs a fixed-seed, fig6-style **stage-1 sweep** (every point's
//! ε-neighbour count, one batched launch over the whole dataset) on the
//! binary and wide-batched [`rtcore::index::NeighborIndex`] backends and
//! records wall-clock plus work counters to `BENCH_hotpath.json` at the
//! repository root.  Index
//! build time is excluded: the file tracks the *steady-state query path*
//! that PR 4's scratch-arena / SoA / CSR work optimises, so future PRs can
//! prove (or be caught regressing) the hot-path trajectory.
//!
//! # Usage
//!
//! ```text
//! cargo run --release -p rtdbscan-bench --bin hotpath                    # regenerate "current"
//! cargo run --release -p rtdbscan-bench --bin hotpath -- --record-baseline  # overwrite "baseline" too
//! cargo run --release -p rtdbscan-bench --bin hotpath -- --smoke        # tiny CI run, no file written
//! ```
//!
//! # `BENCH_hotpath.json` schema (`rtdbscan-hotpath/v1`)
//!
//! One JSON object with four keys:
//!
//! * `"schema"` — the literal string `"rtdbscan-hotpath/v1"`.
//! * `"config"` — the sweep parameters, one object on one line:
//!   `dataset`, `seed`, `eps`, `reps` (timing repetitions per cell; the
//!   reported `best_ns` is the minimum, `mean_ns` the average).
//! * `"baseline"` — `{ "results": [...] }`, recorded once (pre-PR 4) and
//!   preserved verbatim by later regenerations unless `--record-baseline`
//!   is passed.
//! * `"current"` — same shape, overwritten on every run.
//!
//! Each entry of `results` is one `(n, backend)` cell:
//! `{"n": 100000, "backend": "wide-batched", "best_ns": …, "mean_ns": …,
//!   "rays": …, "dist_comps": …, "prim_tests": …, "node_visits": …,
//!   "wide_node_visits": …, "batched_launches": …}` — the counters are the
//! aggregate [`rtcore::hardware::WorkCounters`] of one stage-1 launch and
//! must be identical
//! run-to-run (they are work, not time; any drift is a correctness bug).
//!
//! The `baseline`/`current` sections are each a single line so the
//! regeneration pass can carry the baseline forward without a JSON parser.

use rtcore::geometry::Point3;
use rtcore::hardware::WorkCounters;
use rtcore::index::{IndexKind, NeighborIndexBuilder};
use rtdbscan_datasets::{generate, PaperDataset};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const SCHEMA: &str = "rtdbscan-hotpath/v1";
const EPS: f32 = 0.4;
const SEED: u64 = 42;

/// One `(n, backend)` measurement cell.
struct Cell {
    n: usize,
    backend: &'static str,
    best_ns: u128,
    mean_ns: u128,
    counters: WorkCounters,
}

impl Cell {
    fn to_json(&self) -> String {
        let c = &self.counters;
        format!(
            "{{\"n\":{},\"backend\":\"{}\",\"best_ns\":{},\"mean_ns\":{},\
             \"rays\":{},\"dist_comps\":{},\"prim_tests\":{},\"node_visits\":{},\
             \"wide_node_visits\":{},\"batched_launches\":{}}}",
            self.n,
            self.backend,
            self.best_ns,
            self.mean_ns,
            c.rays,
            c.dist_comps,
            c.prim_tests,
            c.node_visits,
            c.wide_node_visits,
            c.batched_launches,
        )
    }
}

/// Time stage 1 (one batched neighbour-count launch over all points, self
/// excluded — exactly what the DBSCAN algorithms issue) on one backend:
/// one warm-up launch, then `reps` timed launches.
fn measure_stage1(kind: IndexKind, points: &[Point3], reps: usize) -> Cell {
    let index = NeighborIndexBuilder::new(kind)
        .build(points, EPS)
        .expect("generated points are finite");
    let counts: Vec<AtomicU64> = (0..points.len()).map(|_| AtomicU64::new(0)).collect();
    let run = |counters: &mut WorkCounters| {
        for c in &counts {
            c.store(0, Ordering::Relaxed);
        }
        index.batch_neighbor_counts(points, EPS, true, None, counters, &counts);
    };

    // Warm-up: first launch grows the per-worker scratch arenas.
    let mut counters = WorkCounters::ZERO;
    run(&mut counters);

    let mut best = u128::MAX;
    let mut total = 0u128;
    for _ in 0..reps {
        let mut rep_counters = WorkCounters::ZERO;
        let t = Instant::now();
        run(&mut rep_counters);
        let ns = t.elapsed().as_nanos();
        best = best.min(ns);
        total += ns;
        assert_eq!(
            rep_counters, counters,
            "stage-1 counters drifted between repetitions"
        );
    }
    Cell {
        n: points.len(),
        backend: kind.name(),
        best_ns: best,
        mean_ns: total / reps as u128,
        counters,
    }
}

fn results_line(cells: &[Cell]) -> String {
    let entries: Vec<String> = cells.iter().map(Cell::to_json).collect();
    format!("{{\"results\":[{}]}}", entries.join(","))
}

/// Pull the single-line `"baseline"` section out of an existing file.
fn existing_baseline(path: &std::path::Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    for line in text.lines() {
        if let Some(rest) = line.trim_start().strip_prefix("\"baseline\": ") {
            return Some(rest.trim_end_matches(',').to_string());
        }
    }
    None
}

/// Scan a results line for the `best_ns` of one `(n, backend)` cell.
fn scan_best_ns(section: &str, n: usize, backend: &str) -> Option<u128> {
    let key = format!("{{\"n\":{n},\"backend\":\"{backend}\"");
    let start = section.find(&key)?;
    let rest = &section[start..];
    let v = rest.split("\"best_ns\":").nth(1)?;
    let digits: String = v.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let record_baseline = args.iter().any(|a| a == "--record-baseline");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpath.json")
        });

    let (sizes, reps): (&[usize], usize) = if smoke {
        (&[2_000], 2)
    } else {
        (&[10_000, 50_000, 100_000], 5)
    };

    let mut cells = Vec::new();
    for &n in sizes {
        let points = generate(PaperDataset::PortoTaxi, n, SEED);
        for kind in [IndexKind::BinaryBvh, IndexKind::WideBatched] {
            let cell = measure_stage1(kind, &points, reps);
            println!(
                "n={n:>7}  {:<12}  best {:>12.3} ms  mean {:>12.3} ms  \
                 (rays={} dist_comps={} wide_visits={} launches={})",
                cell.backend,
                cell.best_ns as f64 / 1e6,
                cell.mean_ns as f64 / 1e6,
                cell.counters.rays,
                cell.counters.dist_comps,
                cell.counters.wide_node_visits,
                cell.counters.batched_launches,
            );
            cells.push(cell);
        }
    }

    if smoke {
        println!(
            "smoke run complete ({} cells), no file written",
            cells.len()
        );
        return;
    }

    let current = results_line(&cells);
    let baseline = if record_baseline {
        current.clone()
    } else if out_path.exists() {
        // Never silently replace a recorded baseline: if the file is there
        // but its baseline line cannot be recovered (hand edits,
        // reformatting), refuse and make the reset explicit.
        existing_baseline(&out_path).unwrap_or_else(|| {
            eprintln!(
                "error: {} exists but its \"baseline\" line could not be parsed; \
                 rerun with --record-baseline to reset the baseline deliberately",
                out_path.display()
            );
            std::process::exit(2);
        })
    } else {
        println!(
            "note: no existing {} — recording this run as the baseline",
            out_path.display()
        );
        current.clone()
    };
    let config = format!(
        "{{\"dataset\":\"porto-taxi\",\"seed\":{SEED},\"eps\":{EPS},\"reps\":{reps},\
         \"measures\":\"stage-1 batched neighbour count, index build excluded\"}}"
    );
    let doc = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"config\": {config},\n  \
         \"baseline\": {baseline},\n  \"current\": {current}\n}}\n"
    );
    std::fs::write(&out_path, doc).expect("write BENCH_hotpath.json");
    println!("wrote {}", out_path.display());

    for &n in sizes {
        for backend in ["binary-bvh", "wide-batched"] {
            if let (Some(b), Some(c)) = (
                scan_best_ns(&baseline, n, backend),
                scan_best_ns(&current, n, backend),
            ) {
                println!(
                    "n={n:>7}  {backend:<12}  baseline {:>10.3} ms → current {:>10.3} ms  ({:.2}x)",
                    b as f64 / 1e6,
                    c as f64 / 1e6,
                    b as f64 / c as f64
                );
            }
        }
    }
}

//! Side-by-side comparison of every DBSCAN implementation in the crate.
//!
//! ```text
//! cargo run --release -p rtdbscan --example compare_algorithms
//! ```
//!
//! Runs RT-DBSCAN, FDBSCAN (with and without early exit), G-DBSCAN,
//! CUDA-DClust+ and the sequential reference on the same ionosphere-like
//! dataset, checks that they all agree, and prints the work / memory /
//! simulated-time comparison — a miniature version of the paper's Figure 4.

use rtdbscan::metrics::{adjusted_rand_index, same_clustering};
use rtdbscan::{
    ClassicDbscan, CudaDclustPlus, DbscanAlgorithm, DbscanParams, Fdbscan, GDbscan, RtDbscan,
};
use rtdbscan_datasets::{generate, PaperDataset};

fn main() {
    let points = generate(PaperDataset::Ionosphere3d, 12_000, 42);
    let params = DbscanParams::new(0.5, 8).expect("valid parameters");
    println!(
        "3DIono-like dataset: {} points, eps={}, minPts={}",
        points.len(),
        params.eps,
        params.min_pts
    );
    println!();

    let algorithms: Vec<Box<dyn DbscanAlgorithm>> = vec![
        Box::new(RtDbscan::default()),
        Box::new(Fdbscan::default()),
        Box::new(Fdbscan::with_early_exit()),
        Box::new(GDbscan::default()),
        Box::new(CudaDclustPlus::default()),
        Box::new(ClassicDbscan),
    ];

    let reference = ClassicDbscan
        .run(&points, params)
        .expect("reference run")
        .clustering;
    let device = rtcore::hardware::DeviceModel::rtx2060();

    println!(
        "{:<22} {:>9} {:>9} {:>14} {:>14} {:>12} {:>8}",
        "algorithm", "clusters", "noise", "sim time (s)", "wall time (s)", "device MiB", "ARI"
    );
    for algo in &algorithms {
        match algo.run(&points, params) {
            Ok(run) => {
                assert!(
                    same_clustering(&reference, &run.clustering, &points, params),
                    "{} disagrees with the reference clustering",
                    algo.name()
                );
                println!(
                    "{:<22} {:>9} {:>9} {:>14.6} {:>14.3} {:>12.1} {:>8.3}",
                    algo.name(),
                    run.clustering.num_clusters(),
                    run.clustering.noise_count(),
                    run.simulate_on(&device).total().as_secs_f64(),
                    run.timings.total().as_secs_f64(),
                    run.device_bytes as f64 / (1024.0 * 1024.0),
                    adjusted_rand_index(&reference, &run.clustering)
                );
            }
            Err(err) => {
                println!("{:<22} failed: {err}", algo.name());
            }
        }
    }
    println!();
    println!("all implementations produced equivalent clusterings (core points identical,");
    println!("border assignments valid); simulated times are for the modelled RTX 2060.");
}

//! Offline stand-in for the parts of `proptest` this workspace uses: the
//! `proptest!` macro over numeric range strategies, `ProptestConfig`, and
//! the `prop_assert*` macros.
//!
//! Cases are generated from a deterministic splitmix64 stream seeded by the
//! test name, so failures reproduce exactly across runs.  There is no
//! shrinking: a failing case reports the generated arguments instead, which
//! the deterministic seeding makes easy to replay.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Everything a test file needs: `use proptest::prelude::*;`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// Configuration accepted via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from the test's name.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator: the subset of proptest's `Strategy` the workspace
/// needs (sampling only, no shrink trees).
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.next_unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// Property-test entry point; mirrors proptest's surface syntax.
///
/// Each property function body is wrapped in a closure returning
/// `Result<(), String>`, which is what the `prop_assert*` macros early-return
/// into.  All argument values are regenerated per case from a deterministic
/// per-test stream.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = result {
                        panic!(
                            "property `{}` failed on case {}/{}: {}\n  args: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            message,
                            [$( format!("{} = {:?}", stringify!($arg), $arg) ),+].join(", "),
                        );
                    }
                }
            }
        )+
    };
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)*),
                l,
                r
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}` ({})\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)*),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_values_respect_ranges(
            n in 1usize..50,
            x in -1.5f32..2.5,
            seed in 0u64..1000,
        ) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((-1.5..2.5).contains(&x), "x out of range: {x}");
            prop_assert!(seed < 1000);
        }

        #[test]
        fn eq_macros_pass_on_equal_values(a in 0u32..10) {
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a + 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("same-name");
        let mut b = TestRng::deterministic("same-name");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other-name");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_case_report() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unreachable_code)]
            fn always_fails(v in 0u32..10) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}

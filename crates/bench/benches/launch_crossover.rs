//! Sweep of `PipelineConfig::min_parallel_launch` through `RtDbscan`: where
//! does the parallel ray launch start to beat the sequential one?
//!
//! Below the threshold a launch runs on one thread (no fork/join overhead);
//! above it, rays fan out across the rayon pool.  The crossover informs the
//! default (256) and gives deployments a measured knob for small-scene
//! workloads such as per-tenant streaming windows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtdbscan::{DbscanAlgorithm, DbscanParams, RtDbscan};
use rtdbscan_datasets::{generate, PaperDataset};
use std::hint::black_box;
use std::time::Duration;

fn bench_launch_crossover(c: &mut Criterion) {
    // Scene sizes straddling plausible crossover points.
    for &n in &[128usize, 512, 4_096, 20_000] {
        let points = generate(PaperDataset::RoadNetwork, n, 42);
        let params = DbscanParams::new(0.05, 10).unwrap();
        let mut group = c.benchmark_group(format!("launch_crossover_n{n}"));
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(200));
        group.measurement_time(Duration::from_secs(2));
        group.throughput(Throughput::Elements(n as u64));
        // usize::MAX = always sequential, 0 = always parallel.
        for &threshold in &[usize::MAX, 4_096, 1_024, 256, 0] {
            let label = if threshold == usize::MAX {
                "sequential".to_string()
            } else {
                format!("min_par_{threshold}")
            };
            let algo = RtDbscan {
                min_parallel_launch: threshold,
                ..RtDbscan::default()
            };
            group.bench_with_input(BenchmarkId::from_parameter(label), &points, |b, pts| {
                b.iter(|| black_box(algo.run(pts, params).unwrap().clustering.num_clusters()))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_launch_crossover);
criterion_main!(benches);

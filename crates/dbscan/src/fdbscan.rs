//! FDBSCAN baseline (Prokopenko et al., "Fast tree-based algorithms for
//! DBSCAN on GPUs" — the ArborX implementation the paper compares against).
//!
//! FDBSCAN builds a bounding-volume hierarchy over the points and runs two
//! parallel stages: (1) a fixed-radius traversal per point to count
//! neighbours and mark core points, and (2) a second traversal per core
//! point that merges clusters through a parallel Union-Find, claiming border
//! points atomically.  It stores no neighbour lists, which is what gives it
//! its minimal memory footprint.
//!
//! Since the `NeighborIndex` redesign the two stages are the shared
//! machinery in `stages` — identical to RT-DBSCAN's — and only the substrate
//! and execution path differ:
//!
//! * all traversal runs on the shader cores
//!   ([`ExecutionPath::ShaderCore`]) — there is no RT-core acceleration;
//! * the native backend is a *binary* BVH built by the GPU-style LBVH
//!   (Morton order), not the wide batched scene the RT driver collapses to,
//!   and no primitive compaction is applied;
//! * optionally, stage 1 terminates a traversal early once `minPts`
//!   neighbours have been seen (the `early_exit` switch studied in
//!   Section VI-B / Fig 9).

use crate::labels::Clustering;
use crate::params::DbscanParams;
use crate::runner::{timed, DbscanAlgorithm, PhaseCounters, PhaseTimings, RunResult};
use crate::stages;
use rtcore::bvh::BuilderKind;
use rtcore::geometry::Point3;
use rtcore::hardware::ExecutionPath;
use rtcore::index::{IndexKind, NeighborIndex, NeighborIndexBuilder};
use rtcore::Result;

/// Configuration of the FDBSCAN baseline.
#[derive(Debug, Clone, Copy)]
pub struct Fdbscan {
    /// Terminate the stage-1 traversal as soon as `minPts` neighbours have
    /// been found.  The paper's headline comparisons run with this *off*
    /// (Section V-B explains why); Fig 9 studies the effect of turning it on.
    pub early_exit: bool,
    /// Maximum primitives per BVH leaf.
    pub max_leaf_size: usize,
}

impl Default for Fdbscan {
    fn default() -> Self {
        Fdbscan {
            early_exit: false,
            max_leaf_size: 4,
        }
    }
}

impl Fdbscan {
    /// FDBSCAN with the early-exit optimisation enabled
    /// ("FDBSCAN-EarlyExit" in Fig 9).
    pub fn with_early_exit() -> Self {
        Fdbscan {
            early_exit: true,
            ..Fdbscan::default()
        }
    }

    /// The neighbour-index configuration this baseline builds by default: a
    /// binary BVH from the GPU-style LBVH builder, no compaction.
    pub fn index_builder(&self) -> NeighborIndexBuilder {
        NeighborIndexBuilder {
            bvh_builder: BuilderKind::Lbvh,
            max_leaf_size: self.max_leaf_size,
            ..NeighborIndexBuilder::new(IndexKind::BinaryBvh)
        }
    }

    /// Run both stages over an already-built neighbour index (build phase
    /// reported with the index's counters and zero wall-clock time — the
    /// caller owns the build timing).
    pub fn run_on(
        &self,
        index: &dyn NeighborIndex,
        points: &[Point3],
        params: DbscanParams,
    ) -> Result<RunResult> {
        params.validate()?;
        let n = points.len();
        if n == 0 {
            return Ok(empty_result());
        }

        // ------------------------------------------------------------------
        // Stage 1: core-point identification (optionally early-exiting).
        // ------------------------------------------------------------------
        let early = self.early_exit.then_some(params.min_pts);
        let ((counts, stage1_counters), stage1_time) =
            timed(|| stages::count_all_neighbors(index, points, params.eps, early));
        let core: Vec<bool> = counts
            .iter()
            .map(|&c| c as usize >= params.min_pts)
            .collect();

        // ------------------------------------------------------------------
        // Stage 2: cluster formation with a parallel Union-Find.
        // ------------------------------------------------------------------
        let ((labels, stage2_counters), stage2_time) =
            timed(|| stages::form_clusters(index, points, &core, params.eps));

        let device_bytes = index.device_bytes()
            + std::mem::size_of_val(points) as u64
            + (n * std::mem::size_of::<usize>()) as u64 // union-find parents
            + 2 * n as u64; // core + claimed flags

        Ok(RunResult {
            clustering: Clustering::new(labels, core),
            timings: PhaseTimings {
                build: std::time::Duration::ZERO,
                core_identification: stage1_time,
                cluster_formation: stage2_time,
            },
            counters: PhaseCounters {
                build: index.build_counters(),
                core_identification: stage1_counters,
                cluster_formation: stage2_counters,
            },
            path: ExecutionPath::ShaderCore,
            device_bytes,
        })
    }
}

impl DbscanAlgorithm for Fdbscan {
    fn name(&self) -> &'static str {
        if self.early_exit {
            "FDBSCAN-EarlyExit"
        } else {
            "FDBSCAN"
        }
    }

    fn run(&self, points: &[Point3], params: DbscanParams) -> Result<RunResult> {
        params.validate()?;
        let (index, build_time) = timed(|| self.index_builder().build(points, params.eps));
        let mut result = self.run_on(index?.as_ref(), points, params)?;
        result.timings.build += build_time;
        Ok(result)
    }
}

fn empty_result() -> RunResult {
    RunResult {
        clustering: Clustering::new(vec![], vec![]),
        timings: PhaseTimings::default(),
        counters: PhaseCounters::default(),
        path: ExecutionPath::ShaderCore,
        device_bytes: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::ClassicDbscan;
    use crate::labels::NOISE;
    use crate::metrics::same_clustering;

    fn blobs(n_per: usize) -> Vec<Point3> {
        let mut pts = Vec::new();
        for c in 0..3 {
            let cx = c as f32 * 20.0;
            for i in 0..n_per {
                let a = i as f32 * 0.17;
                let r = 0.8 * ((i % 13) as f32 / 13.0);
                pts.push(Point3::new_2d(cx + r * a.cos(), r * a.sin()));
            }
        }
        pts.push(Point3::new_2d(10.0, 10.0));
        pts.push(Point3::new_2d(-10.0, 10.0));
        pts
    }

    #[test]
    fn matches_classic_dbscan() {
        let pts = blobs(60);
        let params = DbscanParams::new(0.5, 5).unwrap();
        let reference = ClassicDbscan::cluster(&pts, params).unwrap();
        let fd = Fdbscan::default().run(&pts, params).unwrap().clustering;
        assert!(same_clustering(&reference, &fd, &pts, params));
        assert_eq!(reference.num_clusters(), fd.num_clusters());
        assert_eq!(reference.core, fd.core);
    }

    #[test]
    fn early_exit_preserves_the_clustering() {
        let pts = blobs(80);
        let params = DbscanParams::new(0.6, 4).unwrap();
        let plain = Fdbscan::default().run(&pts, params).unwrap();
        let early = Fdbscan::with_early_exit().run(&pts, params).unwrap();
        assert!(same_clustering(
            &plain.clustering,
            &early.clustering,
            &pts,
            params
        ));
        // Early exit must not do *more* stage-1 work.
        assert!(
            early.counters.core_identification.prim_tests
                <= plain.counters.core_identification.prim_tests
        );
    }

    #[test]
    fn early_exit_reduces_work_on_dense_data() {
        // Dense blob where every neighbourhood is far larger than minPts.
        let pts: Vec<Point3> = (0..500)
            .map(|i| Point3::new_2d((i % 25) as f32 * 0.05, (i / 25) as f32 * 0.05))
            .collect();
        let params = DbscanParams::new(2.0, 5).unwrap();
        let plain = Fdbscan::default().run(&pts, params).unwrap();
        let early = Fdbscan::with_early_exit().run(&pts, params).unwrap();
        assert!(
            (early.counters.core_identification.prim_tests as f64)
                < 0.5 * plain.counters.core_identification.prim_tests as f64,
            "early {} vs plain {}",
            early.counters.core_identification.prim_tests,
            plain.counters.core_identification.prim_tests
        );
    }

    #[test]
    fn all_noise_when_min_pts_unreachable() {
        let pts = blobs(20);
        let params = DbscanParams::new(0.5, 500).unwrap();
        let r = Fdbscan::default().run(&pts, params).unwrap();
        assert_eq!(r.clustering.num_clusters(), 0);
        assert_eq!(r.clustering.noise_count(), pts.len());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let params = DbscanParams::new(1.0, 2).unwrap();
        let empty = Fdbscan::default().run(&[], params).unwrap();
        assert!(empty.clustering.is_empty());
        let single = Fdbscan::default().run(&[Point3::ORIGIN], params).unwrap();
        assert_eq!(single.clustering.labels, vec![NOISE]);
    }

    #[test]
    fn reports_shader_core_path_and_phase_counters() {
        let pts = blobs(40);
        let params = DbscanParams::new(0.5, 5).unwrap();
        let r = Fdbscan::default().run(&pts, params).unwrap();
        assert_eq!(r.path, ExecutionPath::ShaderCore);
        assert!(r.counters.build.build_prims as usize == pts.len());
        assert!(r.counters.core_identification.rays as usize == pts.len());
        assert!(r.counters.cluster_formation.rays as usize <= pts.len());
        assert!(r.counters.cluster_formation.union_ops > 0);
        assert!(r.device_bytes > 0);
        assert_eq!(r.clustering.len(), pts.len());
    }

    #[test]
    fn names_distinguish_early_exit() {
        assert_eq!(Fdbscan::default().name(), "FDBSCAN");
        assert_eq!(Fdbscan::with_early_exit().name(), "FDBSCAN-EarlyExit");
    }
}

//! Error type shared by the rtcore crate.

use crate::hardware::WorkCounters;
use std::fmt;

/// Errors produced while building scenes or launching pipelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The scene contained no primitives; a BVH cannot be built.
    EmptyScene,
    /// A primitive had a non-finite coordinate or radius.
    InvalidPrimitive {
        /// Index of the offending primitive in the build input.
        index: usize,
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// The simulated device ran out of memory.
    ///
    /// Mirrors the 6 GB limit of the RTX 2060 used in the paper: G-DBSCAN and
    /// CUDA-DClust+ hit this above ~100 K points.
    OutOfDeviceMemory {
        /// Bytes the allocation would have required.
        requested: u64,
        /// Bytes still available on the simulated device.
        available: u64,
    },
    /// A launch was attempted against a pipeline with no geometry attached.
    MissingGeometry,
    /// A configuration value was out of range (for example a zero radius).
    InvalidConfig(String),
    /// A cancellable launch tripped its deadline or cancel token.
    ///
    /// Partial neighbour output is discarded by the driver — the launch
    /// never surfaces a wrong answer — but `partial` reports the work that
    /// was performed before the trip so callers can budget retries.
    DeadlineExceeded {
        /// Counters for the work completed before cancellation (boxed so
        /// the error enum stays small on the happy path).
        partial: Box<WorkCounters>,
    },
    /// An operation would exceed the configured [`crate::fault::MemoryBudget`]
    /// even after every graceful-degradation step (dropping the quantized
    /// bake, evicting cold shard scenes) was applied.
    OverBudget {
        /// Bytes the structure would occupy after the operation.
        requested: u64,
        /// The configured budget in bytes.
        budget: u64,
    },
    /// A deterministic failpoint fired (only reachable with the
    /// `fault-inject` feature and a seeded [`crate::fault::FaultPlan`]).
    FaultInjected {
        /// Stable name of the [`crate::fault::FaultSite`] that fired.
        site: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyScene => write!(f, "cannot build a BVH over an empty scene"),
            Error::InvalidPrimitive { index, reason } => {
                write!(f, "invalid primitive at index {index}: {reason}")
            }
            Error::OutOfDeviceMemory {
                requested,
                available,
            } => write!(
                f,
                "simulated device out of memory: requested {requested} bytes, {available} available"
            ),
            Error::MissingGeometry => write!(f, "pipeline launched without geometry"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::DeadlineExceeded { partial } => write!(
                f,
                "launch cancelled by deadline or token after {} distance computations \
                 ({} wide-node visits); partial results were discarded",
                partial.dist_comps, partial.wide_node_visits
            ),
            Error::OverBudget { requested, budget } => write!(
                f,
                "memory budget exceeded: structure needs {requested} bytes, budget is {budget}"
            ),
            Error::FaultInjected { site } => {
                write!(f, "injected fault fired at site `{site}`")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_empty_scene() {
        assert_eq!(
            Error::EmptyScene.to_string(),
            "cannot build a BVH over an empty scene"
        );
    }

    #[test]
    fn display_oom_mentions_sizes() {
        let e = Error::OutOfDeviceMemory {
            requested: 100,
            available: 7,
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains('7'));
    }

    #[test]
    fn display_invalid_primitive() {
        let e = Error::InvalidPrimitive {
            index: 3,
            reason: "NaN coordinate".into(),
        };
        assert!(e.to_string().contains("index 3"));
        assert!(e.to_string().contains("NaN"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::EmptyScene, Error::EmptyScene);
        assert_ne!(Error::EmptyScene, Error::MissingGeometry);
    }

    #[test]
    fn display_deadline_reports_partial_work() {
        let mut partial = WorkCounters::ZERO;
        partial.dist_comps = 42;
        partial.wide_node_visits = 7;
        let s = Error::DeadlineExceeded {
            partial: Box::new(partial),
        }
        .to_string();
        assert!(s.contains("42"));
        assert!(s.contains('7'));
        assert!(s.contains("discarded"));
    }

    #[test]
    fn display_over_budget_mentions_sizes() {
        let s = Error::OverBudget {
            requested: 4096,
            budget: 1024,
        }
        .to_string();
        assert!(s.contains("4096"));
        assert!(s.contains("1024"));
    }

    #[test]
    fn display_fault_injected_names_site() {
        let s = Error::FaultInjected {
            site: "hlbvh_build",
        }
        .to_string();
        assert!(s.contains("hlbvh_build"));
    }
}

//! Brute-force neighbour index: the exact O(n)-per-query oracle.
//!
//! This is the backend every spatial structure is verified against, and the
//! substrate the G-DBSCAN baseline's all-pairs graph construction uses.  One
//! `dist_comps` is charged per candidate actually compared (the excluded
//! query point is skipped *before* the comparison, matching the original
//! G-DBSCAN accounting of exactly `n·(n−1)` distance computations).

use super::{
    IndexCapabilities, IndexKind, Neighbor, NeighborFlow, NeighborIndex, NeighborIndexBuilder,
    NeighborSink, NeighborVisitor,
};
use crate::error::Result;
use crate::geometry::Point3;
use crate::hardware::sat_bump;
use crate::hardware::WorkCounters;
use parking_lot::Mutex;

/// Exact linear-scan backend.
#[derive(Debug)]
pub struct BruteForceIndex {
    points: Vec<Point3>,
    alive: Vec<bool>,
    live: usize,
    eps: f32,
    min_parallel_launch: usize,
    build_counters: WorkCounters,
    query_counters: Mutex<WorkCounters>,
}

impl BruteForceIndex {
    /// Build from a [`NeighborIndexBuilder`] configuration (the builder's
    /// `kind` field is ignored — this constructor is always brute force).
    pub fn build(config: &NeighborIndexBuilder, points: &[Point3], eps: f32) -> Result<Self> {
        Ok(BruteForceIndex {
            points: points.to_vec(),
            alive: vec![true; points.len()],
            live: points.len(),
            eps,
            min_parallel_launch: config.min_parallel_launch,
            build_counters: WorkCounters {
                build_prims: points.len() as u64,
                ..WorkCounters::ZERO
            },
            query_counters: Mutex::new(WorkCounters::ZERO),
        })
    }

    fn scan(
        &self,
        query: Point3,
        eps: f32,
        exclude: Option<u32>,
        counters: &mut WorkCounters,
        mut emit: impl FnMut(Neighbor, &mut WorkCounters) -> NeighborFlow,
    ) {
        let eps_sq = eps * eps;
        for (j, &p) in self.points.iter().enumerate() {
            if Some(j as u32) == exclude || !self.alive[j] {
                continue;
            }
            sat_bump(&mut counters.dist_comps, 1);
            if p.distance_squared(query) <= eps_sq {
                let n = Neighbor {
                    index: j as u32,
                    multiplicity: 1,
                };
                if emit(n, counters) == NeighborFlow::Stop {
                    return;
                }
            }
        }
    }
}

impl NeighborIndex for BruteForceIndex {
    fn len(&self) -> usize {
        self.live
    }

    fn eps(&self) -> f32 {
        self.eps
    }

    fn capabilities(&self) -> IndexCapabilities {
        IndexCapabilities {
            kind: IndexKind::BruteForce,
            batched: false,
            compacting: false,
            refittable: true,
            rt_core: false,
        }
    }

    fn build_counters(&self) -> WorkCounters {
        self.build_counters
    }

    fn counters(&self) -> WorkCounters {
        self.build_counters + *self.query_counters.lock()
    }

    fn device_bytes(&self) -> u64 {
        std::mem::size_of_val(self.points.as_slice()) as u64
    }

    fn for_each_neighbor(
        &self,
        query: Point3,
        eps: f32,
        exclude: Option<u32>,
        counters: &mut WorkCounters,
        visit: &mut NeighborVisitor<'_>,
    ) {
        let mut local = WorkCounters::ZERO;
        self.scan(query, eps, exclude, &mut local, |n, c| visit(n, c));
        *self.query_counters.lock() += local;
        *counters += local;
    }

    fn batch_neighbors(
        &self,
        queries: &[Point3],
        eps: f32,
        counters: &mut WorkCounters,
        sink: &NeighborSink<'_>,
    ) {
        let total = super::dispatch_batch(
            queries.len(),
            queries.len() >= self.min_parallel_launch,
            |ordinal| {
                let mut local = WorkCounters::ZERO;
                self.scan(queries[ordinal], eps, None, &mut local, |n, c| {
                    sink(ordinal, n, c)
                });
                local
            },
        );
        *self.query_counters.lock() += total;
        *counters += total;
    }

    fn remove(&mut self, retired: &[u32]) -> Result<WorkCounters> {
        let mut counters = WorkCounters::ZERO;
        for &r in retired {
            if let Some(alive) = self.alive.get_mut(r as usize) {
                if *alive {
                    *alive = false;
                    self.live -= 1;
                    sat_bump(&mut counters.misc_ops, 1);
                }
            }
        }
        self.build_counters += counters;
        Ok(counters)
    }

    fn update(&mut self, moved: &[(u32, Point3)]) -> Result<WorkCounters> {
        let mut counters = WorkCounters::ZERO;
        for &(i, p) in moved {
            if let Some(slot) = self.points.get_mut(i as usize) {
                *slot = p;
                sat_bump(&mut counters.misc_ops, 1);
            }
        }
        self.build_counters += counters;
        Ok(counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_counts_exactly_n_minus_one_comparisons_per_query() {
        let pts: Vec<Point3> = (0..10).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
        let index =
            BruteForceIndex::build(&NeighborIndexBuilder::new(IndexKind::BruteForce), &pts, 1.5)
                .unwrap();
        let mut c = WorkCounters::ZERO;
        let got = index.neighbors_of(pts[5], 1.5, Some(5), &mut c);
        assert_eq!(got, vec![4, 6]);
        assert_eq!(c.dist_comps, 9);
        assert_eq!(c.rays, 0, "a linear scan launches no rays");
    }

    #[test]
    fn tombstoned_points_disappear_from_answers() {
        let pts: Vec<Point3> = (0..5)
            .map(|i| Point3::new(i as f32 * 0.5, 0.0, 0.0))
            .collect();
        let mut index =
            BruteForceIndex::build(&NeighborIndexBuilder::new(IndexKind::BruteForce), &pts, 0.6)
                .unwrap();
        index.remove(&[1]).unwrap();
        let mut c = WorkCounters::ZERO;
        assert!(index.neighbors_of(pts[0], 0.6, Some(0), &mut c).is_empty());
        assert_eq!(index.len(), 4);
    }
}

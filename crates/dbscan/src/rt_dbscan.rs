//! RT-DBSCAN — the paper's contribution.
//!
//! RT-DBSCAN re-expresses DBSCAN's fixed-radius neighbour searches as ray
//! tracing queries so that the BVH build and traversal can run on RT cores:
//!
//! 1. **Input transformation** (Section III-B): every data point becomes a
//!    solid sphere of radius ε.  The device builder also performs primitive
//!    compaction, merging exactly coincident centres into one sphere with a
//!    multiplicity count (see `rtcore::bvh::compact`).
//! 2. **Stage 1 — core-point identification** (Algorithm 3, lines 1–6): one
//!    infinitesimal ray is launched per point; the Intersection program
//!    counts how many spheres contain the ray origin.  Points with at least
//!    `minPts` neighbours are core points.
//! 3. **Stage 2 — cluster formation** (Algorithm 3, lines 7–18): one ray per
//!    core point; the Intersection program merges core neighbours through a
//!    parallel Union-Find and atomically claims border points (the paper's
//!    critical section).  Neighbour lists are never materialised — the
//!    distance work is simply recomputed, which is what keeps the memory
//!    footprint minimal.
//!
//! Both stages are implemented *inside the Intersection program* of the
//! OptiX-style pipeline, with AnyHit and ClosestHit disabled, exactly as
//! Section IV describes.  All traversal work is charged to the RT-core
//! execution path of the device model.

use crate::disjoint_set::ConcurrentDisjointSet;
use crate::labels::{Clustering, NOISE};
use crate::params::DbscanParams;
use crate::runner::{timed, DbscanAlgorithm, PhaseCounters, PhaseTimings, RunResult};
use rtcore::bvh::{
    compact_coincident, spheres_from_points, BuilderKind, Bvh, BvhBuilder, LbvhBuilder,
    MedianSplitBuilder, SahBuilder,
};
use rtcore::geometry::{Point3, Ray, Sphere};
use rtcore::hardware::{ExecutionPath, WorkCounters};
use rtcore::pipeline::{
    GeometryKind, Pipeline, PipelineConfig, ProgramFlow, RayProgram, TraversalEngine,
};
use rtcore::Result;
use std::sync::atomic::{AtomicBool, Ordering};

/// Configuration of RT-DBSCAN.
#[derive(Debug, Clone, Copy)]
pub struct RtDbscan {
    /// Merge exactly coincident points into one primitive at build time.
    /// This is part of the (simulated) device builder; disabling it is an
    /// ablation knob, not something the OptiX user controls.
    pub compaction: bool,
    /// Which builder the device uses for its acceleration structure.
    pub builder: BuilderKind,
    /// How the ε-spheres are presented to the hardware.
    /// [`GeometryKind::TriangleSpheres`] reproduces the Section VI-C
    /// ablation (2–5× slower because of AnyHit overhead).
    pub geometry: GeometryKind,
    /// Launches smaller than this run sequentially instead of through the
    /// parallel launch (forwarded to
    /// [`PipelineConfig::min_parallel_launch`]).  The default mirrors the
    /// pipeline's; benches sweep it to locate the sequential-vs-parallel
    /// crossover.
    pub min_parallel_launch: usize,
    /// Which traversal substrate both stages launch on.  Defaults to the
    /// wide (BVH4) batched engine — the layout real RT cores walk; the
    /// binary engine remains selectable as the oracle
    /// ([`RtDbscan::with_binary_traversal`]).
    pub traversal: TraversalEngine,
}

impl Default for RtDbscan {
    fn default() -> Self {
        RtDbscan {
            compaction: true,
            builder: BuilderKind::BinnedSah,
            geometry: GeometryKind::CustomSpheres,
            min_parallel_launch: PipelineConfig::default().min_parallel_launch,
            traversal: TraversalEngine::WideBatched,
        }
    }
}

impl RtDbscan {
    /// The triangle-tessellation ablation of Section VI-C: spheres are
    /// approximated with `triangles_per_sphere` triangles so the hardware
    /// triangle unit can be used, at the price of one AnyHit call per hit.
    pub fn with_triangle_geometry(triangles_per_sphere: u32) -> Self {
        RtDbscan {
            geometry: GeometryKind::TriangleSpheres {
                triangles_per_sphere,
            },
            ..RtDbscan::default()
        }
    }

    /// RT-DBSCAN without the device-side primitive compaction (ablation).
    pub fn without_compaction() -> Self {
        RtDbscan {
            compaction: false,
            ..RtDbscan::default()
        }
    }

    /// Override the launch-width threshold below which ray launches run
    /// sequentially (see [`PipelineConfig::min_parallel_launch`]).
    pub fn with_min_parallel_launch(min_parallel_launch: usize) -> Self {
        RtDbscan {
            min_parallel_launch,
            ..RtDbscan::default()
        }
    }

    /// RT-DBSCAN on the one-ray-at-a-time binary traversal — the oracle the
    /// wide batched default is verified against.
    pub fn with_binary_traversal() -> Self {
        RtDbscan {
            traversal: TraversalEngine::Binary,
            ..RtDbscan::default()
        }
    }

    /// The pipeline configuration this algorithm launches with.
    fn pipeline_config(&self) -> PipelineConfig {
        PipelineConfig {
            geometry: self.geometry,
            min_parallel_launch: self.min_parallel_launch,
            traversal: self.traversal,
            ..PipelineConfig::default()
        }
    }

    fn build_scene(&self, points: &[Point3], eps: f32) -> Result<(Bvh, Vec<u32>, WorkCounters)> {
        let mut extra = WorkCounters::ZERO;
        let (spheres, representative_of) = if self.compaction {
            let compaction = compact_coincident(points, eps);
            extra.compaction_merges += compaction.merged;
            // The bounds program still runs once per *input* primitive before
            // the device merges duplicates, so charge the merged ones too.
            extra.build_prims += compaction.merged;
            (compaction.spheres, compaction.representative_of)
        } else {
            (
                spheres_from_points(points, eps),
                (0..points.len() as u32).collect(),
            )
        };
        let bvh = match self.builder {
            BuilderKind::BinnedSah => SahBuilder::default().build(spheres)?,
            BuilderKind::Lbvh => LbvhBuilder::default().build(spheres)?,
            BuilderKind::MedianSplit => MedianSplitBuilder::default().build(spheres)?,
        };
        Ok((bvh, representative_of, extra))
    }
}

// ---------------------------------------------------------------------------
// Stage 1: neighbour counting inside the Intersection program.
// ---------------------------------------------------------------------------

struct CorePointProgram<'a> {
    points: &'a [Point3],
    representative_of: &'a [u32],
    eps_sq: f32,
}

impl RayProgram for CorePointProgram<'_> {
    type Payload = u64;

    fn ray_gen(&self, launch_index: usize) -> (Ray, u64) {
        (Ray::epsilon_ray(self.points[launch_index]), 0)
    }

    fn intersection(
        &self,
        launch_index: usize,
        sphere: &Sphere,
        ray: &Ray,
        payload: &mut u64,
        counters: &mut WorkCounters,
    ) -> ProgramFlow {
        counters.dist_comps += 1;
        if sphere.center.distance_squared(ray.origin) <= self.eps_sq {
            if sphere.point_index == self.representative_of[launch_index] {
                // The sphere at our own location: its multiplicity includes
                // this very point, so only the other coincident points count.
                *payload += (sphere.multiplicity - 1) as u64;
            } else {
                *payload += sphere.multiplicity as u64;
            }
        }
        ProgramFlow::Continue
    }
}

// ---------------------------------------------------------------------------
// Stage 2: union-find updates inside the Intersection program.
// ---------------------------------------------------------------------------

struct ClusterFormationProgram<'a> {
    points: &'a [Point3],
    core_indices: &'a [u32],
    core: &'a [bool],
    claimed: &'a [AtomicBool],
    dsu: &'a ConcurrentDisjointSet,
    eps_sq: f32,
}

impl RayProgram for ClusterFormationProgram<'_> {
    type Payload = ();

    fn ray_gen(&self, launch_index: usize) -> (Ray, ()) {
        let p = self.core_indices[launch_index] as usize;
        (Ray::epsilon_ray(self.points[p]), ())
    }

    fn intersection(
        &self,
        launch_index: usize,
        sphere: &Sphere,
        ray: &Ray,
        _payload: &mut (),
        counters: &mut WorkCounters,
    ) -> ProgramFlow {
        counters.dist_comps += 1;
        let p = self.core_indices[launch_index] as usize;
        let q = sphere.point_index as usize;
        if q != p && sphere.center.distance_squared(ray.origin) <= self.eps_sq {
            if self.core[q] {
                self.dsu.union(p, q);
            } else if self.claimed[q]
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // Critical section of Algorithm 3 (line 14): a border point
                // may be reachable from several clusters but must join only
                // one, otherwise two clusters would be merged incorrectly.
                self.dsu.union(p, q);
            }
        }
        ProgramFlow::Continue
    }
}

impl DbscanAlgorithm for RtDbscan {
    fn name(&self) -> &'static str {
        match self.geometry {
            GeometryKind::CustomSpheres => {
                if self.compaction {
                    "RT-DBSCAN"
                } else {
                    "RT-DBSCAN (no compaction)"
                }
            }
            GeometryKind::TriangleSpheres { .. } => "RT-DBSCAN (triangles)",
        }
    }

    fn run(&self, points: &[Point3], params: DbscanParams) -> Result<RunResult> {
        params.validate()?;
        let n = points.len();
        if n == 0 {
            return Ok(RunResult {
                clustering: Clustering::new(vec![], vec![]),
                timings: PhaseTimings::default(),
                counters: PhaseCounters::default(),
                path: ExecutionPath::RtCore,
                device_bytes: 0,
            });
        }

        // ------------------------------------------------------------------
        // Build: input transformation + device acceleration structure.
        // ------------------------------------------------------------------
        let (scene, build_time) = timed(|| self.build_scene(points, params.eps));
        let (bvh, representative_of, extra_build) = scene?;

        // Pipeline creation collapses the scene into the wide format when
        // the batched engine is selected; that is device-build work, so its
        // time and node emissions are charged to the build phase.
        let (pipeline, collapse_time) =
            timed(|| Pipeline::with_config(&bvh, self.pipeline_config()));
        let build_time = build_time + collapse_time;
        let build_counters = bvh.build_counters
            + extra_build
            + pipeline
                .wide_scene()
                .map(|w| w.collapse_counters)
                .unwrap_or(WorkCounters::ZERO);
        let eps_sq = params.eps_sq();

        // ------------------------------------------------------------------
        // Stage 1: one ray per point, count neighbours, mark core points.
        // ------------------------------------------------------------------
        let (stage1, stage1_time) = timed(|| {
            pipeline.launch(
                n,
                &CorePointProgram {
                    points,
                    representative_of: &representative_of,
                    eps_sq,
                },
            )
        });
        let core: Vec<bool> = stage1
            .payloads
            .iter()
            .map(|&count| count as usize >= params.min_pts)
            .collect();
        let stage1_counters = stage1.counters;

        // ------------------------------------------------------------------
        // Stage 2: one ray per core point, union-find cluster formation.
        // ------------------------------------------------------------------
        let core_indices: Vec<u32> = (0..n as u32).filter(|&i| core[i as usize]).collect();
        let dsu = ConcurrentDisjointSet::new(n);
        let claimed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let (stage2, stage2_time) = timed(|| {
            pipeline.launch(
                core_indices.len(),
                &ClusterFormationProgram {
                    points,
                    core_indices: &core_indices,
                    core: &core,
                    claimed: &claimed,
                    dsu: &dsu,
                    eps_sq,
                },
            )
        });
        let mut stage2_counters = stage2.counters;
        let (find_ops, union_ops) = dsu.op_counts();
        stage2_counters.find_ops += find_ops;
        stage2_counters.union_ops += union_ops;

        // ------------------------------------------------------------------
        // Materialise labels.  Coincident duplicates that were merged away at
        // build time inherit the assignment of their representative (they
        // have identical neighbourhoods, so this is always a valid DBSCAN
        // assignment).
        // ------------------------------------------------------------------
        let mut labels: Vec<i64> = (0..n)
            .map(|i| {
                if core[i] || claimed[i].load(Ordering::Relaxed) {
                    dsu.find(i) as i64
                } else {
                    NOISE
                }
            })
            .collect();
        let mut dup_fixups = 0u64;
        for i in 0..n {
            let rep = representative_of[i] as usize;
            if rep != i && labels[i] == NOISE && labels[rep] >= 0 {
                labels[i] = labels[rep];
                dup_fixups += 1;
            }
        }
        stage2_counters.misc_ops += dup_fixups;

        let device_bytes = bvh.device_bytes()
            + pipeline.wide_scene().map_or(0, |w| w.device_bytes())
            + std::mem::size_of_val(points) as u64
            + (n * std::mem::size_of::<usize>()) as u64 // union-find parents
            + 2 * n as u64; // core + claimed flags

        Ok(RunResult {
            clustering: Clustering::new(labels, core),
            timings: PhaseTimings {
                build: build_time,
                core_identification: stage1_time,
                cluster_formation: stage2_time,
            },
            counters: PhaseCounters {
                build: build_counters,
                core_identification: stage1_counters,
                cluster_formation: stage2_counters,
            },
            path: ExecutionPath::RtCore,
            device_bytes,
        })
    }
}

/// A reusable RT-DBSCAN session for parameter exploration (Section VI-B).
///
/// The paper argues that the realistic DBSCAN workflow is to run the
/// clustering many times while exploring parameters, and that recording the
/// full neighbour count of every point (instead of early-exiting the
/// traversal) lets every later run with a different `minPts` skip the
/// core-point identification stage entirely.  `RtDbscanSession` implements
/// exactly that workflow:
///
/// * [`RtDbscanSession::new`] builds the acceleration structure and runs
///   stage 1 once, recording the neighbour count of every point;
/// * [`RtDbscanSession::cluster`] produces a full clustering for any
///   `minPts` value, paying only for the stage-2 traversal.
///
/// ```
/// use rtcore::geometry::Point3;
/// use rtdbscan::rt_dbscan::RtDbscanSession;
///
/// let points: Vec<Point3> = (0..60).map(|i| Point3::new_2d(0.1 * (i % 30) as f32, (i / 30) as f32)).collect();
/// let session = RtDbscanSession::new(&points, 0.25).unwrap();
/// let strict = session.cluster(8).unwrap();
/// let loose = session.cluster(2).unwrap();
/// assert!(loose.clustering.core_count() >= strict.clustering.core_count());
/// ```
#[derive(Debug)]
pub struct RtDbscanSession {
    points: Vec<Point3>,
    eps: f32,
    config: RtDbscan,
    bvh: Bvh,
    /// The wide collapse of `bvh`, kept so repeated `cluster` calls reuse it
    /// (only populated for the batched engine).
    wide: Option<rtcore::bvh::WideBvh>,
    representative_of: Vec<u32>,
    neighbor_counts: Vec<u64>,
    build_counters: WorkCounters,
    stage1_counters: WorkCounters,
    build_time: std::time::Duration,
    stage1_time: std::time::Duration,
}

impl RtDbscanSession {
    /// Build the scene and record every point's ε-neighbour count with the
    /// default RT-DBSCAN configuration.
    pub fn new(points: &[Point3], eps: f32) -> Result<Self> {
        Self::with_config(points, eps, RtDbscan::default())
    }

    /// Build a session with an explicit RT-DBSCAN configuration.
    pub fn with_config(points: &[Point3], eps: f32, config: RtDbscan) -> Result<Self> {
        // Validate eps through the params type (minPts is irrelevant here).
        DbscanParams::new(eps, 1)?;
        if points.is_empty() {
            return Ok(RtDbscanSession {
                points: Vec::new(),
                eps,
                config,
                bvh: Bvh {
                    nodes: vec![],
                    primitives: vec![],
                    builder: config.builder,
                    build_counters: WorkCounters::ZERO,
                },
                wide: None,
                representative_of: Vec::new(),
                neighbor_counts: Vec::new(),
                build_counters: WorkCounters::ZERO,
                stage1_counters: WorkCounters::ZERO,
                build_time: std::time::Duration::ZERO,
                stage1_time: std::time::Duration::ZERO,
            });
        }
        let (scene, build_time) = timed(|| config.build_scene(points, eps));
        let (bvh, representative_of, extra_build) = scene?;

        let pipeline_config = config.pipeline_config();
        // Collapse once and keep it: every later `cluster` call reuses the
        // wide scene instead of re-collapsing.
        let (wide, collapse_time) = timed(|| match config.traversal {
            TraversalEngine::WideBatched => Some(rtcore::bvh::WideBvh::from_binary(&bvh)),
            TraversalEngine::Binary => None,
        });
        let build_time = build_time + collapse_time;
        let build_counters = bvh.build_counters
            + extra_build
            + wide
                .as_ref()
                .map(|w| w.collapse_counters)
                .unwrap_or(WorkCounters::ZERO);

        let eps_sq = eps * eps;
        let (stage1, stage1_time) = timed(|| {
            let pipeline = match &wide {
                Some(w) => Pipeline::with_collapsed(&bvh, w, pipeline_config),
                None => Pipeline::with_config(&bvh, pipeline_config),
            };
            pipeline.launch(
                points.len(),
                &CorePointProgram {
                    points,
                    representative_of: &representative_of,
                    eps_sq,
                },
            )
        });
        Ok(RtDbscanSession {
            points: points.to_vec(),
            eps,
            config,
            bvh,
            wide,
            representative_of,
            neighbor_counts: stage1.payloads,
            build_counters,
            stage1_counters: stage1.counters,
            build_time,
            stage1_time,
        })
    }

    /// The search radius this session was built for.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Number of points in the session.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the session holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The recorded ε-neighbour count of every point (self excluded) — the
    /// quantity whose retention Section VI-B argues for.
    pub fn neighbor_counts(&self) -> &[u64] {
        &self.neighbor_counts
    }

    /// Number of points that would be core points for a given `minPts`.
    pub fn core_count_for(&self, min_pts: usize) -> usize {
        self.neighbor_counts
            .iter()
            .filter(|&&c| c as usize >= min_pts)
            .count()
    }

    /// The `minPts` value at which a given fraction (0..1) of the points
    /// would qualify as core points — a simple parameter-selection helper
    /// for the exploration workflow.
    pub fn min_pts_for_core_fraction(&self, fraction: f64) -> usize {
        if self.neighbor_counts.is_empty() {
            return 1;
        }
        let mut counts: Vec<u64> = self.neighbor_counts.clone();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let idx = ((counts.len() as f64 * fraction.clamp(0.0, 1.0)).ceil() as usize)
            .clamp(1, counts.len());
        (counts[idx - 1] as usize).max(1)
    }

    /// Cluster with a given `minPts`, reusing the acceleration structure and
    /// the recorded neighbour counts.  Only the cluster-formation stage is
    /// executed; its cost is reported in the returned
    /// [`RunResult::counters`] (`build` and `core_identification` are zero
    /// because that work is shared across all calls on this session).
    pub fn cluster(&self, min_pts: usize) -> Result<RunResult> {
        DbscanParams::new(self.eps, min_pts)?;
        let n = self.points.len();
        if n == 0 {
            return Ok(RunResult {
                clustering: Clustering::new(vec![], vec![]),
                timings: PhaseTimings::default(),
                counters: PhaseCounters::default(),
                path: ExecutionPath::RtCore,
                device_bytes: 0,
            });
        }
        let core: Vec<bool> = self
            .neighbor_counts
            .iter()
            .map(|&c| c as usize >= min_pts)
            .collect();
        let core_indices: Vec<u32> = (0..n as u32).filter(|&i| core[i as usize]).collect();
        let dsu = ConcurrentDisjointSet::new(n);
        let claimed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let pipeline_config = self.config.pipeline_config();
        let eps_sq = self.eps * self.eps;
        let (stage2, stage2_time) = timed(|| {
            let pipeline = match &self.wide {
                Some(w) => Pipeline::with_collapsed(&self.bvh, w, pipeline_config),
                None => Pipeline::with_config(&self.bvh, pipeline_config),
            };
            pipeline.launch(
                core_indices.len(),
                &ClusterFormationProgram {
                    points: &self.points,
                    core_indices: &core_indices,
                    core: &core,
                    claimed: &claimed,
                    dsu: &dsu,
                    eps_sq,
                },
            )
        });
        let mut stage2_counters = stage2.counters;
        let (find_ops, union_ops) = dsu.op_counts();
        stage2_counters.find_ops += find_ops;
        stage2_counters.union_ops += union_ops;

        let mut labels: Vec<i64> = (0..n)
            .map(|i| {
                if core[i] || claimed[i].load(Ordering::Relaxed) {
                    dsu.find(i) as i64
                } else {
                    NOISE
                }
            })
            .collect();
        for i in 0..n {
            let rep = self.representative_of[i] as usize;
            if rep != i && labels[i] == NOISE && labels[rep] >= 0 {
                labels[i] = labels[rep];
                stage2_counters.misc_ops += 1;
            }
        }

        Ok(RunResult {
            clustering: Clustering::new(labels, core),
            timings: PhaseTimings {
                build: std::time::Duration::ZERO,
                core_identification: std::time::Duration::ZERO,
                cluster_formation: stage2_time,
            },
            counters: PhaseCounters {
                build: WorkCounters::ZERO,
                core_identification: WorkCounters::ZERO,
                cluster_formation: stage2_counters,
            },
            path: ExecutionPath::RtCore,
            device_bytes: self.bvh.device_bytes()
                + self.wide.as_ref().map_or(0, |w| w.device_bytes())
                + (n * std::mem::size_of::<Point3>()) as u64
                + 8 * n as u64,
        })
    }

    /// The one-off cost of building this session (acceleration-structure
    /// build plus the stage-1 launch): counters and wall-clock timings.
    pub fn setup_cost(&self) -> (PhaseCounters, PhaseTimings) {
        (
            PhaseCounters {
                build: self.build_counters,
                core_identification: self.stage1_counters,
                cluster_formation: WorkCounters::ZERO,
            },
            PhaseTimings {
                build: self.build_time,
                core_identification: self.stage1_time,
                cluster_formation: std::time::Duration::ZERO,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::ClassicDbscan;
    use crate::fdbscan::Fdbscan;
    use crate::metrics::same_clustering;

    fn blobs_with_noise() -> Vec<Point3> {
        let mut pts = Vec::new();
        for c in 0..4 {
            let cx = (c % 2) as f32 * 15.0;
            let cy = (c / 2) as f32 * 15.0;
            for i in 0..50 {
                let a = i as f32 * 0.251;
                let r = 0.9 * ((i % 11) as f32 / 11.0);
                pts.push(Point3::new_2d(cx + r * a.cos(), cy + r * a.sin()));
            }
        }
        for i in 0..10 {
            pts.push(Point3::new_2d(7.5, 3.0 + i as f32));
        }
        pts
    }

    #[test]
    fn matches_classic_dbscan() {
        let pts = blobs_with_noise();
        let params = DbscanParams::new(0.5, 5).unwrap();
        let reference = ClassicDbscan::cluster(&pts, params).unwrap();
        let rt = RtDbscan::default().run(&pts, params).unwrap().clustering;
        assert_eq!(reference.core, rt.core);
        assert!(same_clustering(&reference, &rt, &pts, params));
        assert_eq!(reference.num_clusters(), rt.num_clusters());
    }

    #[test]
    fn matches_fdbscan_baseline() {
        let pts = blobs_with_noise();
        for (eps, min_pts) in [(0.4, 3), (0.8, 10), (2.0, 4)] {
            let params = DbscanParams::new(eps, min_pts).unwrap();
            let fd = Fdbscan::default().run(&pts, params).unwrap().clustering;
            let rt = RtDbscan::default().run(&pts, params).unwrap().clustering;
            assert_eq!(fd.core, rt.core, "eps={eps} min_pts={min_pts}");
            assert!(
                same_clustering(&fd, &rt, &pts, params),
                "eps={eps} min_pts={min_pts}"
            );
        }
    }

    #[test]
    fn handles_heavily_duplicated_points() {
        // 30 copies of each of 5 locations plus a separate sparse line.
        let mut pts = Vec::new();
        for loc in 0..5 {
            for _ in 0..30 {
                pts.push(Point3::new_2d(loc as f32 * 0.2, 0.0));
            }
        }
        for i in 0..20 {
            pts.push(Point3::new_2d(100.0 + i as f32 * 5.0, 0.0));
        }
        let params = DbscanParams::new(0.5, 10).unwrap();
        let reference = ClassicDbscan::cluster(&pts, params).unwrap();
        let rt = RtDbscan::default().run(&pts, params).unwrap();
        assert_eq!(reference.core, rt.clustering.core);
        assert!(same_clustering(&reference, &rt.clustering, &pts, params));
        // Compaction must have merged the duplicates.
        assert!(rt.counters.build.compaction_merges > 0);
    }

    #[test]
    fn compaction_reduces_intersection_calls_on_duplicated_data() {
        let mut pts = Vec::new();
        for loc in 0..20 {
            for _ in 0..50 {
                pts.push(Point3::new_2d(loc as f32, (loc % 3) as f32));
            }
        }
        let params = DbscanParams::new(0.1, 100).unwrap();
        let with = RtDbscan::default().run(&pts, params).unwrap();
        let without = RtDbscan::without_compaction().run(&pts, params).unwrap();
        assert_eq!(with.clustering.core, without.clustering.core);
        assert!(
            with.counters.core_identification.prim_tests * 5
                < without.counters.core_identification.prim_tests,
            "with {} vs without {}",
            with.counters.core_identification.prim_tests,
            without.counters.core_identification.prim_tests
        );
    }

    #[test]
    fn triangle_geometry_gives_same_clusters_but_more_work() {
        let pts = blobs_with_noise();
        let params = DbscanParams::new(0.5, 5).unwrap();
        let spheres = RtDbscan::default().run(&pts, params).unwrap();
        let triangles = RtDbscan::with_triangle_geometry(20)
            .run(&pts, params)
            .unwrap();
        assert_eq!(spheres.clustering.core, triangles.clustering.core);
        assert!(same_clustering(
            &spheres.clustering,
            &triangles.clustering,
            &pts,
            params
        ));
        assert_eq!(spheres.counters.total().anyhit_invocations, 0);
        assert!(triangles.counters.total().anyhit_invocations > 0);
    }

    #[test]
    fn reports_rt_core_path_and_build_breakdown() {
        let pts = blobs_with_noise();
        let params = DbscanParams::new(0.5, 5).unwrap();
        let r = RtDbscan::default().run(&pts, params).unwrap();
        assert_eq!(r.path, ExecutionPath::RtCore);
        assert_eq!(r.counters.build.build_prims as usize, pts.len());
        assert_eq!(r.counters.core_identification.rays as usize, pts.len());
        assert!(r.counters.cluster_formation.union_ops > 0);
        assert!(r.device_bytes > 0);
    }

    #[test]
    fn empty_input_and_all_noise() {
        let params = DbscanParams::new(0.5, 5).unwrap();
        let empty = RtDbscan::default().run(&[], params).unwrap();
        assert!(empty.clustering.is_empty());

        let sparse: Vec<Point3> = (0..50)
            .map(|i| Point3::new_2d(i as f32 * 10.0, 0.0))
            .collect();
        let r = RtDbscan::default().run(&sparse, params).unwrap();
        assert_eq!(r.clustering.num_clusters(), 0);
        assert_eq!(r.clustering.noise_count(), 50);
    }

    #[test]
    fn names_reflect_configuration() {
        assert_eq!(RtDbscan::default().name(), "RT-DBSCAN");
        assert_eq!(
            RtDbscan::without_compaction().name(),
            "RT-DBSCAN (no compaction)"
        );
        assert_eq!(
            RtDbscan::with_triangle_geometry(12).name(),
            "RT-DBSCAN (triangles)"
        );
    }

    #[test]
    fn session_matches_one_shot_runs_for_every_min_pts() {
        let pts = blobs_with_noise();
        let session = RtDbscanSession::new(&pts, 0.5).unwrap();
        for min_pts in [2usize, 5, 20, 500] {
            let params = DbscanParams::new(0.5, min_pts).unwrap();
            let one_shot = RtDbscan::default().run(&pts, params).unwrap().clustering;
            let reused = session.cluster(min_pts).unwrap().clustering;
            assert_eq!(one_shot.core, reused.core, "minPts={min_pts}");
            assert!(
                same_clustering(&one_shot, &reused, &pts, params),
                "minPts={min_pts}"
            );
            assert_eq!(session.core_count_for(min_pts), reused.core_count());
        }
    }

    #[test]
    fn session_reuse_skips_stage_one_work() {
        let pts = blobs_with_noise();
        let session = RtDbscanSession::new(&pts, 0.5).unwrap();
        let run = session.cluster(5).unwrap();
        assert_eq!(run.counters.build, WorkCounters::ZERO);
        assert_eq!(run.counters.core_identification, WorkCounters::ZERO);
        assert!(run.counters.cluster_formation.rays > 0);
        let (setup_counters, _) = session.setup_cost();
        assert!(setup_counters.build.build_prims > 0);
        assert_eq!(setup_counters.core_identification.rays as usize, pts.len());
    }

    #[test]
    fn session_neighbor_counts_match_brute_force() {
        let pts = blobs_with_noise();
        let eps = 0.5f32;
        let session = RtDbscanSession::new(&pts, eps).unwrap();
        for (i, &count) in session.neighbor_counts().iter().enumerate().step_by(17) {
            // Closed-ball convention on squared f32 distances — the single
            // boundary rule every implementation in the workspace shares.
            let expected = pts
                .iter()
                .enumerate()
                .filter(|&(j, q)| j != i && pts[i].distance_squared(*q) <= eps * eps)
                .count() as u64;
            assert_eq!(count, expected, "point {i}");
        }
    }

    #[test]
    fn session_parameter_helpers() {
        let pts = blobs_with_noise();
        let session = RtDbscanSession::new(&pts, 0.5).unwrap();
        assert_eq!(session.len(), pts.len());
        assert!(!session.is_empty());
        assert_eq!(session.eps(), 0.5);
        let min_pts_half = session.min_pts_for_core_fraction(0.5);
        let cores = session.core_count_for(min_pts_half);
        assert!(cores >= pts.len() / 2, "{cores} of {}", pts.len());
        // An empty session behaves sanely.
        let empty = RtDbscanSession::new(&[], 0.5).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.min_pts_for_core_fraction(0.5), 1);
        assert!(empty.cluster(3).unwrap().clustering.is_empty());
    }

    #[test]
    fn session_rejects_invalid_parameters() {
        let pts = blobs_with_noise();
        assert!(RtDbscanSession::new(&pts, -1.0).is_err());
        let session = RtDbscanSession::new(&pts, 0.5).unwrap();
        assert!(session.cluster(0).is_err());
    }

    #[test]
    fn min_parallel_launch_is_plumbed_through_and_result_invariant() {
        let pts = blobs_with_noise();
        let params = DbscanParams::new(0.5, 5).unwrap();
        // Force the all-sequential and all-parallel launch paths.
        let sequential = RtDbscan::with_min_parallel_launch(usize::MAX);
        let parallel = RtDbscan::with_min_parallel_launch(0);
        assert_eq!(sequential.pipeline_config().min_parallel_launch, usize::MAX);
        assert_eq!(parallel.pipeline_config().min_parallel_launch, 0);
        assert_eq!(
            RtDbscan::default().pipeline_config().min_parallel_launch,
            PipelineConfig::default().min_parallel_launch
        );

        let seq_run = sequential.run(&pts, params).unwrap();
        let par_run = parallel.run(&pts, params).unwrap();
        // The launch path is an execution detail: clusterings, core flags
        // and traversal counters must be identical.
        assert_eq!(seq_run.clustering.core, par_run.clustering.core);
        assert!(same_clustering(
            &seq_run.clustering,
            &par_run.clustering,
            &pts,
            params
        ));
        assert_eq!(
            seq_run.counters.core_identification,
            par_run.counters.core_identification
        );
        assert_eq!(
            seq_run.counters.core_identification.rays as usize,
            pts.len()
        );
    }

    #[test]
    fn wide_batched_default_matches_binary_oracle_and_charges_fewer_node_visits() {
        let pts = blobs_with_noise();
        let params = DbscanParams::new(0.5, 5).unwrap();
        assert_eq!(RtDbscan::default().traversal, TraversalEngine::WideBatched);
        let wide = RtDbscan::default().run(&pts, params).unwrap();
        let binary = RtDbscan::with_binary_traversal().run(&pts, params).unwrap();

        // Identical queries …
        assert_eq!(
            wide.counters.core_identification.rays,
            binary.counters.core_identification.rays
        );
        assert_eq!(
            wide.counters.core_identification.dist_comps,
            binary.counters.core_identification.dist_comps
        );
        // … identical answers …
        assert_eq!(wide.clustering.core, binary.clustering.core);
        assert!(same_clustering(
            &wide.clustering,
            &binary.clustering,
            &pts,
            params
        ));
        // … disjoint node-visit accounting …
        assert_eq!(wide.counters.core_identification.node_visits, 0);
        assert!(wide.counters.core_identification.wide_node_visits > 0);
        assert!(wide.counters.core_identification.batched_launches > 0);
        assert_eq!(binary.counters.core_identification.wide_node_visits, 0);
        // … and a strictly cheaper simulated node-visit bill for the wide
        // batched engine.
        use rtcore::hardware::CostProfile;
        let profile = CostProfile::rt_core();
        let charge = |c: &rtcore::hardware::WorkCounters| {
            c.node_visits as f64 * profile.node_visit_ns
                + c.wide_node_visits as f64 * profile.wide_visit_ns()
        };
        assert!(
            charge(&wide.counters.core_identification)
                < charge(&binary.counters.core_identification),
            "wide {} vs binary {}",
            charge(&wide.counters.core_identification),
            charge(&binary.counters.core_identification)
        );
    }

    #[test]
    fn lbvh_builder_variant_is_still_correct() {
        let pts = blobs_with_noise();
        let params = DbscanParams::new(0.5, 5).unwrap();
        let alt = RtDbscan {
            builder: BuilderKind::Lbvh,
            ..RtDbscan::default()
        };
        let reference = ClassicDbscan::cluster(&pts, params).unwrap();
        let rt = alt.run(&pts, params).unwrap().clustering;
        assert_eq!(reference.core, rt.core);
        assert!(same_clustering(&reference, &rt, &pts, params));
    }
}

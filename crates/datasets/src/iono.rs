//! 3DIono-like ionosphere generator.
//!
//! The real 3DIono dataset (Pankratius et al.) records GPS-derived total
//! electron content (TEC) measurements: each point is (latitude, longitude,
//! TEC).  Structurally it is a genuinely 3-D point cloud in which measurement
//! stations produce dense vertical "columns" of readings and large-scale
//! ionospheric structure produces smooth horizontal bands.  The synthetic
//! analogue reproduces that: receiver stations scattered over a continental
//! area, each contributing a column of TEC readings whose mean follows a
//! latitude-dependent band plus diurnal-style waves, with measurement noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use rtcore::geometry::Point3;

/// Latitude range of the synthetic receiver network (degrees).
pub const IONO_LAT_RANGE: (f32, f32) = (25.0, 50.0);
/// Longitude range of the synthetic receiver network (degrees).
pub const IONO_LON_RANGE: (f32, f32) = (-125.0, -65.0);

/// Generate `n` ionosphere measurements (longitude, latitude, TEC).
pub fn generate_ionosphere(n: usize, seed: u64) -> Vec<Point3> {
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0000_1000);
    let n_stations = (n / 200).clamp(8, 4000);
    let stations: Vec<(f32, f32)> = (0..n_stations)
        .map(|_| {
            (
                rng.gen_range(IONO_LON_RANGE.0..IONO_LON_RANGE.1),
                rng.gen_range(IONO_LAT_RANGE.0..IONO_LAT_RANGE.1),
            )
        })
        .collect();
    let pos_noise = Normal::new(0.0f32, 0.15).unwrap();
    let tec_noise = Normal::new(0.0f32, 0.8).unwrap();

    let mut pts = Vec::with_capacity(n);
    while pts.len() < n {
        let (sx, sy) = stations[rng.gen_range(0..stations.len())];
        // A station produces a short burst of readings (a satellite pass).
        let burst = rng.gen_range(5..=30usize);
        let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        for k in 0..burst {
            if pts.len() >= n {
                break;
            }
            let lon = sx + pos_noise.sample(&mut rng);
            let lat = sy + pos_noise.sample(&mut rng);
            // Background TEC: stronger at low latitude, with a longitudinal
            // (diurnal-like) wave and per-pass variation.
            let background = 40.0 - 0.6 * (lat - IONO_LAT_RANGE.0)
                + 6.0 * ((lon * 0.08) + phase).sin()
                + 2.5 * (k as f32 * 0.4 + phase).sin();
            let tec = (background + tec_noise.sample(&mut rng)).max(0.0);
            pts.push(Point3::new(lon, lat, tec));
        }
    }
    pts.truncate(n);
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_are_in_range_and_3d() {
        let pts = generate_ionosphere(5000, 3);
        assert_eq!(pts.len(), 5000);
        for p in &pts {
            assert!(p.x >= IONO_LON_RANGE.0 - 1.0 && p.x <= IONO_LON_RANGE.1 + 1.0);
            assert!(p.y >= IONO_LAT_RANGE.0 - 1.0 && p.y <= IONO_LAT_RANGE.1 + 1.0);
            assert!(p.z >= 0.0 && p.z < 80.0, "TEC {}", p.z);
        }
        assert!(pts.iter().any(|p| p.z > 1.0));
    }

    #[test]
    fn tec_decreases_with_latitude_on_average() {
        let pts = generate_ionosphere(30_000, 5);
        let (mut low_sum, mut low_n, mut high_sum, mut high_n) = (0.0f64, 0usize, 0.0f64, 0usize);
        for p in &pts {
            if p.y < 32.0 {
                low_sum += p.z as f64;
                low_n += 1;
            } else if p.y > 43.0 {
                high_sum += p.z as f64;
                high_n += 1;
            }
        }
        assert!(low_n > 100 && high_n > 100);
        assert!(low_sum / low_n as f64 > high_sum / high_n as f64);
    }

    #[test]
    fn station_columns_create_local_density() {
        // Measurements cluster around stations, so the median nearest
        // neighbour distance should be well below the uniform expectation.
        let pts = generate_ionosphere(4000, 9);
        let mut nn = Vec::new();
        for (i, p) in pts.iter().enumerate().step_by(50) {
            let mut best = f32::INFINITY;
            for (j, q) in pts.iter().enumerate() {
                if i != j {
                    best = best.min(p.distance(*q));
                }
            }
            nn.push(best);
        }
        nn.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = nn[nn.len() / 2];
        assert!(median < 1.0, "median nn {median}");
    }

    #[test]
    fn deterministic_and_zero_safe() {
        assert!(generate_ionosphere(0, 1).is_empty());
        assert_eq!(generate_ionosphere(500, 2), generate_ionosphere(500, 2));
        assert_ne!(generate_ionosphere(500, 2), generate_ionosphere(500, 3));
    }
}

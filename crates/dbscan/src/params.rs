//! DBSCAN parameters.

use rtcore::{Error, Result};

/// The two DBSCAN parameters (Section II-C of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Maximum distance between two points for them to be considered
    /// neighbours (ε).
    pub eps: f32,
    /// Minimum number of neighbours (excluding the point itself) required
    /// for a point to be a core point.
    ///
    /// Note on convention: the original DBSCAN paper counts the point itself
    /// in its ε-neighbourhood; RT-DBSCAN's Algorithm 2 explicitly filters
    /// self-intersections, so this implementation follows the paper and
    /// counts *other* points only.  All algorithms in this crate share the
    /// convention, so comparisons are apples-to-apples.
    pub min_pts: usize,
}

impl DbscanParams {
    /// Create a parameter set, validating the values.
    pub fn new(eps: f32, min_pts: usize) -> Result<Self> {
        let p = DbscanParams { eps, min_pts };
        p.validate()?;
        Ok(p)
    }

    /// Validate that ε is positive and finite and minPts is at least 1.
    pub fn validate(&self) -> Result<()> {
        if !self.eps.is_finite() || self.eps <= 0.0 {
            return Err(Error::InvalidConfig(format!(
                "eps must be positive and finite, got {}",
                self.eps
            )));
        }
        if self.min_pts == 0 {
            return Err(Error::InvalidConfig("min_pts must be at least 1".into()));
        }
        Ok(())
    }

    /// ε squared, the quantity actually compared against squared distances.
    #[inline]
    pub fn eps_sq(&self) -> f32 {
        self.eps * self.eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params_construct() {
        let p = DbscanParams::new(0.5, 10).unwrap();
        assert_eq!(p.eps, 0.5);
        assert_eq!(p.min_pts, 10);
        assert_eq!(p.eps_sq(), 0.25);
    }

    #[test]
    fn invalid_eps_rejected() {
        assert!(DbscanParams::new(0.0, 10).is_err());
        assert!(DbscanParams::new(-1.0, 10).is_err());
        assert!(DbscanParams::new(f32::NAN, 10).is_err());
        assert!(DbscanParams::new(f32::INFINITY, 10).is_err());
    }

    #[test]
    fn zero_min_pts_rejected() {
        assert!(DbscanParams::new(1.0, 0).is_err());
    }

    #[test]
    fn validate_matches_new() {
        let p = DbscanParams {
            eps: -2.0,
            min_pts: 5,
        };
        assert!(p.validate().is_err());
    }
}

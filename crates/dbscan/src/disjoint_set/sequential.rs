//! Sequential union-by-rank disjoint set with path compression.

/// A classic sequential disjoint-set forest.
#[derive(Debug, Clone)]
pub struct SequentialDisjointSet {
    parent: Vec<usize>,
    rank: Vec<u8>,
    /// Number of union operations that actually merged two distinct sets.
    merges: u64,
    /// Total find operations performed (including those inside unions).
    finds: u64,
}

impl SequentialDisjointSet {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        SequentialDisjointSet {
            parent: (0..n).collect(),
            rank: vec![0; n],
            merges: 0,
            finds: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Find the representative of `x`, compressing the path.
    pub fn find(&mut self, x: usize) -> usize {
        self.finds += 1;
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets containing `a` and `b`.  Returns `true` if two distinct
    /// sets were merged.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.merges += 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// True if `a` and `b` are currently in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&mut self) -> usize {
        let n = self.len();
        (0..n).filter(|&i| self.find(i) == i).count()
    }

    /// (find operations, successful merges) performed so far.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.finds, self.merges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut dsu = SequentialDisjointSet::new(5);
        assert_eq!(dsu.len(), 5);
        assert!(!dsu.is_empty());
        assert_eq!(dsu.set_count(), 5);
        for i in 0..5 {
            assert_eq!(dsu.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_same_set_reflects_it() {
        let mut dsu = SequentialDisjointSet::new(6);
        assert!(dsu.union(0, 1));
        assert!(dsu.union(2, 3));
        assert!(!dsu.union(1, 0)); // already merged
        assert!(dsu.same_set(0, 1));
        assert!(!dsu.same_set(0, 2));
        assert!(dsu.union(1, 3));
        assert!(dsu.same_set(0, 2));
        assert_eq!(dsu.set_count(), 3); // {0,1,2,3}, {4}, {5}
    }

    #[test]
    fn transitive_chains_collapse() {
        let n = 1000;
        let mut dsu = SequentialDisjointSet::new(n);
        for i in 0..n - 1 {
            dsu.union(i, i + 1);
        }
        assert_eq!(dsu.set_count(), 1);
        assert!(dsu.same_set(0, n - 1));
        let (finds, merges) = dsu.op_counts();
        assert_eq!(merges, (n - 1) as u64);
        assert!(finds >= 2 * (n - 1) as u64);
    }

    #[test]
    fn empty_structure() {
        let mut dsu = SequentialDisjointSet::new(0);
        assert!(dsu.is_empty());
        assert_eq!(dsu.set_count(), 0);
    }

    #[test]
    fn path_compression_flattens() {
        let mut dsu = SequentialDisjointSet::new(100);
        for i in 0..99 {
            dsu.union(i, i + 1);
        }
        let root = dsu.find(0);
        // After a find from every node, all parents must point to the root.
        for i in 0..100 {
            dsu.find(i);
        }
        for i in 0..100 {
            assert_eq!(dsu.parent[i], root);
        }
    }
}

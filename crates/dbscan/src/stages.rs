//! The two-stage DBSCAN formulation (Algorithm 3 of the paper) expressed
//! over any [`NeighborIndex`] backend.
//!
//! Stage 1 counts every point's ε-neighbours in one batched launch; stage 2
//! launches one query per core point and merges clusters through a parallel
//! union-find, claiming border points atomically.  Both RT-DBSCAN and the
//! FDBSCAN baseline are thin configurations of these two functions — the
//! substrate (binary BVH vs BVH4 packets vs grid vs brute force) is whatever
//! backend the caller hands in, which is the point of the redesign.

use crate::disjoint_set::{ConcurrentDisjointSet, EpochDisjointSet};
use crate::labels::NOISE;
use rtcore::fault::CancelScope;
use rtcore::geometry::Point3;
use rtcore::hardware::sat_bump;
use rtcore::hardware::WorkCounters;
use rtcore::index::{NeighborFlow, NeighborIndex, ShardSelect, ShardedIndex};
use rtcore::telemetry::PhaseKind;
use rtcore::Result;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Stage 1: every point's exact ε-neighbour count (self excluded), answered
/// by one batched launch over the backend's **count output mode**.
///
/// Compacting backends report representatives with multiplicities; the
/// query point's own group contributes `multiplicity - 1` (the point itself
/// does not count), which is exactly the Intersection-program logic of the
/// original RT path.  With `early_exit_min_pts` set, a query stops as soon
/// as its count reaches the threshold (the FDBSCAN-EarlyExit optimisation).
/// The count mode lets batched backends flush one count per query per
/// packet instead of paying a per-neighbour sink call; counted work is
/// identical either way.
pub(crate) fn count_all_neighbors(
    index: &dyn NeighborIndex,
    points: &[Point3],
    eps: f32,
    early_exit_min_pts: Option<usize>,
) -> (Vec<u64>, WorkCounters) {
    let counts: Vec<AtomicU64> = (0..points.len()).map(|_| AtomicU64::new(0)).collect();
    let mut counters = WorkCounters::ZERO;
    index.batch_neighbor_counts(
        points,
        eps,
        true,
        early_exit_min_pts.map(|m| m as u64),
        &mut counters,
        &counts,
    );
    (
        counts.into_iter().map(AtomicU64::into_inner).collect(),
        counters,
    )
}

/// [`count_all_neighbors`] under a deadline/cancellation scope.  The counts
/// launch is cancellable at packet granularity; a trip surfaces as
/// [`rtcore::Error::DeadlineExceeded`] carrying the work done so far, and
/// the partially-filled count cells are dropped with this function's stack
/// frame — a cancelled stage never leaks a wrong answer.
pub(crate) fn count_all_neighbors_cancellable(
    index: &dyn NeighborIndex,
    points: &[Point3],
    eps: f32,
    early_exit_min_pts: Option<usize>,
    scope: &CancelScope,
) -> Result<(Vec<u64>, WorkCounters)> {
    let counts: Vec<AtomicU64> = (0..points.len()).map(|_| AtomicU64::new(0)).collect();
    let mut counters = WorkCounters::ZERO;
    index.batch_neighbor_counts_cancellable(
        points,
        eps,
        true,
        early_exit_min_pts.map(|m| m as u64),
        &mut counters,
        &counts,
        scope,
    )?;
    Ok((
        counts.into_iter().map(AtomicU64::into_inner).collect(),
        counters,
    ))
}

/// Stage 2: one query per core point; core neighbours merge through the
/// concurrent union-find and border points are claimed atomically (the
/// paper's critical section, Algorithm 3 line 14).  Returns the final
/// labels (noise = [`NOISE`]) and the stage's counted work, including the
/// union-find traffic and the duplicate fix-up pass for compacting
/// backends.
pub(crate) fn form_clusters(
    index: &dyn NeighborIndex,
    points: &[Point3],
    core: &[bool],
    eps: f32,
) -> (Vec<i64>, WorkCounters) {
    if let Some(sharded) = index.as_sharded() {
        return form_clusters_stitched(sharded, index, points, core, eps);
    }
    let n = points.len();
    let core_indices: Vec<u32> = (0..n as u32).filter(|&i| core[i as usize]).collect();
    let queries: Vec<Point3> = core_indices.iter().map(|&i| points[i as usize]).collect();
    let dsu = ConcurrentDisjointSet::new(n);
    let claimed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();

    // ordering: the border-claim CAS is AcqRel so the winning claim is
    // ordered against the union it guards (Relaxed on failure: losers do
    // nothing).  The post-join label reads use Relaxed — the parallel
    // region has joined, which already provides the happens-before edge.
    let mut counters = WorkCounters::ZERO;
    index.batch_neighbors(&queries, eps, &mut counters, &|ordinal, neighbor, _| {
        let p = core_indices[ordinal] as usize;
        let q = neighbor.index as usize;
        if q != p {
            if core[q] {
                dsu.union(p, q);
            } else if claimed[q]
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // A border point may be reachable from several clusters but
                // must join exactly one.
                dsu.union(p, q);
            }
        }
        NeighborFlow::Continue
    });
    let (find_ops, union_ops) = dsu.op_counts();
    sat_bump(&mut counters.find_ops, find_ops);
    sat_bump(&mut counters.union_ops, union_ops);

    // Materialise labels.  Coincident duplicates merged away by a
    // compacting backend inherit their representative's assignment (they
    // have identical neighbourhoods, so this is always a valid DBSCAN
    // assignment).
    let mut labels: Vec<i64> = (0..n)
        .map(|i| {
            if core[i] || claimed[i].load(Ordering::Relaxed) {
                dsu.find(i) as i64
            } else {
                NOISE
            }
        })
        .collect();
    let mut dup_fixups = 0u64;
    for i in 0..n {
        let rep = index.representative_of(i as u32) as usize;
        if rep != i && labels[i] == NOISE && labels[rep] >= 0 {
            labels[i] = labels[rep];
            dup_fixups += 1;
        }
    }
    sat_bump(&mut counters.misc_ops, dup_fixups);

    (labels, counters)
}

/// [`form_clusters`] under a deadline/cancellation scope.
///
/// The launch always takes the flat (non-stitched) shape, even over a
/// sharded backend: the stitched split exists to attribute telemetry, not
/// correctness — both shapes enumerate the same candidate set, so the
/// clustering is identical (the counted work may differ, which is why the
/// uncancellable entry point keeps the stitched path).  A trip surfaces as
/// [`rtcore::Error::DeadlineExceeded`]; the union-find and claim state
/// live in this frame, so a cancelled stage discards every partial merge.
pub(crate) fn form_clusters_cancellable(
    index: &dyn NeighborIndex,
    points: &[Point3],
    core: &[bool],
    eps: f32,
    scope: &CancelScope,
) -> Result<(Vec<i64>, WorkCounters)> {
    let n = points.len();
    let core_indices: Vec<u32> = (0..n as u32).filter(|&i| core[i as usize]).collect();
    let queries: Vec<Point3> = core_indices.iter().map(|&i| points[i as usize]).collect();
    let dsu = ConcurrentDisjointSet::new(n);
    let claimed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();

    // ordering: identical discipline to `form_clusters` — AcqRel on the
    // winning border-claim CAS, Relaxed reads after the launch has joined.
    let mut counters = WorkCounters::ZERO;
    index.batch_neighbors_cancellable(
        &queries,
        eps,
        &mut counters,
        &|ordinal, neighbor, _| {
            let p = core_indices[ordinal] as usize;
            let q = neighbor.index as usize;
            if q != p {
                // Core neighbours always union; border points union only for
                // the first core that claims them (the CAS is short-circuited
                // away for cores, so its side effect fires exactly as before).
                if core[q]
                    || claimed[q]
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                {
                    dsu.union(p, q);
                }
            }
            NeighborFlow::Continue
        },
        scope,
    )?;
    let (find_ops, union_ops) = dsu.op_counts();
    sat_bump(&mut counters.find_ops, find_ops);
    sat_bump(&mut counters.union_ops, union_ops);

    let mut labels: Vec<i64> = (0..n)
        .map(|i| {
            if core[i] || claimed[i].load(Ordering::Relaxed) {
                dsu.find(i) as i64
            } else {
                NOISE
            }
        })
        .collect();
    let mut dup_fixups = 0u64;
    for i in 0..n {
        let rep = index.representative_of(i as u32) as usize;
        if rep != i && labels[i] == NOISE && labels[rep] >= 0 {
            labels[i] = labels[rep];
            dup_fixups += 1;
        }
    }
    sat_bump(&mut counters.misc_ops, dup_fixups);

    Ok((labels, counters))
}

/// Stage 2 over a two-level scene: intra-shard clustering first (one
/// [`ShardSelect::Owner`] launch applying the flat union/claim logic), then
/// the cross-shard boundary pass — a [`ShardSelect::CrossOnly`] launch whose
/// edges are merged through the O(1)-reset epoch union-find under a
/// `shard_stitch` telemetry span.  The two launches together enumerate
/// exactly the candidate set of one flat launch (see
/// [`ShardedIndex::batch_neighbors_stitched`]), and union-find merges are
/// order-insensitive, so the core partition is identical to the flat path's;
/// border points join exactly one reachable cluster, as in the flat path.
fn form_clusters_stitched(
    sharded: &ShardedIndex,
    index: &dyn NeighborIndex,
    points: &[Point3],
    core: &[bool],
    eps: f32,
) -> (Vec<i64>, WorkCounters) {
    let n = points.len();
    let core_indices: Vec<u32> = (0..n as u32).filter(|&i| core[i as usize]).collect();
    let queries: Vec<Point3> = core_indices.iter().map(|&i| points[i as usize]).collect();
    // Owner of each query's representative primitive; a query whose
    // representative has no live shard (never the case for a freshly built
    // scene) degrades to "everything is cross-shard", which stays correct.
    let owners: Vec<u32> = core_indices
        .iter()
        .map(|&i| {
            sharded
                .owner_shard(index.representative_of(i))
                .unwrap_or(u32::MAX)
        })
        .collect();
    let dsu = ConcurrentDisjointSet::new(n);
    let claimed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let mut counters = WorkCounters::ZERO;

    // ordering: same discipline as the flat path — AcqRel on the winning
    // border-claim CAS (Relaxed on failure), Relaxed for every read that
    // happens after the launch has joined (phase B and label materialise
    // run strictly after phase A's join).

    // Phase A — intra-shard: each query only visits its owning BLAS; the
    // sink is the flat stage-2 logic verbatim.
    sharded.batch_neighbors_stitched(
        &queries,
        &owners,
        ShardSelect::Owner,
        eps,
        &mut counters,
        &|ordinal, neighbor, _| {
            let p = core_indices[ordinal] as usize;
            let q = neighbor.index as usize;
            // Core neighbours always merge; border points are claimed by
            // exactly one cluster (the CAS runs only for non-core q).
            if q != p
                && (core[q]
                    || claimed[q]
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok())
            {
                dsu.union(p, q);
            }
            NeighborFlow::Continue
        },
    );

    // Phase B — boundary regions: collect the cross-shard edges, then merge
    // them through the epoch union-find so the stitch work is visible as its
    // own phase (and its own union-find traffic).
    let cross_edges: std::sync::Mutex<Vec<(u32, u32)>> = std::sync::Mutex::new(Vec::new());
    sharded.batch_neighbors_stitched(
        &queries,
        &owners,
        ShardSelect::CrossOnly,
        eps,
        &mut counters,
        &|ordinal, neighbor, _| {
            let p = core_indices[ordinal];
            if neighbor.index != p {
                cross_edges
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push((p, neighbor.index));
            }
            NeighborFlow::Continue
        },
    );

    let span = sharded.telemetry().map(|t| t.span(PhaseKind::ShardStitch));
    let mut epoch = EpochDisjointSet::new(n);
    // Import the intra-shard partition: attach every assigned point to its
    // phase-A representative.
    for i in 0..n {
        if core[i] || claimed[i].load(Ordering::Relaxed) {
            epoch.union(i, dsu.find(i));
        }
    }
    let cross_edges = cross_edges
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for &(p, q) in cross_edges.iter() {
        let (p, q) = (p as usize, q as usize);
        // Same union/claim rule as phase A, applied to the boundary edges.
        if core[q]
            || claimed[q]
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            epoch.union(p, q);
        }
    }
    let mut stitch_counters = WorkCounters::ZERO;
    let (find_ops, union_ops) = dsu.op_counts();
    sat_bump(&mut stitch_counters.find_ops, find_ops);
    sat_bump(&mut stitch_counters.union_ops, union_ops);
    let (find_ops, union_ops) = epoch.op_counts();
    sat_bump(&mut stitch_counters.find_ops, find_ops);
    sat_bump(&mut stitch_counters.union_ops, union_ops);
    if let Some(mut s) = span {
        s.add_counters(stitch_counters);
    }
    counters += stitch_counters;

    let mut labels: Vec<i64> = (0..n)
        .map(|i| {
            if core[i] || claimed[i].load(Ordering::Relaxed) {
                epoch.find(i) as i64
            } else {
                NOISE
            }
        })
        .collect();
    let mut dup_fixups = 0u64;
    for i in 0..n {
        let rep = index.representative_of(i as u32) as usize;
        if rep != i && labels[i] == NOISE && labels[rep] >= 0 {
            labels[i] = labels[rep];
            dup_fixups += 1;
        }
    }
    sat_bump(&mut counters.misc_ops, dup_fixups);

    (labels, counters)
}

//! The streaming clusterer: windowed ingestion, BVH refit/rebuild, and
//! incremental cluster-label maintenance.
//!
//! # How incrementality works
//!
//! DBSCAN's output decomposes into three layers, each with different
//! incremental behaviour (points never move once ingested, so ε-adjacency
//! between two live points is immutable):
//!
//! 1. **Neighbour counts / core flags** — maintained *exactly*: inserting a
//!    point queries its ε-neighbourhood once and bumps both sides' counts;
//!    evicting a point queries once more and decrements the survivors.
//!    Stage 1 of the batch pipeline never needs to re-run.
//! 2. **The core partition** (clusters = connected components of core
//!    points under ε-adjacency) — monotone under insertion: a point can
//!    only *become* core, and a new core point merges components, which a
//!    union-find absorbs in place.  Evicting a core point (or flipping a
//!    core point back below `minPts`) can split components, which
//!    union-find cannot express — that marks the partition **dirty**.
//! 3. **Border attachment** — each non-core point keeps a *hint*: some
//!    live core ε-neighbour.  Hints stay valid until the hinted core
//!    retires or flips, which only happens on the dirty path.
//!
//! A dirty partition is repaired lazily by the next [`snapshot`]: the
//! epoch disjoint-set resets in O(1) and a stage-2-only pass (one
//! neighbourhood traversal per live core point) re-forms components and
//! hints.  The expensive per-snapshot work of the batch pipeline — scene
//! build and stage-1 counting over *all* points — is never repeated; the
//! acceleration structure itself is maintained by refit with an
//! LBVH-rebuild fallback under the configured [`RefitPolicy`].
//!
//! [`snapshot`]: StreamingClusterer::snapshot

use crate::window::{StreamingConfig, WindowPolicy};
use rtcore::bvh::{refit, Bvh, BvhBuilder, LbvhBuilder, TreeHealth, WideBvh};
use rtcore::fault::{CancelScope, FaultInjector, FaultSite};
use rtcore::geometry::{Point3, Ray, Sphere};
use rtcore::hardware::sat_bump;
use rtcore::hardware::WorkCounters;
use rtcore::index::CsrNeighbors;
use rtcore::pipeline::TraversalEngine;
use rtcore::telemetry::{PhaseKind, Telemetry};
use rtcore::traversal::{traverse, traverse_batch_with_scratch, Traversal, TraversalScratch};
use rtcore::Result;
use rtdbscan::disjoint_set::EpochDisjointSet;
use rtdbscan::labels::{Clustering, NOISE};
use std::collections::VecDeque;

/// Which spatial structure currently holds a slot's sphere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// In the unindexed tail of the current batch (scanned exactly).
    Tail,
    /// In one of the small immutable delta BVHs.
    Delta,
    /// In the main indexed scene.
    Scene,
}

/// Per-point state in the slot arena.  Slots are reused after eviction so
/// long-running streams do not grow without bound.
#[derive(Debug, Clone, Copy)]
struct Slot {
    point: Point3,
    /// Arrival timestamp (seconds); drives time-window eviction.
    time: f64,
    alive: bool,
    /// Exact number of live ε-neighbours (self excluded).
    neighbor_count: u32,
    core: bool,
    /// Some live core ε-neighbour, if one is known (border attachment).
    hint: Option<u32>,
    /// Which structure holds this slot's sphere (valid while alive, and
    /// governs when an evicted slot's id may be reused).
    loc: Loc,
}

/// What one [`StreamingClusterer::ingest`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Points inserted into the window.
    pub inserted: usize,
    /// Points evicted by the window policy.
    pub evicted: usize,
    /// Whether the indexed scene was refitted in place this call.
    pub refitted: bool,
    /// Whether the indexed scene was fully rebuilt this call.
    pub rebuilt: bool,
}

/// Aggregate observability counters for dashboards and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamingStats {
    /// Total points ever ingested.
    pub ingested: u64,
    /// Total points ever evicted.
    pub evicted: u64,
    /// Refit passes performed on the indexed scene.
    pub refits: u64,
    /// Full rebuilds of the indexed scene.
    pub rebuilds: u64,
    /// Snapshots that could reuse the clean incremental partition.
    pub clean_snapshots: u64,
    /// Snapshots that had to re-form the partition (stage-2 pass).
    pub dirty_snapshots: u64,
    /// Failed main-scene build attempts that were retried in-call.
    pub rebuild_retries: u64,
    /// Rebuilds that exhausted every in-call attempt and degraded (the old
    /// scene, overlays and tail kept answering; a backoff defers the next
    /// attempt).
    pub rebuild_failures: u64,
    /// Tail compactions deferred by a failed delta build (the tail stays
    /// pending and is scanned exactly until a later pass succeeds).
    pub compaction_deferrals: u64,
}

/// Sliding-window density clusterer over the ray-tracing substrate.
///
/// ```
/// use rtcore::geometry::Point3;
/// use rtdbscan::DbscanParams;
/// use rtdbscan_stream::{StreamingClusterer, StreamingConfig, WindowPolicy};
///
/// // minPts counts *other* neighbours in this codebase, so minPts = 1
/// // makes every member of a pair a core point.
/// let params = DbscanParams::new(1.0, 1).unwrap();
/// let config = StreamingConfig::new(params, WindowPolicy::Count(4));
/// let mut clusterer = StreamingClusterer::new(config).unwrap();
///
/// // Two pairs arrive; both are clusters of two.
/// clusterer.ingest(&[
///     (Point3::new_2d(0.0, 0.0), 0.0),
///     (Point3::new_2d(0.5, 0.0), 1.0),
///     (Point3::new_2d(10.0, 0.0), 2.0),
///     (Point3::new_2d(10.5, 0.0), 3.0),
/// ])
/// .unwrap();
/// assert_eq!(clusterer.snapshot().num_clusters(), 2);
///
/// // Two more points near the first pair slide the window: the old pair
/// // leaves, and only the second cluster plus the newcomers remain.
/// clusterer.ingest(&[
///     (Point3::new_2d(20.0, 0.0), 4.0),
///     (Point3::new_2d(20.5, 0.0), 5.0),
/// ])
/// .unwrap();
/// let snapshot = clusterer.snapshot();
/// assert_eq!(snapshot.len(), 4);
/// assert_eq!(snapshot.num_clusters(), 2);
/// ```
#[derive(Debug)]
pub struct StreamingClusterer {
    config: StreamingConfig,
    eps_sq: f32,

    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Evicted slots whose spheres are still physically in the main scene;
    /// reusable once a refit or rebuild has flushed those spheres
    /// (otherwise a reused id would make the stale sphere masquerade as
    /// the new occupant).
    retiring_scene: Vec<u32>,
    /// Evicted slots whose spheres sit in a delta BVH; reusable after the
    /// full rebuild that absorbs the deltas.
    retiring_delta: Vec<u32>,
    /// Live slots in arrival order (front = oldest).
    live: VecDeque<u32>,
    /// Newest timestamp seen (time windows are measured against it).
    now: f64,

    /// Indexed scene over a prefix of the live set, `None` until first
    /// (re)build or when the window empties.
    scene: Option<Bvh>,
    health_at_build: Option<TreeHealth>,
    /// Lazily collapsed wide (BVH4) form of `scene`, used by the batched
    /// snapshot repair pass; invalidated whenever `scene` changes shape
    /// (refit or rebuild).
    wide_scene: Option<WideBvh>,
    /// Retired primitives still physically inside `scene` (hit lists filter
    /// them; a refit flushes them).
    dead_in_scene: usize,
    /// Small immutable LBVHs over recently arrived batches — the overlay
    /// levels of the scene, in the LSM-tree sense.  Queries traverse the
    /// main scene plus every delta; a full rebuild absorbs them.
    deltas: Vec<Bvh>,
    /// Live slots not yet in any BVH (the current batch); queries scan
    /// these exactly.
    pending: Vec<u32>,

    dsu: EpochDisjointSet,
    /// Set when the incremental partition may be invalid (a core point
    /// retired or flipped down); cleared by the stage-2 pass in `snapshot`.
    dirty: bool,
    /// The last materialised clustering, valid while the window is
    /// unchanged: clean repeat snapshots return it without recomputing (or
    /// recounting) anything.  Any successful ingest that inserts or evicts
    /// invalidates it.
    snapshot_cache: Option<Clustering>,

    /// Work by phase, mirroring the batch pipeline's breakdown: scene
    /// maintenance (build/refit), neighbour-count maintenance (stage 1),
    /// partition maintenance (stage 2).
    build_counters: WorkCounters,
    stage1_counters: WorkCounters,
    stage2_counters: WorkCounters,
    stats: StreamingStats,
    /// Phase-span recorder (no-op under the default `TelemetryConfig::Off`).
    telemetry: Telemetry,
    /// Deterministic fault injector (disarmed under `FaultPlan::Off` or
    /// without the `fault-inject` feature; every probe is then one branch).
    fault: FaultInjector,
    /// Ingest calls left before a failed rebuild may be retried
    /// (exponential backoff from [`StreamingConfig::rebuild_retry`]).
    rebuild_backoff: u64,
    /// Consecutive exhausted rebuilds; drives the backoff exponent, reset
    /// by the first successful rebuild.
    rebuild_fail_streak: u32,

    /// Scratch buffers reused across calls.
    hits_scratch: Vec<u32>,
    flips_scratch: Vec<u32>,
    /// Reusable state of the batched snapshot-repair pass: staged rays,
    /// `(query, hit)` pairs, the wavefront traversal scratch, and the CSR
    /// neighbourhoods of the current packet.  All grow-only, so the
    /// per-packet repair loop allocates nothing once warm (the pass itself
    /// still materialises its core-point list once per repair).
    repair_rays: Vec<Ray>,
    repair_pairs: Vec<(u32, u32)>,
    repair_trav: TraversalScratch,
    repair_csr: CsrNeighbors,
}

impl StreamingClusterer {
    /// Create an empty clusterer; fails on invalid configuration.
    pub fn new(config: StreamingConfig) -> Result<Self> {
        config.validate()?;
        Ok(StreamingClusterer {
            config,
            eps_sq: config.params.eps_sq(),
            slots: Vec::new(),
            free: Vec::new(),
            retiring_scene: Vec::new(),
            retiring_delta: Vec::new(),
            live: VecDeque::new(),
            now: f64::NEG_INFINITY,
            scene: None,
            health_at_build: None,
            wide_scene: None,
            dead_in_scene: 0,
            deltas: Vec::new(),
            pending: Vec::new(),
            dsu: EpochDisjointSet::new(0),
            dirty: false,
            snapshot_cache: None,
            build_counters: WorkCounters::ZERO,
            stage1_counters: WorkCounters::ZERO,
            stage2_counters: WorkCounters::ZERO,
            stats: StreamingStats::default(),
            telemetry: Telemetry::new(config.telemetry),
            fault: FaultInjector::new(config.fault),
            rebuild_backoff: 0,
            rebuild_fail_streak: 0,
            hits_scratch: Vec::new(),
            flips_scratch: Vec::new(),
            repair_rays: Vec::new(),
            repair_pairs: Vec::new(),
            repair_trav: TraversalScratch::default(),
            repair_csr: CsrNeighbors::new(),
        })
    }

    /// The configuration this clusterer runs with.
    pub fn config(&self) -> StreamingConfig {
        self.config
    }

    /// Number of live points in the window.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True if the window holds no points.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The live window contents in arrival order — index `i` here labels
    /// position `i` of [`StreamingClusterer::snapshot`]'s output.
    pub fn window_points(&self) -> Vec<Point3> {
        self.live
            .iter()
            .map(|&slot| self.slots[slot as usize].point)
            .collect()
    }

    /// Aggregate observability counters.
    pub fn stats(&self) -> StreamingStats {
        self.stats
    }

    /// The telemetry recorder, when the configuration enables one (`None`
    /// under the default `TelemetryConfig::Off`).  Every ingest records a
    /// `streaming_slide` span, with nested `refit` / `rebuild` spans when
    /// scene maintenance ran.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.is_enabled().then_some(&self.telemetry)
    }

    /// Total counted work so far, across all phases.
    pub fn counters(&self) -> WorkCounters {
        self.build_counters + self.stage1_counters + self.stage2_counters
    }

    /// Counted work split the way the batch pipeline reports it:
    /// `(scene maintenance, neighbour counting, cluster formation)`.
    pub fn phase_counters(&self) -> (WorkCounters, WorkCounters, WorkCounters) {
        (
            self.build_counters,
            self.stage1_counters,
            self.stage2_counters,
        )
    }

    /// Estimated device-memory footprint of the streaming state in bytes.
    pub fn device_bytes(&self) -> u64 {
        let scene = self.scene.as_ref().map_or(0, Bvh::device_bytes);
        let wide = self.wide_scene.as_ref().map_or(0, WideBvh::device_bytes);
        let deltas: u64 = self.deltas.iter().map(Bvh::device_bytes).sum();
        scene
            + wide
            + deltas
            + (self.slots.len() * std::mem::size_of::<Slot>()) as u64
            + (self.pending.len() * std::mem::size_of::<u32>()) as u64
            + (self.dsu.len() * 8) as u64
    }

    // ------------------------------------------------------------------
    // Ingestion
    // ------------------------------------------------------------------

    /// Ingest a batch of timestamped points, sliding the window as
    /// configured.  Timestamps should be non-decreasing across calls; the
    /// window clock only moves forward.
    ///
    /// Fails — without touching any state — if a point or timestamp is
    /// non-finite, matching the batch pipeline's input validation (a
    /// long-running stream must reject a poison point, not crash on it).
    pub fn ingest(&mut self, batch: &[(Point3, f64)]) -> Result<IngestReport> {
        for (index, &(point, time)) in batch.iter().enumerate() {
            if !point.is_finite() || !time.is_finite() {
                return Err(rtcore::Error::InvalidPrimitive {
                    index,
                    reason: format!("non-finite ingest point or timestamp ({point:?} @ {time})"),
                });
            }
        }
        if !self.config.memory_budget.allows(self.device_bytes()) {
            // Degrade before refusing: shed the cached wide collapse of the
            // main scene (snapshot repair recollapses it lazily when next
            // needed — correctness is unaffected, only repair speed).
            self.wide_scene = None;
            if !self.config.memory_budget.allows(self.device_bytes()) {
                return Err(rtcore::Error::OverBudget {
                    requested: self.device_bytes(),
                    budget: self.config.memory_budget.limit().unwrap_or(0),
                });
            }
        }
        // The span borrows a clone of the handle (they share one recorder)
        // so the body below can keep taking `&mut self`.
        let telemetry = self.telemetry.clone();
        let mut slide_span = telemetry.span(PhaseKind::StreamingSlide);
        let counters_before = self.counters();
        let mut report = IngestReport::default();
        self.flips_scratch.clear();
        if !batch.is_empty() {
            // The window contents are about to change; the cached snapshot
            // no longer describes them.
            self.snapshot_cache = None;
        }

        for &(point, time) in batch {
            self.now = if self.now.is_finite() {
                self.now.max(time)
            } else {
                time
            };
            report.evicted += self.evict_due(self.now);
            self.insert_point(point, time);
            report.inserted += 1;
        }
        // Count-window eviction for the final state (insert_point evicts
        // pre-insert so the budget is never exceeded mid-batch).

        self.process_flip_ups();
        let (refitted, rebuilt) = self.maintain_scene();
        report.refitted = refitted;
        report.rebuilt = rebuilt;

        self.stats.ingested += report.inserted as u64;
        self.stats.evicted += report.evicted as u64;
        slide_span.add_counters(self.counters() - counters_before);
        Ok(report)
    }

    /// Evict every point the window policy no longer retains given the
    /// current clock, returning how many were evicted.
    fn evict_due(&mut self, now: f64) -> usize {
        let mut evicted = 0usize;
        while let Some(&oldest) = self.live.front() {
            let must_evict = match self.config.window {
                // `>=` : eviction runs pre-insert, so reaching the budget
                // means the insert about to happen would exceed it.
                WindowPolicy::Count(max) => self.live.len() >= max,
                // `>=` : a point whose age equals the horizon exactly is
                // already out of the window (see `WindowPolicy::Time`).
                WindowPolicy::Time(horizon) => now - self.slots[oldest as usize].time >= horizon,
            };
            if !must_evict {
                break;
            }
            self.evict_slot(oldest);
            evicted += 1;
        }
        evicted
    }

    fn evict_slot(&mut self, slot: u32) {
        debug_assert_eq!(self.live.front(), Some(&slot));
        self.live.pop_front();

        // Decrement the survivors' neighbour counts; core points that drop
        // below minPts dirty the partition.
        let point = self.slots[slot as usize].point;
        let mut hits = std::mem::take(&mut self.hits_scratch);
        self.neighbors_of(point, slot, &mut hits, Phase::Stage1);
        let min_pts = self.config.params.min_pts;
        for &q in &hits {
            let s = &mut self.slots[q as usize];
            s.neighbor_count -= 1;
            sat_bump(&mut self.stage1_counters.misc_ops, 1);
            if s.core && (s.neighbor_count as usize) < min_pts {
                s.core = false;
                self.dirty = true;
            }
        }
        self.hits_scratch = hits;

        if self.slots[slot as usize].core {
            // Retiring a core point can split its component.
            self.dirty = true;
        }

        self.slots[slot as usize].alive = false;
        // Physically drop from whichever structure holds the point.  A
        // tail slot disappears immediately and can be reused; a slot whose
        // sphere is still in a BVH must wait for the refit/rebuild that
        // removes the sphere (queries filter it by the alive flag until
        // then).
        match self.slots[slot as usize].loc {
            Loc::Tail => {
                let pos = self
                    .pending
                    .iter()
                    .position(|&p| p == slot)
                    // analyze-allow: lib-unwrap -- the tail slot was pushed to pending when it entered the delta region
                    .expect("tail slot must be in pending");
                self.pending.swap_remove(pos);
                self.free.push(slot);
            }
            Loc::Delta => self.retiring_delta.push(slot),
            Loc::Scene => {
                self.dead_in_scene += 1;
                self.retiring_scene.push(slot);
            }
        }
    }

    fn insert_point(&mut self, point: Point3, time: f64) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Slot {
                    point,
                    time,
                    alive: true,
                    neighbor_count: 0,
                    core: false,
                    hint: None,
                    loc: Loc::Tail,
                };
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    point,
                    time,
                    alive: true,
                    neighbor_count: 0,
                    core: false,
                    hint: None,
                    loc: Loc::Tail,
                });
                s
            }
        };
        self.dsu.grow(self.slots.len());

        // One neighbourhood query maintains both sides' counts exactly.
        let mut hits = std::mem::take(&mut self.hits_scratch);
        self.neighbors_of(point, slot, &mut hits, Phase::Stage1);
        let min_pts = self.config.params.min_pts;
        let mut hint = None;
        for &q in &hits {
            let other = &mut self.slots[q as usize];
            other.neighbor_count += 1;
            sat_bump(&mut self.stage1_counters.misc_ops, 1);
            if other.core {
                hint = hint.or(Some(q));
            } else if other.neighbor_count as usize >= min_pts {
                // Crossing minPts: flag now (so later queries in this batch
                // already see it as core), union later with a fresh query.
                other.core = true;
                self.flips_scratch.push(q);
            }
        }
        let me = &mut self.slots[slot as usize];
        me.neighbor_count = hits.len() as u32;
        me.hint = hint;
        if hits.len() >= min_pts {
            me.core = true;
            self.flips_scratch.push(slot);
        }
        self.hits_scratch = hits;

        self.live.push_back(slot);
        self.pending.push(slot);
    }

    /// Every point that became core this batch merges with its core
    /// neighbours and hands hints to its non-core neighbours.  On the dirty
    /// path the unions are skipped — the next snapshot re-forms the
    /// partition from scratch anyway.
    fn process_flip_ups(&mut self) {
        if self.flips_scratch.is_empty() {
            return;
        }
        let flips = std::mem::take(&mut self.flips_scratch);
        let mut hits = std::mem::take(&mut self.hits_scratch);
        for &slot in &flips {
            if !self.slots[slot as usize].alive {
                continue; // became core and was evicted within one batch
            }
            self.neighbors_of(
                self.slots[slot as usize].point,
                slot,
                &mut hits,
                Phase::Stage2,
            );
            for &q in &hits {
                if self.slots[q as usize].core {
                    if !self.dirty {
                        self.dsu.union(slot as usize, q as usize);
                    }
                } else {
                    let (qp, qh) = {
                        let sq = &self.slots[q as usize];
                        (sq.point, sq.hint)
                    };
                    if !self.hint_valid(qp, qh) {
                        self.slots[q as usize].hint = Some(slot);
                    }
                }
            }
        }
        self.drain_dsu_ops();
        self.hits_scratch = hits;
        self.flips_scratch = flips;
        self.flips_scratch.clear();
    }

    /// A hint is usable for `of` only if the hinted slot is still live,
    /// still core, *and* still within ε of `of` — the distance re-check
    /// guards against slot reuse handing the id to an unrelated point.
    fn hint_valid(&self, of: Point3, hint: Option<u32>) -> bool {
        hint.is_some_and(|h| {
            let s = &self.slots[h as usize];
            s.alive && s.core && s.point.distance_squared(of) <= self.eps_sq
        })
    }

    fn drain_dsu_ops(&mut self) {
        let (finds, unions) = self.dsu.op_counts();
        self.dsu.reset_op_counts();
        sat_bump(&mut self.stage2_counters.find_ops, finds);
        sat_bump(&mut self.stage2_counters.union_ops, unions);
    }

    // ------------------------------------------------------------------
    // Scene maintenance: refit vs rebuild
    // ------------------------------------------------------------------

    /// Levels in the delta forest before a full rebuild is forced; deeper
    /// forests make queries touch too many roots.
    const MAX_DELTAS: usize = 8;

    fn maintain_scene(&mut self) -> (bool, bool) {
        if self.rebuild_backoff > 0 {
            // A recent rebuild exhausted its attempts; wait out the backoff
            // before trying again.  Refit and tail compaction below still
            // maintain what they can.
            self.rebuild_backoff -= 1;
        } else if self.needs_rebuild() {
            if self.rebuild_scene() {
                self.rebuild_fail_streak = 0;
                return (false, true);
            }
            // Degrade: the old scene, delta overlays and exact tail scan
            // keep answering correctly (just slower); retry later with
            // exponential backoff.
            self.rebuild_fail_streak = self.rebuild_fail_streak.saturating_add(1);
            self.rebuild_backoff = self
                .config
                .rebuild_retry
                .backoff_ticks(self.rebuild_fail_streak);
        }
        let mut refitted = false;
        if let Some(scene) = self.scene.as_mut() {
            let prims = scene.primitives.len().max(1);
            if self.dead_in_scene > 0
                && self.dead_in_scene as f32 >= self.config.refit_dead_fraction * prims as f32
            {
                let telemetry = self.telemetry.clone();
                let mut span = telemetry.span(PhaseKind::Refit);
                let mut refit_counters = WorkCounters::ZERO;
                let slots = &self.slots;
                refit::remove_points(
                    scene,
                    |slot| !slots[slot as usize].alive,
                    &mut refit_counters,
                );
                span.add_counters(refit_counters);
                drop(span);
                self.build_counters += refit_counters;
                self.wide_scene = None; // scene changed shape
                self.dead_in_scene = 0;
                self.free.append(&mut self.retiring_scene);
                sat_bump(&mut self.stats.refits, 1);
                refitted = true;
            }
        }
        self.compact_tail_into_delta();
        (refitted, false)
    }

    /// Index the batch tail as a small immutable LBVH so later queries stop
    /// paying a linear scan for it.  These delta builds are the cheap,
    /// incremental part of the update policy: a few hundred primitives
    /// each, absorbed wholesale by the next full rebuild.
    fn compact_tail_into_delta(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let spheres: Vec<Sphere> = self
            .pending
            .iter()
            .map(|&slot| {
                Sphere::new(
                    self.slots[slot as usize].point,
                    self.config.params.eps,
                    slot,
                )
            })
            .collect();
        // Build before mutating any state: a failed delta build (only
        // possible via fault injection — the inputs were validated finite
        // on insert) defers compaction, leaving the tail pending and
        // exactly scanned until a later pass succeeds.
        let delta = match self.try_build_delta(spheres) {
            Ok(delta) => delta,
            Err(_) => {
                sat_bump(&mut self.stats.compaction_deferrals, 1);
                return;
            }
        };
        self.build_counters += delta.build_counters;
        for &slot in &self.pending {
            self.slots[slot as usize].loc = Loc::Delta;
        }
        self.pending.clear();
        self.deltas.push(delta);
    }

    fn needs_rebuild(&self) -> bool {
        let indexed_live = self
            .scene
            .as_ref()
            .map_or(0, |s| s.primitives.len() - self.dead_in_scene);
        let overlay: usize = self
            .deltas
            .iter()
            .map(|d| d.primitives.len())
            .sum::<usize>()
            + self.pending.len();
        if overlay as f32 > self.config.max_pending_fraction * indexed_live.max(1) as f32 {
            return true;
        }
        if self.deltas.len() >= Self::MAX_DELTAS {
            return true;
        }
        match (&self.scene, &self.health_at_build) {
            (Some(scene), Some(at_build)) => self
                .config
                .refit_policy
                .should_rebuild(at_build, &refit::tree_health(scene)),
            _ => overlay > 0,
        }
    }

    /// Rebuild the main scene from the live window, with bounded in-call
    /// retry under the configured [`rtcore::fault::RetryPolicy`].  The new
    /// BVH is built *first* and the streaming state committed only on
    /// success: a failed build (only possible via fault injection — the
    /// inputs were validated finite on insert) leaves the old scene,
    /// overlays and tail untouched and returns `false`.
    fn rebuild_scene(&mut self) -> bool {
        let telemetry = self.telemetry.clone();
        let mut span = telemetry.span(PhaseKind::Rebuild);
        let counters_before = self.build_counters;
        let spheres: Vec<Sphere> = self
            .live
            .iter()
            .map(|&slot| {
                Sphere::new(
                    self.slots[slot as usize].point,
                    self.config.params.eps,
                    slot,
                )
            })
            .collect();
        let built = if spheres.is_empty() {
            None
        } else {
            let policy = self.config.rebuild_retry;
            let mut attempt = 0u32;
            loop {
                match self.try_build_scene(spheres.clone(), &telemetry) {
                    Ok(bvh) => break Some(bvh),
                    Err(_) => {
                        attempt += 1;
                        if !policy.allows_attempt(attempt) {
                            sat_bump(&mut self.stats.rebuild_failures, 1);
                            return false;
                        }
                        sat_bump(&mut self.stats.rebuild_retries, 1);
                    }
                }
            }
        };

        // Commit: every live sphere now lives in the (possibly empty) new
        // scene; overlays, the tail and retired ids are absorbed.
        for &slot in &self.live {
            self.slots[slot as usize].loc = Loc::Scene;
        }
        self.pending.clear();
        self.deltas.clear();
        self.wide_scene = None; // collapsed form follows the scene
        self.dead_in_scene = 0;
        self.free.append(&mut self.retiring_scene);
        self.free.append(&mut self.retiring_delta);
        match built {
            Some(bvh) => {
                self.build_counters += bvh.build_counters;
                sat_bump(&mut self.build_counters.rebuilds, 1);
                sat_bump(&mut self.stats.rebuilds, 1);
                self.health_at_build = Some(refit::tree_health(&bvh));
                self.scene = Some(bvh);
            }
            None => {
                self.scene = None;
                self.health_at_build = None;
            }
        }
        span.add_counters(self.build_counters - counters_before);
        true
    }

    /// One main-scene build attempt; the failpoint fires before any build
    /// work so a simulated failure costs nothing.
    fn try_build_scene(&mut self, spheres: Vec<Sphere>, telemetry: &Telemetry) -> Result<Bvh> {
        rtcore::fail_point!(self.fault, FaultSite::HlbvhBuild);
        LbvhBuilder {
            parallelism: self.config.build_parallelism,
            ..LbvhBuilder::default()
        }
        .build_with_telemetry(spheres, telemetry)
    }

    /// One delta-compaction build attempt (same failpoint site as the main
    /// rebuild: both are LBVH builds on the streaming path).
    fn try_build_delta(&mut self, spheres: Vec<Sphere>) -> Result<Bvh> {
        rtcore::fail_point!(self.fault, FaultSite::HlbvhBuild);
        LbvhBuilder::default().build(spheres)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// The one neighbour rule every query arm shares: `candidate` counts as
    /// a live ε-neighbour of the query at `origin` iff it is not the query
    /// itself, its centre lies in the closed ε-ball (squared-f32
    /// convention), and its slot is still alive.
    #[inline]
    fn is_live_neighbor(
        slots: &[Slot],
        exclude: u32,
        eps_sq: f32,
        candidate: u32,
        center: Point3,
        origin: Point3,
    ) -> bool {
        candidate != exclude
            && center.distance_squared(origin) <= eps_sq
            && slots[candidate as usize].alive
    }

    /// Exact live ε-neighbourhood of `point` (slot ids, `exclude` and
    /// retired slots filtered out): one counted traversal of the indexed
    /// scene plus an exact scan of the pending overlay.
    fn neighbors_of(&mut self, point: Point3, exclude: u32, out: &mut Vec<u32>, phase: Phase) {
        out.clear();
        let mut counters = WorkCounters::ZERO;
        sat_bump(&mut counters.rays, 1);
        let ray = Ray::epsilon_ray(point);
        let slots = &self.slots;
        let eps_sq = self.eps_sq;
        for tree in self.scene.iter().chain(self.deltas.iter()) {
            traverse(tree, &ray, &mut counters, |sphere, counters| {
                sat_bump(&mut counters.dist_comps, 1);
                if Self::is_live_neighbor(
                    slots,
                    exclude,
                    eps_sq,
                    sphere.point_index,
                    sphere.center,
                    point,
                ) {
                    out.push(sphere.point_index);
                }
                Traversal::Continue
            });
        }
        for &slot in &self.pending {
            sat_bump(&mut counters.dist_comps, 1);
            let center = slots[slot as usize].point;
            if Self::is_live_neighbor(slots, exclude, eps_sq, slot, center, point) {
                out.push(slot);
            }
        }
        match phase {
            Phase::Stage1 => self.stage1_counters += counters,
            Phase::Stage2 => self.stage2_counters += counters,
        }
    }

    // ------------------------------------------------------------------
    // Snapshot
    // ------------------------------------------------------------------

    /// Current clustering of the live window, in arrival order (position
    /// `i` corresponds to `window_points()[i]`).
    ///
    /// On the clean path this only materialises labels from the maintained
    /// state.  On the dirty path it first re-forms the core partition with
    /// a stage-2-only pass: O(1) epoch reset of the disjoint set, then one
    /// neighbourhood traversal per live core point — never a scene rebuild
    /// or a stage-1 recount.  A repeat snapshot of an *unchanged* window
    /// performs no counted work at all: the previous result is cached and
    /// returned directly (the dirty-window flag doubles as the cache
    /// invalidation).
    pub fn snapshot(&mut self) -> Clustering {
        if let Some(cached) = &self.snapshot_cache {
            self.stats.clean_snapshots += 1;
            return cached.clone();
        }
        if self.dirty {
            // Infallible without a cancel scope: the only early exit of the
            // repair is the per-packet cancel poll.
            let _ = self.reform_partition(None);
            self.stats.dirty_snapshots += 1;
        } else {
            self.stats.clean_snapshots += 1;
        }
        self.materialise_snapshot()
    }

    /// [`StreamingClusterer::snapshot`] under a deadline/cancellation
    /// scope.  The dirty-path repair polls `scope` once per
    /// `SNAPSHOT_PACKET`-ray packet; a trip surfaces as
    /// [`rtcore::Error::DeadlineExceeded`] carrying the repair work done so
    /// far, and the window stays **dirty**: nothing half-formed is ever
    /// served (the epoch disjoint-set resets in O(1) on the next repair,
    /// and border hints are validated on use, so a retried snapshot starts
    /// clean).  Clean and cached snapshots perform no counted work and
    /// cannot trip.
    pub fn snapshot_cancellable(&mut self, scope: &CancelScope) -> Result<Clustering> {
        if let Some(cached) = &self.snapshot_cache {
            self.stats.clean_snapshots += 1;
            return Ok(cached.clone());
        }
        if self.dirty {
            if scope.should_stop() {
                return Err(rtcore::Error::DeadlineExceeded {
                    partial: Box::new(WorkCounters::ZERO),
                });
            }
            self.reform_partition(Some(scope))?;
            self.stats.dirty_snapshots += 1;
        } else {
            self.stats.clean_snapshots += 1;
        }
        Ok(self.materialise_snapshot())
    }

    /// Materialise labels from the (clean) maintained state, in arrival
    /// order, and fill the snapshot cache.
    fn materialise_snapshot(&mut self) -> Clustering {
        let mut labels = Vec::with_capacity(self.live.len());
        let mut core_flags = Vec::with_capacity(self.live.len());
        let live: Vec<u32> = self.live.iter().copied().collect();
        for &slot in &live {
            let s = self.slots[slot as usize];
            core_flags.push(s.core);
            if s.core {
                labels.push(self.dsu.find(slot as usize) as i64);
            } else if self.hint_valid(s.point, s.hint) {
                // analyze-allow: lib-unwrap -- hint_valid returns true only when the hint is Some and still live
                let h = s.hint.expect("hint_valid checked Some");
                labels.push(self.dsu.find(h as usize) as i64);
            } else {
                labels.push(NOISE);
            }
            sat_bump(&mut self.stage2_counters.misc_ops, 1);
        }
        self.drain_dsu_ops();
        let clustering = Clustering::new(labels, core_flags);
        self.snapshot_cache = Some(clustering.clone());
        clustering
    }

    /// Rays per packet for the batched snapshot repair (bounds the size of
    /// the per-packet query lists the wavefront traversal keeps live).
    const SNAPSHOT_PACKET: usize = 512;

    /// The dirty-path repair: stage 2 re-run over the maintained core
    /// flags.
    ///
    /// The main indexed scene is walked by *all* core-point queries at once
    /// through the wide batched engine (collapsing it lazily, once per
    /// scene shape); the small delta BVHs and the pending tail are handled
    /// per query, exactly as the incremental path does.
    fn reform_partition(&mut self, cancel: Option<&CancelScope>) -> Result<()> {
        let counters_before = self.stage2_counters;
        self.dsu.reset();
        let cores: Vec<u32> = self
            .live
            .iter()
            .copied()
            .filter(|&slot| self.slots[slot as usize].core)
            .collect();
        self.ensure_wide_scene();
        // One packet at a time: the CSR neighbourhoods of at most
        // `SNAPSHOT_PACKET` core points are materialised at once (two flat
        // arrays, rebuilt in place each packet), then consumed, keeping
        // the repair's memory bounded regardless of window size.
        for start in (0..cores.len()).step_by(Self::SNAPSHOT_PACKET) {
            if cancel.is_some_and(|scope| scope.tripped()) {
                // The partition stays dirty; every union and hint applied so
                // far is harmless (the epoch DSU resets on the next repair,
                // hints are validated on use), so nothing wrong can be
                // served later.
                return Err(rtcore::Error::DeadlineExceeded {
                    partial: Box::new(self.stage2_counters - counters_before),
                });
            }
            let chunk = &cores[start..(start + Self::SNAPSHOT_PACKET).min(cores.len())];
            self.chunk_neighborhoods(chunk);
            let csr = std::mem::take(&mut self.repair_csr);
            for (k, &slot) in chunk.iter().enumerate() {
                for &q in csr.neighbors(k) {
                    if self.slots[q as usize].core {
                        self.dsu.union(slot as usize, q as usize);
                    } else {
                        let (qp, qh) = {
                            let sq = &self.slots[q as usize];
                            (sq.point, sq.hint)
                        };
                        if !self.hint_valid(qp, qh) {
                            self.slots[q as usize].hint = Some(slot);
                        }
                    }
                }
            }
            self.repair_csr = csr;
        }
        self.drain_dsu_ops();
        self.dirty = false;
        Ok(())
    }

    /// Collapse the main scene into the wide format if the batched snapshot
    /// engine is configured and no valid collapse is cached.  The collapse
    /// is device-build work.
    fn ensure_wide_scene(&mut self) {
        if self.config.snapshot_traversal == TraversalEngine::WideBatched
            && self.wide_scene.is_none()
        {
            if self.fault.fire(FaultSite::Bvh4Collapse) {
                // Degrade: this repair walks the binary scene per query —
                // identical answers, no wide collapse resident.
                return;
            }
            if let Some(scene) = &self.scene {
                let wide = WideBvh::from_binary_parallel(
                    scene,
                    self.config.build_parallelism.resolved(),
                    &self.telemetry,
                );
                self.build_counters += wide.collapse_counters;
                self.wide_scene = Some(wide);
            }
        }
    }

    /// Exact live ε-neighbourhoods of one packet of slots (self excluded),
    /// rebuilt into the reusable CSR scratch (`repair_csr`, rows
    /// index-aligned with `chunk`): the main scene answers the whole packet
    /// in one batched wide launch when so configured, deltas and the
    /// pending tail are scanned per query.  Hits collect as flat
    /// `(query, slot)` pairs and one counting-sort pass turns them into the
    /// packet's CSR rows — no per-query list ever exists, and every buffer
    /// (rays, pairs, traversal scratch, CSR) is grow-only across packets.
    /// Work is charged to stage 2.
    fn chunk_neighborhoods(&mut self, chunk: &[u32]) {
        let rays = &mut self.repair_rays;
        let pairs = &mut self.repair_pairs;
        rays.clear();
        pairs.clear();
        if chunk.is_empty() {
            self.repair_csr.clear();
            return;
        }

        let mut counters = WorkCounters::ZERO;
        sat_bump(&mut counters.rays, chunk.len() as u64);
        let eps_sq = self.eps_sq;
        let slots = &self.slots;
        rays.extend(
            chunk
                .iter()
                .map(|&slot| Ray::epsilon_ray(slots[slot as usize].point)),
        );

        // Main indexed scene.
        match (&self.wide_scene, &self.scene) {
            (Some(wide), _) if self.config.snapshot_traversal == TraversalEngine::WideBatched => {
                traverse_batch_with_scratch(
                    wide,
                    rays,
                    &mut self.repair_trav,
                    &mut counters,
                    |q, sphere, counters| {
                        sat_bump(&mut counters.dist_comps, 1);
                        if Self::is_live_neighbor(
                            slots,
                            chunk[q],
                            eps_sq,
                            sphere.point_index,
                            sphere.center,
                            rays[q].origin,
                        ) {
                            pairs.push((q as u32, sphere.point_index));
                        }
                        Traversal::Continue
                    },
                );
            }
            (_, Some(scene)) => {
                for (k, ray) in rays.iter().enumerate() {
                    traverse(scene, ray, &mut counters, |sphere, counters| {
                        sat_bump(&mut counters.dist_comps, 1);
                        if Self::is_live_neighbor(
                            slots,
                            chunk[k],
                            eps_sq,
                            sphere.point_index,
                            sphere.center,
                            ray.origin,
                        ) {
                            pairs.push((k as u32, sphere.point_index));
                        }
                        Traversal::Continue
                    });
                }
            }
            _ => {}
        }

        // Delta overlays and the unindexed tail, per query.
        for tree in &self.deltas {
            for (k, ray) in rays.iter().enumerate() {
                traverse(tree, ray, &mut counters, |sphere, counters| {
                    sat_bump(&mut counters.dist_comps, 1);
                    if Self::is_live_neighbor(
                        slots,
                        chunk[k],
                        eps_sq,
                        sphere.point_index,
                        sphere.center,
                        ray.origin,
                    ) {
                        pairs.push((k as u32, sphere.point_index));
                    }
                    Traversal::Continue
                });
            }
        }
        for &p in &self.pending {
            for (k, ray) in rays.iter().enumerate() {
                sat_bump(&mut counters.dist_comps, 1);
                let center = slots[p as usize].point;
                if Self::is_live_neighbor(slots, chunk[k], eps_sq, p, center, ray.origin) {
                    pairs.push((k as u32, p));
                }
            }
        }
        self.stage2_counters += counters;
        self.repair_csr.rebuild_from_pairs(chunk.len(), pairs);
    }
}

/// Which phase a query's work is charged to.
#[derive(Debug, Clone, Copy)]
enum Phase {
    Stage1,
    Stage2,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdbscan::metrics::same_clustering;
    use rtdbscan::{ClassicDbscan, DbscanParams};

    fn config(eps: f32, min_pts: usize, window: WindowPolicy) -> StreamingConfig {
        StreamingConfig::new(DbscanParams::new(eps, min_pts).unwrap(), window)
    }

    fn timestamped(points: &[Point3], start: f64) -> Vec<(Point3, f64)> {
        points
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, start + i as f64))
            .collect()
    }

    /// Oracle check: the snapshot must be a valid DBSCAN clustering of the
    /// window contents.
    fn assert_matches_classic(clusterer: &mut StreamingClusterer) {
        let points = clusterer.window_points();
        let params = clusterer.config().params;
        let snapshot = clusterer.snapshot();
        let reference = ClassicDbscan::cluster(&points, params).unwrap();
        assert_eq!(reference.core, snapshot.core, "core flags diverged");
        assert!(
            same_clustering(&reference, &snapshot, &points, params),
            "partition diverged"
        );
    }

    #[test]
    fn empty_and_single_point_snapshots() {
        let mut c = StreamingClusterer::new(config(1.0, 2, WindowPolicy::Count(10))).unwrap();
        assert!(c.is_empty());
        assert!(c.snapshot().is_empty());
        c.ingest(&[(Point3::new_2d(0.0, 0.0), 0.0)]).unwrap();
        let s = c.snapshot();
        assert_eq!(s.len(), 1);
        assert_eq!(s.noise_count(), 1);
    }

    #[test]
    fn insert_only_stream_matches_classic_at_every_batch() {
        let mut c = StreamingClusterer::new(config(1.2, 3, WindowPolicy::Count(10_000))).unwrap();
        // Three drifting blobs plus noise, fed in batches.
        let mut t = 0.0;
        for wave in 0..6 {
            let mut batch = Vec::new();
            for i in 0..40 {
                let cx = (wave % 3) as f32 * 8.0;
                let angle = i as f32 * 0.37 + wave as f32;
                let r = 0.9 * ((i % 7) as f32 / 7.0);
                batch.push((Point3::new_2d(cx + r * angle.cos(), r * angle.sin()), t));
                t += 1.0;
            }
            batch.push((Point3::new_2d(100.0 + wave as f32 * 50.0, -50.0), t));
            c.ingest(&batch).unwrap();
            assert_matches_classic(&mut c);
        }
        assert_eq!(c.stats().evicted, 0);
        assert!(c.stats().clean_snapshots > 0, "insert-only must stay clean");
    }

    #[test]
    fn count_window_slides_and_stays_correct() {
        let mut c = StreamingClusterer::new(config(1.0, 2, WindowPolicy::Count(30))).unwrap();
        for wave in 0..10 {
            let pts: Vec<Point3> = (0..12)
                .map(|i| {
                    Point3::new_2d(
                        wave as f32 * 3.0 + (i % 4) as f32 * 0.4,
                        (i / 4) as f32 * 0.4,
                    )
                })
                .collect();
            c.ingest(&timestamped(&pts, wave as f64 * 100.0)).unwrap();
            assert!(c.len() <= 30);
            assert_matches_classic(&mut c);
        }
        assert!(c.stats().evicted > 0);
        assert!(c.stats().dirty_snapshots > 0, "slides retire core points");
    }

    #[test]
    fn time_window_expires_old_points() {
        let mut c = StreamingClusterer::new(config(1.0, 2, WindowPolicy::Time(10.0))).unwrap();
        let old: Vec<Point3> = (0..8)
            .map(|i| Point3::new_2d(i as f32 * 0.3, 0.0))
            .collect();
        c.ingest(&timestamped(&old, 0.0)).unwrap();
        assert_eq!(c.len(), 8);
        assert_matches_classic(&mut c);

        // 50 seconds later everything old is outside the horizon.
        let fresh: Vec<Point3> = (0..6)
            .map(|i| Point3::new_2d(40.0 + i as f32 * 0.3, 0.0))
            .collect();
        c.ingest(&timestamped(&fresh, 50.0)).unwrap();
        assert_eq!(c.len(), 6);
        let points = c.window_points();
        assert!(points.iter().all(|p| p.x >= 40.0));
        assert_matches_classic(&mut c);
    }

    #[test]
    fn time_window_boundary_age_equal_to_horizon_is_evicted() {
        // Horizon 10: a point aged exactly 10 must be out, one aged just
        // under must stay, in the same ingest call.
        let mut c = StreamingClusterer::new(config(1.0, 2, WindowPolicy::Time(10.0))).unwrap();
        c.ingest(&[
            (Point3::new_2d(0.0, 0.0), 0.0), // age 10 at t=10 → evicted
            (Point3::new_2d(1.0, 0.0), 0.5), // age 9.5 at t=10 → kept
            (Point3::new_2d(2.0, 0.0), 5.0), // age 5 at t=10 → kept
        ])
        .unwrap();
        assert_eq!(c.len(), 3);
        c.ingest(&[(Point3::new_2d(3.0, 0.0), 10.0)]).unwrap();
        assert_eq!(c.len(), 3, "exact-boundary point must be evicted");
        let xs: Vec<f32> = c.window_points().iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![1.0, 2.0, 3.0]);
        assert_matches_classic(&mut c);

        // The convention must hold when several points share the boundary
        // timestamp exactly.
        let mut c = StreamingClusterer::new(config(1.0, 2, WindowPolicy::Time(10.0))).unwrap();
        c.ingest(&[
            (Point3::new_2d(0.0, 0.0), 0.0),
            (Point3::new_2d(0.5, 0.0), 0.0),
            (Point3::new_2d(9.0, 0.0), 10.0),
        ])
        .unwrap();
        assert_eq!(c.len(), 1, "both boundary-aged points leave together");
        assert_matches_classic(&mut c);
    }

    #[test]
    fn wide_and_binary_snapshot_paths_agree() {
        let params = DbscanParams::new(1.0, 2).unwrap();
        let make = |engine| {
            let mut cfg = StreamingConfig::new(params, WindowPolicy::Count(60));
            cfg.snapshot_traversal = engine;
            StreamingClusterer::new(cfg).unwrap()
        };
        let mut wide = make(rtcore::pipeline::TraversalEngine::WideBatched);
        let mut binary = make(rtcore::pipeline::TraversalEngine::Binary);
        for wave in 0..8 {
            let pts: Vec<Point3> = (0..20)
                .map(|i| {
                    Point3::new_2d(
                        wave as f32 * 2.0 + (i % 5) as f32 * 0.45,
                        (i / 5) as f32 * 0.45,
                    )
                })
                .collect();
            let batch = timestamped(&pts, wave as f64 * 50.0);
            wide.ingest(&batch).unwrap();
            binary.ingest(&batch).unwrap();
            let a = wide.snapshot();
            let b = binary.snapshot();
            assert_eq!(a.core, b.core, "wave {wave}");
            assert_eq!(a.canonicalize(), b.canonicalize(), "wave {wave}");
            assert_matches_classic(&mut wide);
        }
        // Slides retired core points, so the wide repair path really ran …
        assert!(wide.stats().dirty_snapshots > 0);
        let (_, _, stage2) = wide.phase_counters();
        assert!(stage2.wide_node_visits > 0, "batched repair engaged");
        assert!(stage2.batched_launches > 0);
        // … and the binary oracle never touched wide nodes.
        let (_, _, stage2_bin) = binary.phase_counters();
        assert_eq!(stage2_bin.wide_node_visits, 0);
    }

    #[test]
    fn heavy_sliding_exercises_refit_and_rebuild() {
        let mut cfg = config(0.8, 4, WindowPolicy::Count(160));
        cfg.refit_dead_fraction = 0.02;
        cfg.max_pending_fraction = 0.5;
        let mut c = StreamingClusterer::new(cfg).unwrap();
        for wave in 0..25 {
            let pts: Vec<Point3> = (0..40)
                .map(|i| {
                    let h = (wave * 97 + i * 31) as u64;
                    Point3::new_2d(
                        (wave as f32) * 1.5 + ((h >> 3) & 7) as f32 * 0.25,
                        ((h >> 7) & 7) as f32 * 0.25,
                    )
                })
                .collect();
            c.ingest(&timestamped(&pts, wave as f64 * 1000.0)).unwrap();
            if wave % 5 == 4 {
                assert_matches_classic(&mut c);
            }
        }
        let stats = c.stats();
        assert!(stats.refits > 0, "expected refit passes: {stats:?}");
        assert!(stats.rebuilds > 1, "expected rebuilds: {stats:?}");
        let counters = c.counters();
        assert!(counters.refits > 0);
        assert!(counters.rebuilds > 1);
        assert!(counters.refit_node_ops > 0);
    }

    #[test]
    fn border_points_attach_and_detach_across_slides() {
        // A chain where the middle point is border to both sides, then the
        // left side ages out.
        let mut c = StreamingClusterer::new(config(1.0, 2, WindowPolicy::Count(5))).unwrap();
        c.ingest(&[
            (Point3::new_2d(0.0, 0.0), 0.0),
            (Point3::new_2d(0.8, 0.0), 1.0),
            (Point3::new_2d(1.6, 0.0), 2.0),
            (Point3::new_2d(2.4, 0.0), 3.0),
            (Point3::new_2d(3.2, 0.0), 4.0),
        ])
        .unwrap();
        assert_matches_classic(&mut c);
        // Slide: two new isolated points push out the two leftmost.
        c.ingest(&[
            (Point3::new_2d(50.0, 0.0), 5.0),
            (Point3::new_2d(60.0, 0.0), 6.0),
        ])
        .unwrap();
        assert_matches_classic(&mut c);
    }

    #[test]
    fn duplicate_coordinates_are_handled() {
        let mut c = StreamingClusterer::new(config(0.5, 5, WindowPolicy::Count(100))).unwrap();
        let mut batch = Vec::new();
        for i in 0..30 {
            batch.push((Point3::new_2d((i % 3) as f32 * 0.1, 0.0), i as f64));
        }
        c.ingest(&batch).unwrap();
        assert_matches_classic(&mut c);
    }

    #[test]
    fn phase_counters_and_reports_are_populated() {
        let mut c = StreamingClusterer::new(config(1.0, 2, WindowPolicy::Count(50))).unwrap();
        let pts: Vec<Point3> = (0..60)
            .map(|i| Point3::new_2d(i as f32 * 0.4, 0.0))
            .collect();
        let report = c.ingest(&timestamped(&pts, 0.0)).unwrap();
        assert_eq!(report.inserted, 60);
        assert_eq!(report.evicted, 10);
        let _ = c.snapshot();
        let (build, stage1, stage2) = c.phase_counters();
        assert!(build.build_prims > 0, "scene was built");
        assert!(stage1.rays > 0, "ingest queries are charged to stage 1");
        assert!(stage1.dist_comps > 0);
        assert!(
            stage2.misc_ops > 0,
            "label materialisation charged to stage 2"
        );
        assert!(c.device_bytes() > 0);
        assert_eq!(c.stats().ingested, 60);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let params = DbscanParams::new(1.0, 2).unwrap();
        assert!(
            StreamingClusterer::new(StreamingConfig::new(params, WindowPolicy::Count(0))).is_err()
        );
        let bad = StreamingConfig {
            max_pending_fraction: f32::NAN,
            ..StreamingConfig::new(params, WindowPolicy::Count(5))
        };
        assert!(StreamingClusterer::new(bad).is_err());
    }

    #[test]
    fn non_finite_input_is_rejected_without_state_change() {
        let mut c = StreamingClusterer::new(config(1.0, 2, WindowPolicy::Count(10))).unwrap();
        c.ingest(&[(Point3::new_2d(0.0, 0.0), 0.0)]).unwrap();
        let before = c.stats();
        assert!(c
            .ingest(&[
                (Point3::new_2d(1.0, 0.0), 1.0),
                (Point3::new_2d(f32::NAN, 0.0), 2.0),
            ])
            .is_err());
        assert!(c
            .ingest(&[(Point3::new_2d(1.0, 0.0), f64::INFINITY)])
            .is_err());
        assert_eq!(c.stats(), before, "failed ingest must not mutate state");
        assert_eq!(c.len(), 1);
        let _ = c.snapshot();
    }

    #[test]
    fn snapshot_is_idempotent() {
        let mut c = StreamingClusterer::new(config(1.0, 2, WindowPolicy::Count(40))).unwrap();
        let pts: Vec<Point3> = (0..30)
            .map(|i| Point3::new_2d((i % 10) as f32 * 0.5, (i / 10) as f32 * 0.5))
            .collect();
        c.ingest(&timestamped(&pts, 0.0)).unwrap();
        let a = c.snapshot();
        let b = c.snapshot();
        assert_eq!(a.canonicalize(), b.canonicalize());
    }

    #[test]
    fn clean_repeat_snapshots_are_cached_and_cost_nothing() {
        // Slide the window so the first snapshot takes the dirty repair
        // path, then snapshot repeatedly without ingesting.
        let mut c = StreamingClusterer::new(config(1.0, 2, WindowPolicy::Count(20))).unwrap();
        for wave in 0..4 {
            let pts: Vec<Point3> = (0..10)
                .map(|i| Point3::new_2d(wave as f32 * 2.0 + (i % 5) as f32 * 0.4, 0.0))
                .collect();
            c.ingest(&timestamped(&pts, wave as f64 * 100.0)).unwrap();
        }
        let first = c.snapshot();
        let counters_after_first = c.counters();
        let stats_after_first = c.stats();
        let second = c.snapshot();
        let third = c.snapshot();
        // Identical output (bit-identical, not just equivalent) …
        assert_eq!(first.labels, second.labels);
        assert_eq!(first.core, second.core);
        assert_eq!(first.labels, third.labels);
        // … at exactly zero additional counted work …
        assert_eq!(counters_after_first, c.counters());
        // … with the repeats recorded as clean snapshots.
        assert_eq!(
            c.stats().clean_snapshots,
            stats_after_first.clean_snapshots + 2
        );
        assert_eq!(c.stats().dirty_snapshots, stats_after_first.dirty_snapshots);

        // Ingesting anything invalidates the cache again.
        c.ingest(&[(Point3::new_2d(50.0, 0.0), 1000.0)]).unwrap();
        let after = c.snapshot();
        assert_ne!(first.len(), 0);
        assert_eq!(after.len(), c.len());
        assert!(c.counters().misc_ops > counters_after_first.misc_ops);
    }

    #[test]
    fn robustness_config_knobs_are_validated() {
        use rtcore::fault::{FaultPlan, MemoryBudget, RetryPolicy};
        let params = DbscanParams::new(1.0, 2).unwrap();
        let good = StreamingConfig::new(params, WindowPolicy::Count(10));
        assert!(StreamingClusterer::new(StreamingConfig {
            memory_budget: MemoryBudget::Bytes(0),
            ..good
        })
        .is_err());
        assert!(StreamingClusterer::new(StreamingConfig {
            rebuild_retry: RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
            ..good
        })
        .is_err());
        assert!(StreamingClusterer::new(StreamingConfig {
            fault: FaultPlan::Seeded { seed: 1, one_in: 0 },
            ..good
        })
        .is_err());
        assert!(StreamingClusterer::new(StreamingConfig {
            memory_budget: MemoryBudget::Bytes(1 << 20),
            fault: FaultPlan::Seeded { seed: 1, one_in: 7 },
            ..good
        })
        .is_ok());
    }

    #[test]
    fn over_budget_ingest_refuses_without_touching_window_state() {
        use rtcore::fault::MemoryBudget;
        let mut c = StreamingClusterer::new(StreamingConfig {
            memory_budget: MemoryBudget::Bytes(1),
            ..config(1.0, 2, WindowPolicy::Count(100))
        })
        .unwrap();
        // The empty clusterer holds no device bytes, so the first ingest is
        // admitted; it leaves the state over the (absurd) 1-byte budget.
        let pts: Vec<Point3> = (0..20)
            .map(|i| Point3::new_2d(i as f32 * 0.4, 0.0))
            .collect();
        c.ingest(&timestamped(&pts, 0.0)).unwrap();
        let len_before = c.len();
        let snapshot_before = c.snapshot();
        match c.ingest(&[(Point3::new_2d(50.0, 0.0), 100.0)]) {
            Err(rtcore::Error::OverBudget { requested, budget }) => {
                assert_eq!(budget, 1);
                assert!(requested > 1);
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
        // The refused ingest changed nothing the user can observe.
        assert_eq!(c.len(), len_before);
        let after = c.snapshot();
        assert_eq!(snapshot_before.labels, after.labels);
        assert_eq!(snapshot_before.core, after.core);
        assert_matches_classic(&mut c);
    }

    #[test]
    fn snapshot_cancellable_matches_snapshot_and_trips_cleanly() {
        use rtcore::fault::{CancelScope, CancelToken};
        // Slide the window so snapshots take the dirty repair path.
        let mut c = StreamingClusterer::new(config(1.0, 2, WindowPolicy::Count(20))).unwrap();
        for wave in 0..4 {
            let pts: Vec<Point3> = (0..10)
                .map(|i| Point3::new_2d(wave as f32 * 2.0 + (i % 5) as f32 * 0.4, 0.0))
                .collect();
            c.ingest(&timestamped(&pts, wave as f64 * 100.0)).unwrap();
        }

        // A pre-cancelled scope refuses before repairing; the window stays
        // dirty and nothing half-formed leaks.
        let token = CancelToken::new();
        token.cancel();
        let scope = CancelScope::with_token(&token);
        match c.snapshot_cancellable(&scope) {
            Err(rtcore::Error::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }

        // An unconstrained scope completes and matches the plain snapshot
        // bit for bit (same repair, same labels).
        let relaxed = c.snapshot_cancellable(&CancelScope::none()).unwrap();
        let plain = c.snapshot();
        assert_eq!(relaxed.labels, plain.labels);
        assert_eq!(relaxed.core, plain.core);
        assert_matches_classic(&mut c);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_build_failures_degrade_gracefully_and_recover() {
        use rtcore::fault::FaultPlan;
        // Roughly one in three builds fails; the clusterer must stay exact
        // throughout (old scene + overlays + tail keep answering) and the
        // retry/backoff machinery must eventually rebuild.
        let mut c = StreamingClusterer::new(StreamingConfig {
            fault: FaultPlan::Seeded {
                seed: 42,
                one_in: 3,
            },
            max_pending_fraction: 0.05,
            ..config(1.0, 2, WindowPolicy::Count(60))
        })
        .unwrap();
        for wave in 0..12 {
            let pts: Vec<Point3> = (0..15)
                .map(|i| Point3::new_2d(wave as f32 * 1.5 + (i % 5) as f32 * 0.4, 0.0))
                .collect();
            c.ingest(&timestamped(&pts, wave as f64 * 100.0)).unwrap();
            assert_matches_classic(&mut c);
        }
        let stats = c.stats();
        assert!(
            stats.rebuild_retries + stats.rebuild_failures + stats.compaction_deferrals > 0,
            "the seeded plan must have fired at least once: {stats:?}"
        );
        assert!(stats.rebuilds > 0, "some rebuilds must still succeed");
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn permanent_build_failure_stays_exact_forever() {
        use rtcore::fault::FaultPlan;
        // Every build fails: the scene is never (re)built, every query runs
        // over the exact tail scan — slow, but never wrong and never a
        // panic.
        let mut c = StreamingClusterer::new(StreamingConfig {
            fault: FaultPlan::Seeded { seed: 7, one_in: 1 },
            ..config(1.0, 2, WindowPolicy::Count(40))
        })
        .unwrap();
        for wave in 0..6 {
            let pts: Vec<Point3> = (0..12)
                .map(|i| Point3::new_2d(wave as f32 * 2.0 + (i % 4) as f32 * 0.4, 0.0))
                .collect();
            c.ingest(&timestamped(&pts, wave as f64 * 100.0)).unwrap();
            assert_matches_classic(&mut c);
        }
        let stats = c.stats();
        assert_eq!(stats.rebuilds, 0, "no build can succeed under one_in=1");
        assert!(stats.rebuild_failures > 0);
        assert!(stats.compaction_deferrals > 0);
    }
}

//! Work counters.
//!
//! Two flavours are provided:
//!
//! * [`WorkCounters`] — a plain value type.  Traversals return one per query
//!   and callers fold them; this keeps the hot path free of atomics, which is
//!   the pattern the hpc guides recommend for rayon reductions.
//! * [`SharedCounters`] — an atomic accumulator for contexts where a shared
//!   sink is more convenient (for example the pipeline's parallel launch).

use std::ops::{Add, AddAssign};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-operation work counts accumulated while building and traversing
/// scenes or while running a clustering algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Rays launched (one per fixed-radius query).
    pub rays: u64,
    /// Internal BVH nodes visited during traversal.
    pub node_visits: u64,
    /// Ray–AABB slab tests performed.
    pub aabb_tests: u64,
    /// Primitive intersection-program invocations (ray–sphere tests).
    pub prim_tests: u64,
    /// AnyHit-program invocations (only used by the triangle-geometry
    /// ablation of Section VI-C; the sphere path never calls AnyHit).
    pub anyhit_invocations: u64,
    /// Euclidean distance computations (the filter inside the intersection
    /// program, and all distance work done by non-RT baselines).
    pub dist_comps: u64,
    /// Primitives processed by a BVH / index build.
    pub build_prims: u64,
    /// Scatter operations performed by the builder's radix sort.
    pub build_sort_ops: u64,
    /// Node emission / refit operations performed by a builder.
    pub build_node_ops: u64,
    /// Primitives merged away by the compaction pass.
    pub compaction_merges: u64,
    /// Union operations on a disjoint-set structure.
    pub union_ops: u64,
    /// Find (root lookup) operations on a disjoint-set structure.
    pub find_ops: u64,
    /// Neighbour-list entries appended (G-DBSCAN graph construction, BFS
    /// frontier pushes, chain expansions …).
    pub list_ops: u64,
    /// Miscellaneous per-point bookkeeping operations.
    pub misc_ops: u64,
    /// Node AABB recomputations performed by an in-place BVH refit.
    pub refit_node_ops: u64,
    /// Refit passes performed (the cheap branch of the streaming update
    /// policy).
    pub refits: u64,
    /// Full acceleration-structure rebuilds performed (the expensive branch
    /// of the streaming update policy).
    pub rebuilds: u64,
}

impl WorkCounters {
    /// A counter set with every field zero.
    pub const ZERO: WorkCounters = WorkCounters {
        rays: 0,
        node_visits: 0,
        aabb_tests: 0,
        prim_tests: 0,
        anyhit_invocations: 0,
        dist_comps: 0,
        build_prims: 0,
        build_sort_ops: 0,
        build_node_ops: 0,
        compaction_merges: 0,
        union_ops: 0,
        find_ops: 0,
        list_ops: 0,
        misc_ops: 0,
        refit_node_ops: 0,
        refits: 0,
        rebuilds: 0,
    };

    /// Sum of all traversal-side counters (everything except build work).
    pub fn traversal_ops(&self) -> u64 {
        self.rays
            + self.node_visits
            + self.aabb_tests
            + self.prim_tests
            + self.anyhit_invocations
            + self.dist_comps
    }

    /// Sum of all build-side counters.
    pub fn build_ops(&self) -> u64 {
        self.build_prims + self.build_sort_ops + self.build_node_ops + self.compaction_merges
    }

    /// Sum of all refit-side counters (charged separately from full builds
    /// so the streaming update policy's two branches stay distinguishable —
    /// in particular, a refit never pays the fixed pipeline-setup cost).
    pub fn refit_ops(&self) -> u64 {
        self.refit_node_ops + self.refits
    }

    /// Total work units of any kind.
    pub fn total_ops(&self) -> u64 {
        self.traversal_ops()
            + self.build_ops()
            + self.refit_ops()
            + self.union_ops
            + self.find_ops
            + self.list_ops
            + self.misc_ops
            + self.rebuilds
    }
}

impl Add for WorkCounters {
    type Output = WorkCounters;
    fn add(self, rhs: WorkCounters) -> WorkCounters {
        WorkCounters {
            rays: self.rays + rhs.rays,
            node_visits: self.node_visits + rhs.node_visits,
            aabb_tests: self.aabb_tests + rhs.aabb_tests,
            prim_tests: self.prim_tests + rhs.prim_tests,
            anyhit_invocations: self.anyhit_invocations + rhs.anyhit_invocations,
            dist_comps: self.dist_comps + rhs.dist_comps,
            build_prims: self.build_prims + rhs.build_prims,
            build_sort_ops: self.build_sort_ops + rhs.build_sort_ops,
            build_node_ops: self.build_node_ops + rhs.build_node_ops,
            compaction_merges: self.compaction_merges + rhs.compaction_merges,
            union_ops: self.union_ops + rhs.union_ops,
            find_ops: self.find_ops + rhs.find_ops,
            list_ops: self.list_ops + rhs.list_ops,
            misc_ops: self.misc_ops + rhs.misc_ops,
            refit_node_ops: self.refit_node_ops + rhs.refit_node_ops,
            refits: self.refits + rhs.refits,
            rebuilds: self.rebuilds + rhs.rebuilds,
        }
    }
}

impl AddAssign for WorkCounters {
    fn add_assign(&mut self, rhs: WorkCounters) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for WorkCounters {
    fn sum<I: Iterator<Item = WorkCounters>>(iter: I) -> Self {
        iter.fold(WorkCounters::ZERO, |a, b| a + b)
    }
}

/// Atomic counter sink for parallel accumulation.
///
/// Field meanings match [`WorkCounters`]; use [`SharedCounters::add`] to fold
/// a per-thread [`WorkCounters`] in and [`SharedCounters::snapshot`] to read
/// the totals back out.
#[derive(Debug, Default)]
pub struct SharedCounters {
    rays: AtomicU64,
    node_visits: AtomicU64,
    aabb_tests: AtomicU64,
    prim_tests: AtomicU64,
    anyhit_invocations: AtomicU64,
    dist_comps: AtomicU64,
    build_prims: AtomicU64,
    build_sort_ops: AtomicU64,
    build_node_ops: AtomicU64,
    compaction_merges: AtomicU64,
    union_ops: AtomicU64,
    find_ops: AtomicU64,
    list_ops: AtomicU64,
    misc_ops: AtomicU64,
    refit_node_ops: AtomicU64,
    refits: AtomicU64,
    rebuilds: AtomicU64,
}

impl SharedCounters {
    /// Create a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold a per-thread counter set into the shared totals.
    ///
    /// Relaxed ordering is sufficient: the counters carry no synchronisation
    /// meaning, they are only summed after the parallel region joins.
    pub fn add(&self, c: &WorkCounters) {
        self.rays.fetch_add(c.rays, Ordering::Relaxed);
        self.node_visits.fetch_add(c.node_visits, Ordering::Relaxed);
        self.aabb_tests.fetch_add(c.aabb_tests, Ordering::Relaxed);
        self.prim_tests.fetch_add(c.prim_tests, Ordering::Relaxed);
        self.anyhit_invocations
            .fetch_add(c.anyhit_invocations, Ordering::Relaxed);
        self.dist_comps.fetch_add(c.dist_comps, Ordering::Relaxed);
        self.build_prims.fetch_add(c.build_prims, Ordering::Relaxed);
        self.build_sort_ops
            .fetch_add(c.build_sort_ops, Ordering::Relaxed);
        self.build_node_ops
            .fetch_add(c.build_node_ops, Ordering::Relaxed);
        self.compaction_merges
            .fetch_add(c.compaction_merges, Ordering::Relaxed);
        self.union_ops.fetch_add(c.union_ops, Ordering::Relaxed);
        self.find_ops.fetch_add(c.find_ops, Ordering::Relaxed);
        self.list_ops.fetch_add(c.list_ops, Ordering::Relaxed);
        self.misc_ops.fetch_add(c.misc_ops, Ordering::Relaxed);
        self.refit_node_ops
            .fetch_add(c.refit_node_ops, Ordering::Relaxed);
        self.refits.fetch_add(c.refits, Ordering::Relaxed);
        self.rebuilds.fetch_add(c.rebuilds, Ordering::Relaxed);
    }

    /// Read the accumulated totals.
    pub fn snapshot(&self) -> WorkCounters {
        WorkCounters {
            rays: self.rays.load(Ordering::Relaxed),
            node_visits: self.node_visits.load(Ordering::Relaxed),
            aabb_tests: self.aabb_tests.load(Ordering::Relaxed),
            prim_tests: self.prim_tests.load(Ordering::Relaxed),
            anyhit_invocations: self.anyhit_invocations.load(Ordering::Relaxed),
            dist_comps: self.dist_comps.load(Ordering::Relaxed),
            build_prims: self.build_prims.load(Ordering::Relaxed),
            build_sort_ops: self.build_sort_ops.load(Ordering::Relaxed),
            build_node_ops: self.build_node_ops.load(Ordering::Relaxed),
            compaction_merges: self.compaction_merges.load(Ordering::Relaxed),
            union_ops: self.union_ops.load(Ordering::Relaxed),
            find_ops: self.find_ops.load(Ordering::Relaxed),
            list_ops: self.list_ops.load(Ordering::Relaxed),
            misc_ops: self.misc_ops.load(Ordering::Relaxed),
            refit_node_ops: self.refit_node_ops.load(Ordering::Relaxed),
            refits: self.refits.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.rays.store(0, Ordering::Relaxed);
        self.node_visits.store(0, Ordering::Relaxed);
        self.aabb_tests.store(0, Ordering::Relaxed);
        self.prim_tests.store(0, Ordering::Relaxed);
        self.anyhit_invocations.store(0, Ordering::Relaxed);
        self.dist_comps.store(0, Ordering::Relaxed);
        self.build_prims.store(0, Ordering::Relaxed);
        self.build_sort_ops.store(0, Ordering::Relaxed);
        self.build_node_ops.store(0, Ordering::Relaxed);
        self.compaction_merges.store(0, Ordering::Relaxed);
        self.union_ops.store(0, Ordering::Relaxed);
        self.find_ops.store(0, Ordering::Relaxed);
        self.list_ops.store(0, Ordering::Relaxed);
        self.misc_ops.store(0, Ordering::Relaxed);
        self.refit_node_ops.store(0, Ordering::Relaxed);
        self.refits.store(0, Ordering::Relaxed);
        self.rebuilds.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WorkCounters {
        WorkCounters {
            rays: 1,
            node_visits: 2,
            aabb_tests: 3,
            prim_tests: 4,
            anyhit_invocations: 14,
            dist_comps: 5,
            build_prims: 6,
            build_sort_ops: 7,
            build_node_ops: 8,
            compaction_merges: 9,
            union_ops: 10,
            find_ops: 11,
            list_ops: 12,
            misc_ops: 13,
            refit_node_ops: 15,
            refits: 16,
            rebuilds: 17,
        }
    }

    #[test]
    fn addition_is_fieldwise() {
        let a = sample();
        let b = sample();
        let c = a + b;
        assert_eq!(c.rays, 2);
        assert_eq!(c.misc_ops, 26);
        let mut d = WorkCounters::ZERO;
        d += a;
        assert_eq!(d, a);
    }

    #[test]
    fn aggregate_helpers() {
        let c = sample();
        assert_eq!(c.traversal_ops(), 1 + 2 + 3 + 4 + 14 + 5);
        assert_eq!(c.build_ops(), 6 + 7 + 8 + 9);
        assert_eq!(c.refit_ops(), 15 + 16);
        assert_eq!(c.total_ops(), (1..=17).sum::<u64>());
    }

    #[test]
    fn sum_over_iterator() {
        let total: WorkCounters = (0..4).map(|_| sample()).sum();
        assert_eq!(total.rays, 4);
        assert_eq!(total.find_ops, 44);
    }

    #[test]
    fn shared_counters_accumulate_and_reset() {
        let shared = SharedCounters::new();
        shared.add(&sample());
        shared.add(&sample());
        let snap = shared.snapshot();
        assert_eq!(snap.rays, 2);
        assert_eq!(snap.union_ops, 20);
        shared.reset();
        assert_eq!(shared.snapshot(), WorkCounters::ZERO);
    }

    #[test]
    fn shared_counters_parallel_accumulation() {
        use std::sync::Arc;
        let shared = Arc::new(SharedCounters::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.add(&WorkCounters {
                            rays: 1,
                            ..WorkCounters::ZERO
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.snapshot().rays, 8000);
    }
}

//! 3-D points.

use super::Vec3;
use std::ops::{Add, Index, Sub};

/// A position in 3-D space.
///
/// Datasets handed to the RT pipeline are slices of `Point3`.  2-D datasets
/// (3DRoad, Porto, NGSIM in the paper) set `z = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    /// x coordinate.
    pub x: f32,
    /// y coordinate.
    pub y: f32,
    /// z coordinate.
    pub z: f32,
}

impl Point3 {
    /// The origin.
    pub const ORIGIN: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Construct a point from coordinates.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Point3 { x, y, z }
    }

    /// Construct a 2-D point embedded in 3-D with `z = 0`.
    ///
    /// This mirrors Section IV of the paper: "As Optix only accepts 3D
    /// inputs, we set the z-dimension to 0 for 2D datasets".
    #[inline]
    pub const fn new_2d(x: f32, y: f32) -> Self {
        Point3 { x, y, z: 0.0 }
    }

    /// Interpret the point as a displacement vector from the origin.
    #[inline]
    pub fn to_vec(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Construct a point from a displacement vector.
    #[inline]
    pub fn from_vec(v: Vec3) -> Self {
        Point3::new(v.x, v.y, v.z)
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(self, other: Point3) -> Point3 {
        Point3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(self, other: Point3) -> Point3 {
        Point3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// True if every coordinate is finite (no NaN / infinity).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn distance_squared(self, other: Point3) -> f32 {
        super::distance_squared(self, other)
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Point3) -> f32 {
        super::distance(self, other)
    }

    /// Bit-exact coordinate key, used by the primitive-compaction pass to
    /// detect exactly coincident points.
    ///
    /// Negative zero is normalised to positive zero so `-0.0` and `0.0`
    /// compact together.
    #[inline]
    pub fn bit_key(self) -> (u32, u32, u32) {
        #[inline]
        fn canon(v: f32) -> u32 {
            // Normalise -0.0 to +0.0; NaN payloads are left as-is (callers
            // validate finiteness before building scenes).
            if v == 0.0 {
                0.0f32.to_bits()
            } else {
                v.to_bits()
            }
        }
        (canon(self.x), canon(self.y), canon(self.z))
    }
}

impl Index<usize> for Point3 {
    type Output = f32;

    /// Access coordinates by axis index (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    /// Panics if `axis > 2`.
    #[inline]
    fn index(&self, axis: usize) -> &f32 {
        match axis {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            // analyze-allow: lib-unwrap -- Index impls cannot return Result; the slice-like bounds panic is documented under # Panics
            _ => panic!("axis index out of range: {axis}"),
        }
    }
}

impl Add<Vec3> for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, rhs: Vec3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub<Vec3> for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Sub<Point3> for Point3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Point3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_2d_embedding() {
        let p = Point3::new(1.0, 2.0, 3.0);
        assert_eq!((p.x, p.y, p.z), (1.0, 2.0, 3.0));
        let q = Point3::new_2d(4.0, 5.0);
        assert_eq!(q.z, 0.0);
        assert_eq!(Point3::ORIGIN, Point3::new(0.0, 0.0, 0.0));
    }

    #[test]
    fn point_vector_arithmetic() {
        let p = Point3::new(1.0, 1.0, 1.0);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(p + v, Point3::new(2.0, 3.0, 4.0));
        assert_eq!((p + v) - v, p);
        assert_eq!(Point3::new(2.0, 3.0, 4.0) - p, v);
    }

    #[test]
    fn indexing_by_axis() {
        let p = Point3::new(7.0, 8.0, 9.0);
        assert_eq!(p[0], 7.0);
        assert_eq!(p[1], 8.0);
        assert_eq!(p[2], 9.0);
    }

    #[test]
    #[should_panic(expected = "axis index out of range")]
    fn indexing_out_of_range_panics() {
        let p = Point3::ORIGIN;
        let _ = p[3];
    }

    #[test]
    fn min_max_and_finiteness() {
        let a = Point3::new(1.0, 5.0, -2.0);
        let b = Point3::new(0.0, 7.0, -1.0);
        assert_eq!(a.min(b), Point3::new(0.0, 5.0, -2.0));
        assert_eq!(a.max(b), Point3::new(1.0, 7.0, -1.0));
        assert!(a.is_finite());
        assert!(!Point3::new(f32::NAN, 0.0, 0.0).is_finite());
    }

    #[test]
    fn bit_key_identifies_coincident_points() {
        let a = Point3::new(1.5, -2.25, 0.0);
        let b = Point3::new(1.5, -2.25, -0.0);
        assert_eq!(a.bit_key(), b.bit_key());
        let c = Point3::new(1.5, -2.25, 1e-7);
        assert_ne!(a.bit_key(), c.bit_key());
    }

    #[test]
    fn distance_helpers_match_module_functions() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(0.0, 3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_squared(b), 25.0);
    }
}

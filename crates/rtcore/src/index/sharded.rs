//! [`ShardedIndex`]: the two-level (TLAS over sharded BLAS) neighbour-search
//! backend.
//!
//! The flat [`super::WideBatchedIndex`] builds one BVH over the whole scene;
//! this backend cuts the same Morton-sorted primitive array into contiguous
//! shards ([`crate::bvh::tlas::plan_shards`]), builds one bottom-level wide
//! scene per shard **in parallel**, and answers queries by descending a
//! small top-level BVH to enumerate the shards a query overlaps, then
//! reusing the existing wavefront packet engine per BLAS.
//!
//! # Equivalence to the flat path
//!
//! With the LBVH builder, every BLAS is bit-identical to the corresponding
//! subtree of the flat LBVH (see [`crate::bvh::tlas`]), so the *leaf* boxes
//! — the only structure that decides which candidates are charged — are the
//! same.  The TLAS gate uses the same [`Aabb::intersects_ray`] predicate as
//! the engines' root gates and is therefore conservative, so the union of
//! per-BLAS candidate sets equals the flat candidate set exactly: neighbour
//! sets, CSR rows, counts, and the `dist_comps` / `prim_tests` counters all
//! match the flat wide-batched launch.  Counters that measure *structure
//! walked* rather than *candidates charged* (`rays`, `aabb_tests`,
//! `wide_node_visits`, `batched_launches`) legitimately differ; the sharded
//! backend additionally charges `tlas_node_visits` and one `blas_launches`
//! per (packet, overlapping shard) engine dispatch.
//!
//! `early_exit` hints are honoured as *exact* counting (the hint is a lower
//! bound, so `count >= min` core decisions are unchanged); unlike the flat
//! hot path, packet planning allocates per-shard sub-lists, which is why
//! this backend is not under the flat path's zero-allocation contract.

use super::bvh_backend::caller_ordinal;
use super::{
    charge_candidate, IndexCapabilities, IndexKind, Neighbor, NeighborFlow, NeighborIndex,
    NeighborIndexBuilder, NeighborSink, NeighborVisitor, WideBatchedIndex,
};
use crate::bvh::build::{lbvh_from_sorted, LbvhBuilder};
use crate::bvh::tlas::{plan_shards_with, Tlas};
use crate::bvh::{
    compact_coincident, spheres_from_points, BuilderKind, BvhBuilder, MedianSplitBuilder,
    SahBuilder,
};
use crate::error::{Error, Result};
use crate::fault::{CancelScope, FaultInjector, FaultPlan, FaultSite, MemoryBudget, RetryPolicy};
use crate::geometry::{Aabb, Point3, Ray, Sphere};
use crate::hardware::sat_bump;
use crate::hardware::WorkCounters;
use crate::pipeline::GeometryKind;
use crate::telemetry::{
    NodeHeatmap, PhaseKind, Telemetry, DIST_COMPS_BUCKETS, LATENCY_US_BUCKETS, OCCUPANCY_BUCKETS,
};
use crate::traversal::{QueryOrder, ReorderScratch, ScratchPool};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One shard's slice of the Morton-sorted build inputs (primitives and
/// codes), boxed in a consumable slot so the parallel build can move it
/// out exactly once.
type ShardSlice = Mutex<Option<(Vec<Sphere>, Vec<u32>)>>;

/// Why a shard's BLAS is quarantined (see [`ShardedIndex::quarantine_shard`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The per-shard BLAS build failed (an injected collapse/bake fault);
    /// the scene construction degraded the shard instead of failing.
    BuildFailed,
    /// A [`crate::fault::FaultSite::ShardBlasPoison`] failpoint marked the
    /// shard's BLAS as corrupt at build time.
    Poisoned,
    /// [`ShardedIndex::verify_shards`] found a broken structural invariant.
    ValidationFailed,
    /// A [`MemoryBudget`] eviction dropped the BLAS; the primitives stay
    /// resident and the shard rebuilds on the next [`ShardedIndex::recover`].
    Evicted,
}

impl QuarantineReason {
    /// Stable snake_case name used in reports and telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            QuarantineReason::BuildFailed => "build_failed",
            QuarantineReason::Poisoned => "poisoned",
            QuarantineReason::ValidationFailed => "validation_failed",
            QuarantineReason::Evicted => "evicted",
        }
    }
}

/// A quarantined shard: the BLAS is gone but the primitives are retained,
/// so queries fall back to an exact linear scan over them (correct, just
/// slower) until [`ShardedIndex::recover`] rebuilds the BLAS.
#[derive(Debug)]
struct DegradedShard {
    /// The shard's primitives, exactly as the live BLAS held them.
    spheres: Vec<Sphere>,
    /// Union of the sphere bounds — the TLAS leaf box, so the top level
    /// keeps routing overlapping queries here.
    bounds: Aabb,
    reason: QuarantineReason,
    /// Rebuild attempts consumed so far (bounded by [`RetryPolicy`]).
    attempts: u32,
    /// Recovery epoch before which retries are deferred (backoff).
    next_retry: u64,
}

impl DegradedShard {
    fn new(spheres: Vec<Sphere>, reason: QuarantineReason) -> Self {
        let bounds = spheres
            .iter()
            .fold(Aabb::EMPTY, |acc, s| acc.union(&s.bounds()));
        DegradedShard {
            spheres,
            bounds,
            reason,
            attempts: 0,
            next_retry: 0,
        }
    }
}

/// The state of one planned shard slot.
// `Live` dominates the enum size, but boxing it would add a pointer chase on
// every BLAS launch for the common all-healthy scene; slots are few (one per
// shard), so the wasted bytes in rare Degraded/Retired slots are negligible.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum ShardSlot {
    /// Healthy: queries launch through the wavefront engine.
    Live(WideBatchedIndex),
    /// Quarantined: queries fall back to an exact scan (see
    /// [`DegradedShard`]); a bounded retry-with-backoff rebuild restores it.
    Degraded(DegradedShard),
    /// Every primitive was retired; the TLAS leaf is an empty box.
    Retired,
}

impl ShardSlot {
    fn live(&self) -> Option<&WideBatchedIndex> {
        match self {
            ShardSlot::Live(blas) => Some(blas),
            _ => None,
        }
    }

    /// Whether the slot still answers queries (live or degraded).
    fn answers(&self) -> bool {
        !matches!(self, ShardSlot::Retired)
    }

    /// The TLAS leaf box this slot contributes.
    fn bounds(&self) -> Aabb {
        match self {
            ShardSlot::Live(blas) => blas.root_bounds(),
            ShardSlot::Degraded(d) => d.bounds,
            ShardSlot::Retired => Aabb::EMPTY,
        }
    }
}

/// What one [`ShardedIndex::recover`] pass did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Shards whose BLAS was rebuilt and restored to live service.
    pub rebuilt: usize,
    /// Rebuild attempts that failed (the shard stays quarantined and its
    /// next retry is pushed out by the policy's backoff).
    pub failed: usize,
    /// Quarantined shards still inside their backoff window.
    pub deferred: usize,
    /// Quarantined shards whose retry budget is exhausted (they keep
    /// answering through the exact fallback indefinitely).
    pub exhausted: usize,
}

/// Per-worker reusable buffers for one sharded packet: the TLAS descent
/// output, the (shard, packet position) launch plan, the per-shard query
/// sub-lists, and the packet-local count cells.
#[derive(Debug, Default)]
struct ShardScratch {
    overlaps: Vec<u32>,
    /// `(shard, packet position)` pairs, sorted by shard so each shard's
    /// sub-launch is one contiguous run in packet order.
    pairs: Vec<(u32, u32)>,
    sub_queries: Vec<Point3>,
    sub_perm: Vec<u32>,
    counts: Vec<AtomicU64>,
}

/// Which shards a stitched stage-2 launch targets per query (see
/// [`ShardedIndex::batch_neighbors_stitched`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSelect {
    /// Only the query's owning shard — the intra-shard clustering pass.
    Owner,
    /// Every overlapping shard *except* the owner — the cross-shard
    /// boundary pass whose edges the stitcher merges.
    CrossOnly,
}

/// Two-level neighbour-search backend: a TLAS over Morton-range shards,
/// each owning a bottom-level wide (BVH4 / quantized) scene answered by the
/// wavefront packet engine.
///
/// Built through [`NeighborIndexBuilder`] by setting
/// [`NeighborIndexBuilder::sharding`] on the [`IndexKind::WideBatched`]
/// kind.  Streaming eviction drops whole BLASes: [`NeighborIndex::remove`]
/// routes retirements to their owning shards, and a shard whose last
/// primitive is refitted away becomes a `None` slot whose TLAS leaf is an
/// empty box.
#[derive(Debug)]
pub struct ShardedIndex {
    n: usize,
    eps: f32,
    batch_size: usize,
    min_parallel_launch: usize,
    query_order: QueryOrder,
    compacting: bool,
    max_shard_size: usize,
    representative_of: Vec<u32>,
    /// Representative point id → owning shard (`u32::MAX` once retired).
    owner_shard: Vec<u32>,
    tlas: Tlas,
    /// One bottom-level slot per planned shard (live, degraded or retired).
    shards: Vec<ShardSlot>,
    /// Per-shard sub-launch popularity, driving coldest-first budget
    /// degradation.  Approximate by design — see the ordering comments at
    /// the increment sites.
    shard_heat: Vec<AtomicU64>,
    /// Candidate-charging model shared with the degraded exact fallback.
    geometry: GeometryKind,
    /// The per-shard BLAS configuration (nested parallelism already
    /// resolved), reused verbatim by quarantine-recovery rebuilds.
    blas_config: NeighborIndexBuilder,
    /// Deterministic failpoint handle (disarmed under
    /// [`FaultPlan::Off`], where probes cost nothing).
    fault: FaultInjector,
    /// Logical clock for retry backoff: bumped once per
    /// [`ShardedIndex::recover`] call, never by wall time, so recovery
    /// schedules are deterministic.
    recovery_epoch: u64,
    build_counters: WorkCounters,
    query_counters: Mutex<WorkCounters>,
    reorder: ScratchPool<ReorderScratch>,
    scratch: ScratchPool<ShardScratch>,
    telemetry: Telemetry,
}

impl ShardedIndex {
    /// Build the two-level scene from a [`NeighborIndexBuilder`] whose
    /// `sharding` knob is set.  Compaction (if configured) runs globally
    /// before sharding, so representatives and multiplicities are identical
    /// to the flat backend's; the per-shard BLAS builds run in parallel.
    pub fn build(config: &NeighborIndexBuilder, points: &[Point3], eps: f32) -> Result<Self> {
        let sharding = config.sharding.ok_or_else(|| {
            Error::InvalidConfig("ShardedIndex::build requires the sharding knob".into())
        })?;
        let telemetry = Telemetry::new(config.telemetry);
        let mut build_counters = WorkCounters::ZERO;
        let (spheres, representative_of) = if config.compaction {
            let compaction = compact_coincident(points, eps);
            sat_bump(&mut build_counters.compaction_merges, compaction.merged);
            sat_bump(&mut build_counters.build_prims, compaction.merged);
            (compaction.spheres, compaction.representative_of)
        } else {
            (
                spheres_from_points(points, eps),
                (0..points.len() as u32).collect(),
            )
        };

        let mut index = ShardedIndex {
            n: points.len(),
            eps,
            batch_size: config.batch_size.max(1),
            min_parallel_launch: config.min_parallel_launch,
            query_order: config.query_order,
            compacting: config.compaction,
            max_shard_size: sharding.max_shard_size,
            representative_of,
            // analyze-allow: hot-path-alloc -- constructor: owner table allocated once per scene build
            owner_shard: vec![u32::MAX; points.len()],
            tlas: Tlas::default(),
            // analyze-allow: hot-path-alloc -- constructor: shard list allocated once per scene build
            shards: Vec::new(),
            // analyze-allow: hot-path-alloc -- constructor: heat table allocated once per scene build
            shard_heat: Vec::new(),
            geometry: config.geometry,
            blas_config: *config,
            fault: FaultInjector::new(config.fault),
            recovery_epoch: 0,
            build_counters,
            query_counters: Mutex::new(WorkCounters::ZERO),
            reorder: ScratchPool::new(),
            scratch: ScratchPool::new(),
            telemetry,
        };
        if spheres.is_empty() {
            return Ok(index);
        }

        // Global Morton encode + sort + shard-cut descent.  The planner may
        // use the full parallelism budget — the per-shard builds have not
        // started yet, so there is nothing to oversubscribe.
        let plan = {
            let mut span = index.telemetry.span(PhaseKind::LbvhBuild);
            let plan =
                plan_shards_with(spheres, sharding.max_shard_size, config.build_parallelism)?;
            span.add_counters(plan.counters);
            plan
        };
        index.build_counters += plan.counters;
        for (s, &(lo, hi)) in plan.ranges.iter().enumerate() {
            for p in &plan.sorted_prims[lo..hi] {
                index.owner_shard[p.point_index as usize] = s as u32;
            }
        }

        // Per-shard parallel BLAS build on the rayon pool.  Each worker
        // opens its own build spans, so shard-build parallelism shows up in
        // the trace through the span thread ids.
        let max_leaf = config.max_leaf_size;
        let builder_kind = config.bvh_builder;
        // One consumable slot per shard: the shim's owned-`Vec` parallel
        // iterator clones items out, so hand workers indices instead and
        // move each slice out of its slot exactly once.
        let slices: Vec<ShardSlice> = plan
            .ranges
            .iter()
            .map(|&(lo, hi)| {
                Mutex::new(Some((
                    // analyze-allow: hot-path-alloc -- build path: each shard copies its prim slice once at scene construction
                    plan.sorted_prims[lo..hi].to_vec(),
                    // analyze-allow: hot-path-alloc -- build path: each shard copies its code slice once at scene construction
                    plan.sorted_codes[lo..hi].to_vec(),
                )))
            })
            .collect();
        let telemetry = index.telemetry.clone();
        // The shards themselves run in parallel, so each nested build only
        // gets its share of the parallelism budget; with at least as many
        // shards as workers this degrades to sequential per-shard builds
        // (the pre-existing behaviour) instead of oversubscribing the pool.
        let mut config = *config;
        config.build_parallelism = config.build_parallelism.for_nested(slices.len());
        let nested = config.build_parallelism;
        // Recovery rebuilds reuse exactly the per-shard configuration.
        index.blas_config = config;
        // Decide poisoned shards *before* the parallel loop: the shared
        // injector's hit ordinals would otherwise depend on worker
        // interleaving, and fault schedules must be deterministic.
        let poisoned: Vec<bool> = (0..slices.len())
            .map(|_| index.fault.fire(FaultSite::ShardBlasPoison))
            .collect();
        // `None` = this shard's BLAS build was taken down by an injected
        // fault; the scene degrades the slot instead of failing (the
        // primitives are re-sliced from the plan below).  Real build errors
        // still propagate.
        let built: Vec<Result<Option<WideBatchedIndex>>> = {
            use rayon::prelude::*;
            (0..slices.len())
                .into_par_iter()
                .map(|s| {
                    if poisoned[s] {
                        return Ok(None);
                    }
                    // analyze-allow: lib-unwrap -- each parallel build slot is filled by plan and taken exactly once by its own task
                    let (prims, codes) = slices[s].lock().take().expect("slot consumed once");
                    let bvh = {
                        let mut span = telemetry.span(PhaseKind::LbvhBuild);
                        let bvh = match builder_kind {
                            // The aligned path: emit over the pre-sorted
                            // slice, reproducing the flat subtree exactly.
                            BuilderKind::Lbvh => lbvh_from_sorted(
                                prims,
                                codes,
                                max_leaf,
                                WorkCounters::ZERO,
                                nested,
                                &telemetry,
                            )?,
                            BuilderKind::BinnedSah => SahBuilder {
                                max_leaf_size: max_leaf,
                                ..SahBuilder::default()
                            }
                            .build(prims)?,
                            BuilderKind::MedianSplit => MedianSplitBuilder {
                                max_leaf_size: max_leaf,
                            }
                            .build(prims)?,
                        };
                        span.add_counters(bvh.build_counters);
                        bvh
                    };
                    match WideBatchedIndex::from_prebuilt(&config, bvh, eps, telemetry.clone()) {
                        Ok(blas) => Ok(Some(blas)),
                        Err(Error::FaultInjected { .. }) => Ok(None),
                        Err(e) => Err(e),
                    }
                })
                .collect()
        };
        for (s, blas) in built.into_iter().enumerate() {
            match blas? {
                Some(blas) => {
                    index.build_counters += blas.build_counters();
                    index.shards.push(ShardSlot::Live(blas));
                }
                None => {
                    let (lo, hi) = plan.ranges[s];
                    let reason = if poisoned[s] {
                        QuarantineReason::Poisoned
                    } else {
                        QuarantineReason::BuildFailed
                    };
                    // analyze-allow: hot-path-alloc -- build path: a fault-degraded shard retains its prim slice for the exact fallback
                    let spheres = plan.sorted_prims[lo..hi].to_vec();
                    index
                        .shards
                        .push(ShardSlot::Degraded(DegradedShard::new(spheres, reason)));
                }
            }
        }
        // analyze-allow: hot-path-alloc -- constructor: heat table allocated once per scene build
        index.shard_heat = (0..index.shards.len()).map(|_| AtomicU64::new(0)).collect();
        index.rebuild_tlas();
        index.enforce_budget(config.memory_budget)?;
        Ok(index)
    }

    /// Rebuild the top-level BVH from the current shard root bounds
    /// (evicted shards contribute empty boxes) under a `tlas_build` span.
    fn rebuild_tlas(&mut self) {
        let bounds: Vec<Aabb> = self.shards.iter().map(ShardSlot::bounds).collect();
        let mut counters = WorkCounters::ZERO;
        let mut span = self.telemetry.span(PhaseKind::TlasBuild);
        self.tlas = Tlas::build(&bounds, &mut counters);
        span.add_counters(counters);
        drop(span);
        self.build_counters += counters;
    }

    /// Number of planned shards (including evicted slots).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of shards still holding a live BLAS.
    pub fn live_shard_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| matches!(s, ShardSlot::Live(_)))
            .count()
    }

    /// Number of quarantined shards currently answering through the exact
    /// fallback.
    pub fn degraded_shard_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| matches!(s, ShardSlot::Degraded(_)))
            .count()
    }

    /// The quarantined shard ids, with the reason each one degraded.
    pub fn quarantined_shards(&self) -> Vec<(u32, QuarantineReason)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(s, slot)| match slot {
                ShardSlot::Degraded(d) => Some((s as u32, d.reason)),
                _ => None,
            })
            .collect()
    }

    /// How many engine sub-launches have targeted a shard (the coldest-first
    /// eviction signal).  Approximate under concurrent launches.
    pub fn shard_heat(&self, shard: u32) -> u64 {
        self.shard_heat
            .get(shard as usize)
            // ordering: Relaxed — approximate popularity signal; no other
            // state is synchronised through it.
            .map_or(0, |h| h.load(Ordering::Relaxed))
    }

    /// The shard owning a point's representative primitive, or `None` once
    /// the point was retired (or never indexed).
    pub fn owner_shard(&self, point: u32) -> Option<u32> {
        match self.owner_shard.get(point as usize) {
            Some(&s) if s != u32::MAX && self.shards.get(s as usize)?.answers() => Some(s),
            _ => None,
        }
    }

    /// Per-shard node-visit heatmaps (one entry per shard slot), populated
    /// when the index was built under
    /// [`crate::telemetry::TelemetryConfig::Profile`].
    pub fn shard_heatmaps(&self) -> Vec<Option<&NodeHeatmap>> {
        self.shards
            .iter()
            .map(|s| s.live().and_then(|b| b.heatmap()))
            .collect()
    }

    /// Quarantine a live shard: its BLAS is dropped, its primitives are
    /// retained, and queries overlapping the shard fall back to an exact
    /// linear scan — correct answers at degraded speed — until
    /// [`ShardedIndex::recover`] rebuilds it.  Idempotent on already
    /// degraded or retired slots; errors only on an out-of-range id.
    pub fn quarantine_shard(&mut self, shard: u32, reason: QuarantineReason) -> Result<()> {
        if shard as usize >= self.shards.len() {
            return Err(Error::InvalidConfig(format!("shard {shard} out of range")));
        }
        self.quarantine_slot(shard as usize, reason);
        Ok(())
    }

    /// Infallible in-range quarantine (no-op unless the slot is live).
    fn quarantine_slot(&mut self, idx: usize, reason: QuarantineReason) {
        let telemetry = self.telemetry.clone();
        let ShardSlot::Live(blas) = &self.shards[idx] else {
            return;
        };
        let mut span = telemetry.span(PhaseKind::Degrade);
        let slot = match blas.wide_scene() {
            Some(wide) => {
                span.add_counters(WorkCounters {
                    misc_ops: wide.primitives.len() as u64,
                    ..WorkCounters::ZERO
                });
                // analyze-allow: hot-path-alloc -- recovery path: quarantine retains the shard's primitives for the exact fallback
                ShardSlot::Degraded(DegradedShard::new(wide.primitives.clone(), reason))
            }
            // Nothing indexed — the slot is simply retired.
            None => ShardSlot::Retired,
        };
        self.shards[idx] = slot;
    }

    /// Validate every live shard's wide scene and quarantine the ones whose
    /// structural invariants fail, returning the quarantined ids.
    pub fn verify_shards(&mut self) -> Vec<u32> {
        let broken: Vec<u32> = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(s, slot)| {
                let wide = slot.live()?.wide_scene()?;
                crate::bvh::wide::validate_wide(wide)
                    .err()
                    .map(|_| s as u32)
            })
            .collect();
        for &s in &broken {
            self.quarantine_slot(s as usize, QuarantineReason::ValidationFailed);
        }
        broken
    }

    /// One bounded-retry recovery pass: every quarantined shard that is
    /// past its backoff window and under the policy's attempt cap gets one
    /// rebuild attempt.  Successful rebuilds restore the shard to live
    /// service; the rebuilt BLAS may differ *structurally* from the
    /// original flat-aligned subtree (a standalone rebuild quantises Morton
    /// codes over the shard's own bounds), but its leaf boxes are the same
    /// exact sphere bounds, so query results are bit-identical.
    ///
    /// Time is logical: each call is one epoch, so backoff schedules are
    /// deterministic under test.
    pub fn recover(&mut self, policy: RetryPolicy) -> RecoveryStats {
        self.recovery_epoch += 1;
        let epoch = self.recovery_epoch;
        let mut stats = RecoveryStats::default();
        let mut restored = false;
        for idx in 0..self.shards.len() {
            let (attempts, next_retry) = match &self.shards[idx] {
                ShardSlot::Degraded(d) => (d.attempts, d.next_retry),
                _ => continue,
            };
            if !policy.allows_attempt(attempts) {
                stats.exhausted += 1;
                continue;
            }
            if next_retry > epoch {
                stats.deferred += 1;
                continue;
            }
            let spheres = match &self.shards[idx] {
                // analyze-allow: hot-path-alloc -- recovery path: the rebuild consumes an owned copy of the quarantined primitives
                ShardSlot::Degraded(d) => d.spheres.clone(),
                _ => continue,
            };
            if spheres.is_empty() {
                self.shards[idx] = ShardSlot::Retired;
                continue;
            }
            match self.rebuild_blas(spheres) {
                Ok(blas) => {
                    self.build_counters += blas.build_counters();
                    self.shards[idx] = ShardSlot::Live(blas);
                    stats.rebuilt += 1;
                    restored = true;
                }
                Err(_) => {
                    if let ShardSlot::Degraded(d) = &mut self.shards[idx] {
                        d.attempts += 1;
                        d.next_retry = epoch + policy.backoff_ticks(d.attempts);
                    }
                    stats.failed += 1;
                }
            }
        }
        if restored {
            self.rebuild_tlas();
        }
        stats
    }

    /// Rebuild one shard's BLAS from its retained primitives under a
    /// `degrade` span.  Injected rebuild failures come from the *shared*
    /// injector's `hlbvh_build` site (its hit ordinal advances per attempt,
    /// so a seeded schedule can fail the first attempts and let a later
    /// retry succeed); the nested per-shard build itself runs fault-free.
    fn rebuild_blas(&self, spheres: Vec<Sphere>) -> Result<WideBatchedIndex> {
        crate::fail_point!(self.fault, FaultSite::HlbvhBuild);
        let mut config = self.blas_config;
        config.fault = FaultPlan::Off;
        let mut span = self.telemetry.span(PhaseKind::Degrade);
        let max_leaf = config.max_leaf_size;
        let bvh = match config.bvh_builder {
            BuilderKind::Lbvh => LbvhBuilder {
                max_leaf_size: max_leaf,
                parallelism: config.build_parallelism,
            }
            .build(spheres)?,
            BuilderKind::BinnedSah => SahBuilder {
                max_leaf_size: max_leaf,
                ..SahBuilder::default()
            }
            .build(spheres)?,
            BuilderKind::MedianSplit => MedianSplitBuilder {
                max_leaf_size: max_leaf,
            }
            .build(spheres)?,
        };
        span.add_counters(bvh.build_counters);
        drop(span);
        WideBatchedIndex::from_prebuilt(&config, bvh, self.eps, self.telemetry.clone())
    }

    /// Enforce a [`MemoryBudget`] on the whole two-level scene, degrading
    /// gracefully in documented order: (1) drop quantized node bakes,
    /// coldest shard first — answers are unchanged, only conservative-hit
    /// work differs; (2) evict the coldest live BLASes into quarantine
    /// (exact fallback, rebuild on the next [`ShardedIndex::recover`]);
    /// (3) if the scene still exceeds the budget, refuse with
    /// [`Error::OverBudget`].
    pub fn enforce_budget(&mut self, budget: MemoryBudget) -> Result<()> {
        let Some(limit) = budget.limit() else {
            return Ok(());
        };
        if self.device_bytes() <= limit {
            return Ok(());
        }
        let telemetry = self.telemetry.clone();
        let mut span = telemetry.span(PhaseKind::Degrade);
        let mut degrade_ops = 0u64;
        let mut within = false;
        // Step 1: quantized bakes, coldest shard first (ties on shard id).
        let mut bakes: Vec<usize> = (0..self.shards.len())
            .filter(|&s| {
                self.shards[s]
                    .live()
                    .is_some_and(WideBatchedIndex::has_quantized_bake)
            })
            .collect();
        bakes.sort_by_key(|&s| (self.shard_heat(s as u32), s));
        for s in bakes {
            if let ShardSlot::Live(blas) = &mut self.shards[s] {
                blas.drop_quantized_bake();
                degrade_ops += 1;
            }
            if self.device_bytes() <= limit {
                within = true;
                break;
            }
        }
        // Step 2: evict whole BLASes, coldest first.
        if !within {
            let mut live: Vec<usize> = (0..self.shards.len())
                .filter(|&s| self.shards[s].live().is_some())
                .collect();
            live.sort_by_key(|&s| (self.shard_heat(s as u32), s));
            for s in live {
                self.quarantine_slot(s, QuarantineReason::Evicted);
                degrade_ops += 1;
                if self.device_bytes() <= limit {
                    within = true;
                    break;
                }
            }
        }
        span.add_counters(WorkCounters {
            misc_ops: degrade_ops,
            ..WorkCounters::ZERO
        });
        drop(span);
        if within {
            Ok(())
        } else {
            Err(Error::OverBudget {
                requested: self.device_bytes(),
                budget: limit,
            })
        }
    }

    /// The configured shard-size ceiling.
    pub fn max_shard_size(&self) -> usize {
        self.max_shard_size
    }

    fn record(&self, local: &WorkCounters) {
        *self.query_counters.lock() += *local;
    }

    /// Mirror of the flat backends' launch metrics recording.
    fn record_launch_metrics(&self, queries: usize, start_ns: u64, total: &WorkCounters) {
        let Some(metrics) = self.telemetry.metrics() else {
            return;
        };
        metrics.incr("launches", 1);
        metrics.incr("launched_queries", queries as u64);
        let latency_us = self.telemetry.now_ns().saturating_sub(start_ns) as f64 / 1_000.0;
        metrics.observe("launch_latency_us", LATENCY_US_BUCKETS, latency_us);
        if queries > 0 {
            metrics.observe(
                "dist_comps_per_query",
                DIST_COMPS_BUCKETS,
                total.dist_comps as f64 / queries as f64,
            );
            let size = self.batch_size.max(1);
            let packets = queries.div_ceil(size);
            metrics.observe(
                "packet_occupancy",
                OCCUPANCY_BUCKETS,
                queries as f64 / (packets * size) as f64,
            );
        }
    }

    /// Morton-reorder the launch when configured (see the flat backend's
    /// `morton_guard`); outputs are restored to caller ordinals through the
    /// permutation either way.
    fn morton_guard(
        &self,
        queries: &[Point3],
        setup: &mut WorkCounters,
    ) -> Option<crate::traversal::PoolGuard<'_, ReorderScratch>> {
        if self.query_order != QueryOrder::Morton || queries.len() < 2 {
            return None;
        }
        let mut span = self.telemetry.span(PhaseKind::MortonReorder);
        let mut guard = self.reorder.acquire();
        let sort_ops = guard.order_morton(queries);
        sat_bump(&mut setup.misc_ops, sort_ops);
        span.add_counters(WorkCounters {
            misc_ops: sort_ops,
            ..WorkCounters::ZERO
        });
        Some(guard)
    }

    /// TLAS-descend every ray of one packet and lay out the per-shard
    /// sub-launch plan in `scratch.pairs` (sorted by shard, packet order
    /// within a shard).  `filter(caller ordinal, shard)` prunes shards per
    /// query — the stitched stage-2 passes select owner-only or cross-only
    /// launches through it.
    #[allow(clippy::too_many_arguments)]
    fn plan_packet(
        tlas: &Tlas,
        shards: &[ShardSlot],
        ordered: &[Point3],
        perm: Option<&[u32]>,
        start: usize,
        len: usize,
        overlaps: &mut Vec<u32>,
        pairs: &mut Vec<(u32, u32)>,
        counters: &mut WorkCounters,
        filter: &(impl Fn(usize, u32) -> bool + ?Sized),
    ) {
        pairs.clear();
        for pos in 0..len {
            let ray = Ray::epsilon_ray(ordered[start + pos]);
            overlaps.clear();
            tlas.overlapping(&ray, counters, overlaps);
            let global = caller_ordinal(perm, start + pos);
            for &s in overlaps.iter() {
                if shards[s as usize].answers() && filter(global, s) {
                    pairs.push((s, pos as u32));
                }
            }
        }
        pairs.sort_unstable();
    }

    /// Exact linear fallback over a quarantined shard's primitives (sink
    /// mode).  The reporting contract matches the engine exactly — the
    /// closed-ball predicate, `Neighbor` payload and caller-ordinal routing
    /// are the same — so degraded answers are bit-identical to live ones.
    /// What differs is the work: every resident candidate is charged one
    /// [`charge_candidate`], the price of having no BLAS to cull with.
    fn degraded_trace_sink(
        &self,
        deg: &DegradedShard,
        sub_queries: &[Point3],
        sub_perm: &[u32],
        eps: f32,
        sink: &NeighborSink<'_>,
        local: &mut WorkCounters,
    ) {
        let eps_sq = eps * eps;
        sat_bump(&mut local.rays, sub_queries.len() as u64);
        for (qi, &q) in sub_queries.iter().enumerate() {
            let ordinal = sub_perm[qi] as usize;
            for s in &deg.spheres {
                charge_candidate(self.geometry, local);
                if s.center.distance_squared(q) <= eps_sq {
                    let n = Neighbor {
                        index: s.point_index,
                        multiplicity: s.multiplicity,
                    };
                    if sink(ordinal, n, local) == NeighborFlow::Stop {
                        break;
                    }
                }
            }
        }
    }

    /// Count-mode twin of [`ShardedIndex::degraded_trace_sink`]: exact
    /// multiplicity-weighted counts flushed once per query into the
    /// packet-local cells, exactly like a live sub-launch flushes.
    fn degraded_trace_counts(
        &self,
        deg: &DegradedShard,
        sub_queries: &[Point3],
        sub_positions: &[u32],
        eps: f32,
        cells: &[AtomicU64],
        local: &mut WorkCounters,
    ) {
        let eps_sq = eps * eps;
        sat_bump(&mut local.rays, sub_queries.len() as u64);
        for (qi, &q) in sub_queries.iter().enumerate() {
            let mut count = 0u64;
            for s in &deg.spheres {
                charge_candidate(self.geometry, local);
                if s.center.distance_squared(q) <= eps_sq {
                    count += s.multiplicity as u64;
                }
            }
            if count > 0 {
                // ordering: Relaxed — packet-local cell with one writer (this
                // sequential loop); the packet's flush reads it afterwards on
                // the same thread.
                cells[sub_positions[qi] as usize].fetch_add(count, Ordering::Relaxed);
            }
        }
    }

    /// Sink-mode sharded packet: plan, then one wavefront engine launch per
    /// overlapped shard, each charged as one `blas_launches`.  Sinks see
    /// caller ordinals directly through the sub-launch permutation.
    #[allow(clippy::too_many_arguments)]
    fn trace_packet_sharded(
        &self,
        ordered: &[Point3],
        perm: Option<&[u32]>,
        start: usize,
        len: usize,
        eps: f32,
        sink: &NeighborSink<'_>,
        filter: &(impl Fn(usize, u32) -> bool + ?Sized),
        cancel: Option<&CancelScope>,
    ) -> WorkCounters {
        let mut local = WorkCounters::ZERO;
        // Packet granularity: a tripped scope skips the whole packet.
        if cancel.is_some_and(CancelScope::tripped) {
            return local;
        }
        let mut guard = self.scratch.acquire();
        let ShardScratch {
            overlaps,
            pairs,
            sub_queries,
            sub_perm,
            ..
        } = &mut *guard;
        Self::plan_packet(
            &self.tlas,
            &self.shards,
            ordered,
            perm,
            start,
            len,
            overlaps,
            pairs,
            &mut local,
            filter,
        );
        let mut i = 0;
        while i < pairs.len() {
            if cancel.is_some_and(CancelScope::tripped) {
                break;
            }
            let shard = pairs[i].0;
            sub_queries.clear();
            sub_perm.clear();
            let mut j = i;
            while j < pairs.len() && pairs[j].0 == shard {
                let pos = pairs[j].1 as usize;
                sub_queries.push(ordered[start + pos]);
                sub_perm.push(caller_ordinal(perm, start + pos) as u32);
                j += 1;
            }
            // ordering: Relaxed — monotonic popularity tick; nothing is
            // synchronised through it, readers want an approximate total.
            self.shard_heat[shard as usize].fetch_add(1, Ordering::Relaxed);
            sat_bump(&mut local.blas_launches, 1);
            match &self.shards[shard as usize] {
                ShardSlot::Live(blas) => {
                    local += blas.trace_packet(
                        sub_queries,
                        Some(sub_perm),
                        0,
                        sub_queries.len(),
                        eps,
                        sink,
                        cancel,
                    );
                }
                ShardSlot::Degraded(deg) => {
                    self.degraded_trace_sink(deg, sub_queries, sub_perm, eps, sink, &mut local);
                }
                // plan_packet only emits pairs for answering slots.
                ShardSlot::Retired => {}
            }
            i = j;
        }
        local
    }

    /// Count-mode sharded packet: per-shard counts accumulate in
    /// packet-local cells (each sub-launch flushes once per query, exactly
    /// like the flat packet tracer), and the packet flushes the
    /// `saturating_sub(1)` self-exclusion algebra to the shared cells once
    /// per query — bit-identical to the flat count path's adjustment.
    #[allow(clippy::too_many_arguments)]
    fn trace_count_packet_sharded(
        &self,
        ordered: &[Point3],
        perm: Option<&[u32]>,
        start: usize,
        len: usize,
        eps: f32,
        exclude_self: bool,
        counts: &[AtomicU64],
        cancel: Option<&CancelScope>,
    ) -> WorkCounters {
        let mut local = WorkCounters::ZERO;
        // Packet granularity: a tripped scope skips the whole packet.
        if cancel.is_some_and(CancelScope::tripped) {
            return local;
        }
        let mut guard = self.scratch.acquire();
        let ShardScratch {
            overlaps,
            pairs,
            sub_queries,
            sub_perm,
            counts: cells,
        } = &mut *guard;
        Self::plan_packet(
            &self.tlas,
            &self.shards,
            ordered,
            perm,
            start,
            len,
            overlaps,
            pairs,
            &mut local,
            &|_, _| true,
        );
        cells.clear();
        cells.resize_with(len, AtomicU64::default);
        let mut i = 0;
        while i < pairs.len() {
            if cancel.is_some_and(CancelScope::tripped) {
                // Partial cells would flush garbage into the shared counts;
                // the caller discards everything on a trip, so bail before
                // the flush below rather than flushing a half-built packet.
                return local;
            }
            let shard = pairs[i].0;
            sub_queries.clear();
            sub_perm.clear();
            let mut j = i;
            while j < pairs.len() && pairs[j].0 == shard {
                let pos = pairs[j].1;
                sub_queries.push(ordered[start + pos as usize]);
                sub_perm.push(pos);
                j += 1;
            }
            // ordering: Relaxed — monotonic popularity tick; nothing is
            // synchronised through it, readers want an approximate total.
            self.shard_heat[shard as usize].fetch_add(1, Ordering::Relaxed);
            sat_bump(&mut local.blas_launches, 1);
            match &self.shards[shard as usize] {
                ShardSlot::Live(blas) => {
                    local += blas.trace_count_packet(
                        sub_queries,
                        Some(sub_perm),
                        0,
                        sub_queries.len(),
                        eps,
                        false,
                        None,
                        cells,
                        cancel,
                    );
                }
                ShardSlot::Degraded(deg) => {
                    self.degraded_trace_counts(deg, sub_queries, sub_perm, eps, cells, &mut local);
                }
                // plan_packet only emits pairs for answering slots.
                ShardSlot::Retired => {}
            }
            i = j;
        }
        // ordering: Relaxed is sound on both sides of this flush.  The
        // packet-local `cells` come from pooled ShardScratch owned by this
        // packet alone; the per-shard sub-launches above run *sequentially*
        // on this thread, so by the time the loop reads a cell every write
        // to it is sequenced-before the read (the cells are atomic only
        // because `trace_count_packet` takes `&[AtomicU64]`).  Each shared
        // `counts` cell has a single writer per launch — caller ordinals are
        // disjoint across packets — so the fetch_add never races another
        // increment to the same cell, and the dispatch join in the launch
        // driver provides the happens-before edge that publishes the totals
        // to the post-join reader.  The `saturating_sub(1)` self-exclusion
        // is exact, not defensive: each cell starts at 0 and receives
        // exactly one flush per query (each query is routed to each
        // overlapping shard at most once by `plan_packet`), so the query's
        // own hit is counted exactly once before subtraction.
        for (pos, cell) in cells.iter().enumerate() {
            let mut count = cell.load(Ordering::Relaxed);
            if exclude_self {
                count = count.saturating_sub(1);
            }
            if count > 0 {
                counts[caller_ordinal(perm, start + pos)].fetch_add(count, Ordering::Relaxed);
            }
        }
        local
    }

    /// The shared sink-mode launch driver: Morton reorder (when configured),
    /// fixed packets, one `tlas_visit` span over the whole launch.  `cancel`
    /// is a runtime parameter — `None` compiles to the exact pre-deadline
    /// launch.  Returns the launch total; the caller decides whether to
    /// surface it (success) or fold it into [`Error::DeadlineExceeded`].
    fn launch_sink(
        &self,
        queries: &[Point3],
        eps: f32,
        sink: &NeighborSink<'_>,
        filter: &(dyn Fn(usize, u32) -> bool + Sync),
        cancel: Option<&CancelScope>,
    ) -> WorkCounters {
        debug_assert!(eps <= self.eps, "query radius exceeds the build radius");
        let mut setup = WorkCounters::ZERO;
        let reorder = self.morton_guard(queries, &mut setup);
        let (ordered, perm): (&[Point3], Option<&[u32]>) = match reorder.as_deref() {
            Some(g) => (&g.points, Some(&g.perm)),
            None => (queries, None),
        };
        let start_ns = self.telemetry.now_ns();
        let mut span = self.telemetry.span(PhaseKind::TlasVisit);
        let packets = queries.len().div_ceil(self.batch_size);
        let mut total = super::dispatch_batch(
            packets,
            queries.len() >= self.min_parallel_launch,
            |packet| {
                let start = packet * self.batch_size;
                let len = self.batch_size.min(queries.len() - start);
                self.trace_packet_sharded(ordered, perm, start, len, eps, sink, filter, cancel)
            },
        );
        total += setup;
        span.add_counters(total);
        drop(span);
        self.record_launch_metrics(queries.len(), start_ns, &total);
        self.record(&total);
        total
    }

    /// Stage-2 stitching entry: launch each query against the shards
    /// [`ShardSelect`] picks relative to its owning shard.  `owners[i]` is
    /// the owning shard of `queries[i]` (from [`ShardedIndex::owner_shard`]).
    /// The union of an [`ShardSelect::Owner`] and a
    /// [`ShardSelect::CrossOnly`] launch over the same queries reports
    /// exactly the neighbours (and charges exactly the candidate work) of
    /// one plain [`NeighborIndex::batch_neighbors`] launch.
    pub fn batch_neighbors_stitched(
        &self,
        queries: &[Point3],
        owners: &[u32],
        select: ShardSelect,
        eps: f32,
        counters: &mut WorkCounters,
        sink: &NeighborSink<'_>,
    ) {
        assert_eq!(queries.len(), owners.len(), "one owning shard per query");
        *counters += match select {
            ShardSelect::Owner => {
                self.launch_sink(queries, eps, sink, &|q, s| owners[q] == s, None)
            }
            ShardSelect::CrossOnly => {
                self.launch_sink(queries, eps, sink, &|q, s| owners[q] != s, None)
            }
        };
    }

    /// Count-mode twin of [`ShardedIndex::launch_sink`]: same reorder /
    /// packet / span shape, flushing into shared count cells.
    fn launch_counts(
        &self,
        queries: &[Point3],
        eps: f32,
        exclude_self: bool,
        counts: &[AtomicU64],
        cancel: Option<&CancelScope>,
    ) -> WorkCounters {
        debug_assert!(eps <= self.eps, "query radius exceeds the build radius");
        assert_eq!(
            queries.len(),
            counts.len(),
            "one count cell per launched query"
        );
        let mut setup = WorkCounters::ZERO;
        let reorder = self.morton_guard(queries, &mut setup);
        let (ordered, perm): (&[Point3], Option<&[u32]>) = match reorder.as_deref() {
            Some(g) => (&g.points, Some(&g.perm)),
            None => (queries, None),
        };
        let start_ns = self.telemetry.now_ns();
        let mut span = self.telemetry.span(PhaseKind::TlasVisit);
        let packets = queries.len().div_ceil(self.batch_size);
        let mut total = super::dispatch_batch(
            packets,
            queries.len() >= self.min_parallel_launch,
            |packet| {
                let start = packet * self.batch_size;
                let len = self.batch_size.min(queries.len() - start);
                self.trace_count_packet_sharded(
                    ordered,
                    perm,
                    start,
                    len,
                    eps,
                    exclude_self,
                    counts,
                    cancel,
                )
            },
        );
        total += setup;
        span.add_counters(total);
        drop(span);
        self.record_launch_metrics(queries.len(), start_ns, &total);
        self.record(&total);
        total
    }
}

impl NeighborIndex for ShardedIndex {
    fn len(&self) -> usize {
        self.n
    }

    fn eps(&self) -> f32 {
        self.eps
    }

    fn capabilities(&self) -> IndexCapabilities {
        IndexCapabilities {
            kind: IndexKind::WideBatched,
            batched: true,
            compacting: self.compacting,
            refittable: !self.compacting,
            rt_core: true,
        }
    }

    fn build_counters(&self) -> WorkCounters {
        self.build_counters
    }

    fn counters(&self) -> WorkCounters {
        self.build_counters + *self.query_counters.lock()
    }

    fn device_bytes(&self) -> u64 {
        let blas: u64 = self
            .shards
            .iter()
            .map(|s| match s {
                ShardSlot::Live(b) => b.device_bytes(),
                // A quarantined shard keeps only its primitives resident.
                ShardSlot::Degraded(d) => (d.spheres.len() * std::mem::size_of::<Sphere>()) as u64,
                ShardSlot::Retired => 0,
            })
            .sum();
        blas + (self.tlas.nodes.len() * std::mem::size_of::<crate::bvh::TlasNode>()) as u64
    }

    fn representative_of(&self, index: u32) -> u32 {
        self.representative_of
            .get(index as usize)
            .copied()
            .unwrap_or(index)
    }

    fn for_each_neighbor(
        &self,
        query: Point3,
        eps: f32,
        exclude: Option<u32>,
        counters: &mut WorkCounters,
        visit: &mut NeighborVisitor<'_>,
    ) {
        let mut local = WorkCounters::ZERO;
        // analyze-allow: hot-path-alloc -- single-query compatibility path; the batched tracers use pooled ShardScratch
        let mut overlaps = Vec::new();
        self.tlas
            .overlapping(&Ray::epsilon_ray(query), &mut local, &mut overlaps);
        let mut stopped = false;
        for s in overlaps {
            if stopped {
                break;
            }
            match &self.shards[s as usize] {
                ShardSlot::Live(blas) => {
                    // ordering: Relaxed — monotonic popularity tick; nothing
                    // is synchronised through it.
                    self.shard_heat[s as usize].fetch_add(1, Ordering::Relaxed);
                    sat_bump(&mut local.blas_launches, 1);
                    blas.for_each_neighbor(query, eps, exclude, &mut local, &mut |n, c| {
                        let flow = visit(n, c);
                        if flow == NeighborFlow::Stop {
                            stopped = true;
                        }
                        flow
                    });
                }
                ShardSlot::Degraded(deg) => {
                    // ordering: Relaxed — as above.
                    self.shard_heat[s as usize].fetch_add(1, Ordering::Relaxed);
                    sat_bump(&mut local.blas_launches, 1);
                    let eps_sq = eps * eps;
                    sat_bump(&mut local.rays, 1);
                    for sp in &deg.spheres {
                        charge_candidate(self.geometry, &mut local);
                        if exclude == Some(sp.point_index) {
                            continue;
                        }
                        if sp.center.distance_squared(query) <= eps_sq {
                            let n = Neighbor {
                                index: sp.point_index,
                                multiplicity: sp.multiplicity,
                            };
                            if visit(n, &mut local) == NeighborFlow::Stop {
                                stopped = true;
                                break;
                            }
                        }
                    }
                }
                ShardSlot::Retired => continue,
            }
        }
        self.record(&local);
        *counters += local;
    }

    fn batch_neighbors(
        &self,
        queries: &[Point3],
        eps: f32,
        counters: &mut WorkCounters,
        sink: &NeighborSink<'_>,
    ) {
        *counters += self.launch_sink(queries, eps, sink, &|_, _| true, None);
    }

    fn batch_neighbor_counts(
        &self,
        queries: &[Point3],
        eps: f32,
        exclude_self: bool,
        early_exit: Option<u64>,
        counters: &mut WorkCounters,
        counts: &[AtomicU64],
    ) {
        // `early_exit` is a hint; the sharded path counts exactly (exact
        // counts are >= the capped ones, so `count >= min_pts` core
        // decisions are identical).
        let _ = early_exit;
        *counters += self.launch_counts(queries, eps, exclude_self, counts, None);
    }

    fn batch_neighbors_cancellable(
        &self,
        queries: &[Point3],
        eps: f32,
        counters: &mut WorkCounters,
        sink: &NeighborSink<'_>,
        scope: &CancelScope,
    ) -> Result<()> {
        crate::fail_point!(self.fault, FaultSite::ScratchGrow);
        if self.fault.fire(FaultSite::LaunchDelay) {
            // A simulated stalled launch: the deadline machinery must turn
            // it into a structured error, never a wrong answer.
            scope.trip();
        }
        if scope.should_stop() {
            return Err(Error::DeadlineExceeded {
                // analyze-allow: hot-path-alloc -- boxing the partial counters happens only on the cancelled error path, never in steady state
                partial: Box::new(WorkCounters::ZERO),
            });
        }
        let total = self.launch_sink(queries, eps, sink, &|_, _| true, Some(scope));
        if scope.tripped() {
            return Err(Error::DeadlineExceeded {
                // analyze-allow: hot-path-alloc -- boxing the partial counters happens only on the cancelled error path, never in steady state
                partial: Box::new(total),
            });
        }
        *counters += total;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn batch_neighbor_counts_cancellable(
        &self,
        queries: &[Point3],
        eps: f32,
        exclude_self: bool,
        early_exit: Option<u64>,
        counters: &mut WorkCounters,
        counts: &[AtomicU64],
        scope: &CancelScope,
    ) -> Result<()> {
        let _ = early_exit;
        crate::fail_point!(self.fault, FaultSite::ScratchGrow);
        if self.fault.fire(FaultSite::LaunchDelay) {
            scope.trip();
        }
        if scope.should_stop() {
            return Err(Error::DeadlineExceeded {
                // analyze-allow: hot-path-alloc -- boxing the partial counters happens only on the cancelled error path, never in steady state
                partial: Box::new(WorkCounters::ZERO),
            });
        }
        let total = self.launch_counts(queries, eps, exclude_self, counts, Some(scope));
        if scope.tripped() {
            return Err(Error::DeadlineExceeded {
                // analyze-allow: hot-path-alloc -- boxing the partial counters happens only on the cancelled error path, never in steady state
                partial: Box::new(total),
            });
        }
        *counters += total;
        Ok(())
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.is_enabled().then_some(&self.telemetry)
    }

    fn remove(&mut self, retired: &[u32]) -> Result<WorkCounters> {
        if self.compacting {
            return Err(Error::InvalidConfig(
                "cannot remove points from a compacting index: merged primitives \
                 stand for several input points"
                    .into(),
            ));
        }
        // Route retirements to their owning shards, refit each touched BLAS
        // in parallel, and drop any BLAS refitted down to nothing.
        // analyze-allow: hot-path-alloc -- refit path: per-shard routing buckets, once per retire batch, not per query
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        for &id in retired {
            if let Some(s) = self.owner_shard(id) {
                per_shard[s as usize].push(id);
            }
        }
        for &id in retired {
            if let Some(slot) = self.owner_shard.get_mut(id as usize) {
                *slot = u32::MAX;
            }
        }
        let work: Vec<Mutex<Option<ShardSlot>>> = std::mem::take(&mut self.shards)
            .into_iter()
            .map(|s| Mutex::new(Some(s)))
            .collect();
        let refitted: Vec<Result<(ShardSlot, WorkCounters)>> = {
            use rayon::prelude::*;
            (0..work.len())
                .into_par_iter()
                .map(|s| {
                    // analyze-allow: lib-unwrap -- each refit slot is wrapped Some above and taken exactly once by its own task
                    let slot = work[s].lock().take().expect("slot consumed once");
                    let dead = &per_shard[s];
                    if dead.is_empty() {
                        return Ok((slot, WorkCounters::ZERO));
                    }
                    match slot {
                        ShardSlot::Live(mut blas) => {
                            let counters = blas.remove(dead)?;
                            // Eviction emptied the shard: drop the whole BLAS.
                            let slot = if blas.wide_scene().is_some() {
                                ShardSlot::Live(blas)
                            } else {
                                ShardSlot::Retired
                            };
                            Ok((slot, counters))
                        }
                        ShardSlot::Degraded(mut deg) => {
                            // The fallback set shrinks in place; retry state
                            // survives the retirement.
                            let before = deg.spheres.len();
                            deg.spheres.retain(|sp| !dead.contains(&sp.point_index));
                            let mut counters = WorkCounters::ZERO;
                            sat_bump(&mut counters.misc_ops, (before - deg.spheres.len()) as u64);
                            let slot = if deg.spheres.is_empty() {
                                ShardSlot::Retired
                            } else {
                                deg.bounds = deg
                                    .spheres
                                    .iter()
                                    .fold(Aabb::EMPTY, |acc, sp| acc.union(&sp.bounds()));
                                ShardSlot::Degraded(deg)
                            };
                            Ok((slot, counters))
                        }
                        ShardSlot::Retired => Ok((ShardSlot::Retired, WorkCounters::ZERO)),
                    }
                })
                .collect()
        };
        let mut total = WorkCounters::ZERO;
        for r in refitted {
            let (slot, counters) = r?;
            total += counters;
            self.shards.push(slot);
        }
        self.n = self.n.saturating_sub(retired.len());
        self.build_counters += total;
        self.rebuild_tlas();
        Ok(total)
    }

    fn update(&mut self, moved: &[(u32, Point3)]) -> Result<WorkCounters> {
        if self.compacting {
            return Err(Error::InvalidConfig(
                "cannot move points of a compacting index: merged primitives \
                 stand for several input points"
                    .into(),
            ));
        }
        // A moved point stays in its owning shard — the refit inflates the
        // BLAS (and then TLAS) bounds exactly like the flat refit inflates
        // the single tree.
        // analyze-allow: hot-path-alloc -- refit path: per-shard routing buckets, once per move batch, not per query
        let mut per_shard: Vec<Vec<(u32, Point3)>> = vec![Vec::new(); self.shards.len()];
        for &(id, p) in moved {
            if let Some(s) = self.owner_shard(id) {
                per_shard[s as usize].push((id, p));
            }
        }
        let work: Vec<Mutex<Option<ShardSlot>>> = std::mem::take(&mut self.shards)
            .into_iter()
            .map(|s| Mutex::new(Some(s)))
            .collect();
        let refitted: Vec<Result<(ShardSlot, WorkCounters)>> = {
            use rayon::prelude::*;
            (0..work.len())
                .into_par_iter()
                .map(|s| {
                    // analyze-allow: lib-unwrap -- each refit slot is wrapped Some above and taken exactly once by its own task
                    let slot = work[s].lock().take().expect("slot consumed once");
                    let shard_moves = &per_shard[s];
                    if shard_moves.is_empty() {
                        return Ok((slot, WorkCounters::ZERO));
                    }
                    match slot {
                        ShardSlot::Live(mut blas) => {
                            let counters = blas.update(shard_moves)?;
                            Ok((ShardSlot::Live(blas), counters))
                        }
                        ShardSlot::Degraded(mut deg) => {
                            // Move the fallback primitives directly; the
                            // bounds are recomputed tight (still enclosing,
                            // which is all the TLAS gate needs).
                            let mut counters = WorkCounters::ZERO;
                            for &(id, p) in shard_moves {
                                if let Some(sp) =
                                    deg.spheres.iter_mut().find(|sp| sp.point_index == id)
                                {
                                    sp.center = p;
                                    sat_bump(&mut counters.misc_ops, 1);
                                }
                            }
                            deg.bounds = deg
                                .spheres
                                .iter()
                                .fold(Aabb::EMPTY, |acc, sp| acc.union(&sp.bounds()));
                            Ok((ShardSlot::Degraded(deg), counters))
                        }
                        ShardSlot::Retired => Ok((ShardSlot::Retired, WorkCounters::ZERO)),
                    }
                })
                .collect()
        };
        let mut total = WorkCounters::ZERO;
        for r in refitted {
            let (slot, counters) = r?;
            total += counters;
            self.shards.push(slot);
        }
        self.build_counters += total;
        self.rebuild_tlas();
        Ok(total)
    }

    fn as_sharded(&self) -> Option<&ShardedIndex> {
        Some(self)
    }

    fn as_sharded_mut(&mut self) -> Option<&mut ShardedIndex> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bvh::WideLayout;
    use crate::index::{Neighbor, NeighborIndexBuilder};

    fn blob_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 8.0
        };
        (0..n)
            .map(|i| {
                if i % 11 == 0 {
                    Point3::new(2.0, 2.0, 2.0) // duplicate run
                } else {
                    Point3::new(next(), next(), next())
                }
            })
            .collect()
    }

    fn flat_config() -> NeighborIndexBuilder {
        NeighborIndexBuilder {
            bvh_builder: BuilderKind::Lbvh,
            min_parallel_launch: 0,
            batch_size: 64,
            ..NeighborIndexBuilder::new(IndexKind::WideBatched)
        }
    }

    fn sharded_config(max_shard: usize) -> NeighborIndexBuilder {
        NeighborIndexBuilder {
            sharding: Some(crate::bvh::ShardingConfig::new(max_shard)),
            ..flat_config()
        }
    }

    fn sorted_rows(
        index: &dyn NeighborIndex,
        queries: &[Point3],
        eps: f32,
    ) -> (Vec<Vec<u32>>, WorkCounters) {
        let mut c = WorkCounters::ZERO;
        let csr = index.batch_neighbors_csr(queries, eps, &mut c);
        let rows = (0..queries.len())
            .map(|q| {
                let mut row: Vec<u32> = csr.neighbors(q).to_vec();
                row.sort_unstable();
                row
            })
            .collect();
        (rows, c)
    }

    #[test]
    fn sharded_matches_flat_rows_and_candidate_counters() {
        let pts = blob_points(700, 5);
        let eps = 0.6f32;
        let flat = WideBatchedIndex::build(&flat_config(), &pts, eps).unwrap();
        let sharded = ShardedIndex::build(&sharded_config(64), &pts, eps).unwrap();
        assert!(sharded.shard_count() > 1, "scene must actually shard");

        let (flat_rows, flat_c) = sorted_rows(&flat, &pts, eps);
        let (shard_rows, shard_c) = sorted_rows(&sharded, &pts, eps);
        assert_eq!(flat_rows, shard_rows);
        assert_eq!(flat_c.dist_comps, shard_c.dist_comps);
        assert_eq!(flat_c.prim_tests, shard_c.prim_tests);
        assert!(shard_c.tlas_node_visits > 0);
        assert!(shard_c.blas_launches > 0);
    }

    #[test]
    fn sharded_counts_match_flat_counts() {
        let pts = blob_points(500, 9);
        let eps = 0.5f32;
        let flat = WideBatchedIndex::build(&flat_config(), &pts, eps).unwrap();
        let sharded = ShardedIndex::build(&sharded_config(48), &pts, eps).unwrap();
        for exclude_self in [false, true] {
            let fc: Vec<AtomicU64> = (0..pts.len()).map(|_| AtomicU64::new(0)).collect();
            let sc: Vec<AtomicU64> = (0..pts.len()).map(|_| AtomicU64::new(0)).collect();
            let mut c1 = WorkCounters::ZERO;
            let mut c2 = WorkCounters::ZERO;
            flat.batch_neighbor_counts(&pts, eps, exclude_self, None, &mut c1, &fc);
            sharded.batch_neighbor_counts(&pts, eps, exclude_self, None, &mut c2, &sc);
            for (i, (f, s)) in fc.iter().zip(&sc).enumerate() {
                assert_eq!(
                    f.load(Ordering::Relaxed),
                    s.load(Ordering::Relaxed),
                    "query {i} exclude_self={exclude_self}"
                );
            }
            assert_eq!(c1.dist_comps, c2.dist_comps);
        }
    }

    #[test]
    fn stitched_launches_partition_the_neighbor_set() {
        let pts = blob_points(400, 21);
        let eps = 0.7f32;
        let sharded = ShardedIndex::build(&sharded_config(48), &pts, eps).unwrap();
        let owners: Vec<u32> = (0..pts.len())
            .map(|i| sharded.owner_shard(i as u32).unwrap())
            .collect();
        let collect = |select: Option<ShardSelect>| {
            let rows: Vec<Mutex<Vec<u32>>> =
                (0..pts.len()).map(|_| Mutex::new(Vec::new())).collect();
            let mut c = WorkCounters::ZERO;
            let sink = |q: usize, n: Neighbor, _: &mut WorkCounters| {
                rows[q].lock().push(n.index);
                NeighborFlow::Continue
            };
            match select {
                Some(s) => sharded.batch_neighbors_stitched(&pts, &owners, s, eps, &mut c, &sink),
                None => sharded.batch_neighbors(&pts, eps, &mut c, &sink),
            }
            let rows: Vec<Vec<u32>> = rows
                .into_iter()
                .map(|m| {
                    let mut v = m.into_inner();
                    v.sort_unstable();
                    v
                })
                .collect();
            (rows, c)
        };
        let (all, call) = collect(None);
        let (intra, cintra) = collect(Some(ShardSelect::Owner));
        let (cross, ccross) = collect(Some(ShardSelect::CrossOnly));
        for q in 0..pts.len() {
            let mut merged: Vec<u32> = intra[q].iter().chain(&cross[q]).copied().collect();
            merged.sort_unstable();
            assert_eq!(merged, all[q], "query {q}");
        }
        assert_eq!(
            cintra.dist_comps + ccross.dist_comps,
            call.dist_comps,
            "intra + cross candidate work must equal the plain launch"
        );
    }

    #[test]
    fn eviction_drops_blases_and_keeps_answers_correct() {
        let pts = blob_points(300, 33);
        let eps = 0.5f32;
        let mut sharded = ShardedIndex::build(&sharded_config(32), &pts, eps).unwrap();
        let before = sharded.live_shard_count();
        // Evict every point of shard 0 → that BLAS must drop.
        let shard0: Vec<u32> = (0..pts.len() as u32)
            .filter(|&i| sharded.owner_shard(i) == Some(0))
            .collect();
        assert!(!shard0.is_empty());
        sharded.remove(&shard0).unwrap();
        assert_eq!(sharded.live_shard_count(), before - 1);
        assert_eq!(sharded.owner_shard(shard0[0]), None);
        // Remaining queries still answer exactly (vs brute force).
        let mut c = WorkCounters::ZERO;
        for q in (0..pts.len()).step_by(17) {
            let mut got = sharded.neighbors_of(pts[q], eps, Some(q as u32), &mut c);
            got.sort_unstable();
            let mut want: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|&(j, p)| {
                    j != q
                        && !shard0.contains(&(j as u32))
                        && p.distance_squared(pts[q]) <= eps * eps
                })
                .map(|(j, _)| j as u32)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn empty_scene_builds_and_answers_empty() {
        let sharded = ShardedIndex::build(&sharded_config(32), &[], 1.0).unwrap();
        assert!(sharded.is_empty());
        assert_eq!(sharded.shard_count(), 0);
        let mut c = WorkCounters::ZERO;
        assert!(sharded
            .neighbors_of(Point3::ORIGIN, 1.0, None, &mut c)
            .is_empty());
    }

    #[test]
    fn quantized_layout_keeps_labels_identical_sets() {
        // The quantized BLAS mirror is conservative per shard-frame: sets
        // stay exact even though traversal counters may grow.
        let pts = blob_points(350, 44);
        let eps = 0.6f32;
        let flat = WideBatchedIndex::build(&flat_config(), &pts, eps).unwrap();
        let q_config = NeighborIndexBuilder {
            wide_layout: WideLayout::Quantized,
            ..sharded_config(48)
        };
        let sharded = ShardedIndex::build(&q_config, &pts, eps).unwrap();
        let (flat_rows, _) = sorted_rows(&flat, &pts, eps);
        let (shard_rows, _) = sorted_rows(&sharded, &pts, eps);
        assert_eq!(flat_rows, shard_rows);
    }

    #[test]
    fn quarantined_shard_answers_exactly_and_recovers() {
        let pts = blob_points(500, 77);
        let eps = 0.6f32;
        let mut sharded = ShardedIndex::build(&sharded_config(48), &pts, eps).unwrap();
        assert!(sharded.shard_count() > 1);
        let (healthy_rows, healthy_c) = sorted_rows(&sharded, &pts, eps);

        sharded
            .quarantine_shard(0, QuarantineReason::ValidationFailed)
            .unwrap();
        assert_eq!(sharded.degraded_shard_count(), 1);
        assert_eq!(
            sharded.quarantined_shards(),
            vec![(0, QuarantineReason::ValidationFailed)]
        );
        // The exact fallback answers bit-identically, at degraded cost.
        let (degraded_rows, degraded_c) = sorted_rows(&sharded, &pts, eps);
        assert_eq!(healthy_rows, degraded_rows);
        assert!(degraded_c.dist_comps >= healthy_c.dist_comps);

        // Count mode through the fallback too.
        for exclude_self in [false, true] {
            let flat = WideBatchedIndex::build(&flat_config(), &pts, eps).unwrap();
            let fc: Vec<AtomicU64> = (0..pts.len()).map(|_| AtomicU64::new(0)).collect();
            let sc: Vec<AtomicU64> = (0..pts.len()).map(|_| AtomicU64::new(0)).collect();
            let mut c = WorkCounters::ZERO;
            flat.batch_neighbor_counts(&pts, eps, exclude_self, None, &mut c, &fc);
            sharded.batch_neighbor_counts(&pts, eps, exclude_self, None, &mut c, &sc);
            for (i, (f, s)) in fc.iter().zip(&sc).enumerate() {
                assert_eq!(
                    f.load(Ordering::Relaxed),
                    s.load(Ordering::Relaxed),
                    "query {i} exclude_self={exclude_self}"
                );
            }
        }

        // One recovery pass rebuilds the shard to live service with
        // bit-identical query results.
        let stats = sharded.recover(RetryPolicy::default());
        assert_eq!(stats.rebuilt, 1);
        assert_eq!(sharded.degraded_shard_count(), 0);
        let (recovered_rows, _) = sorted_rows(&sharded, &pts, eps);
        assert_eq!(healthy_rows, recovered_rows);
    }

    #[test]
    fn verify_shards_passes_on_a_healthy_scene() {
        let pts = blob_points(300, 13);
        let mut sharded = ShardedIndex::build(&sharded_config(48), &pts, 0.5).unwrap();
        assert!(sharded.verify_shards().is_empty());
        assert_eq!(sharded.degraded_shard_count(), 0);
    }

    #[test]
    fn budget_degrades_bakes_then_evicts_then_refuses() {
        let pts = blob_points(400, 55);
        let eps = 0.5f32;
        let q_config = NeighborIndexBuilder {
            wide_layout: WideLayout::Quantized,
            ..sharded_config(48)
        };
        let mut sharded = ShardedIndex::build(&q_config, &pts, eps).unwrap();
        let (healthy_rows, _) = sorted_rows(&sharded, &pts, eps);
        let bytes = sharded.device_bytes();

        // Within budget: nothing degrades.
        sharded.enforce_budget(MemoryBudget::Bytes(bytes)).unwrap();
        assert_eq!(sharded.degraded_shard_count(), 0);
        assert_eq!(sharded.device_bytes(), bytes);

        // Slightly over: dropping the coldest quantized bake frees enough.
        sharded
            .enforce_budget(MemoryBudget::Bytes(bytes - 1))
            .unwrap();
        assert_eq!(sharded.degraded_shard_count(), 0, "no eviction needed");
        assert!(sharded.device_bytes() < bytes);
        let (rows, _) = sorted_rows(&sharded, &pts, eps);
        assert_eq!(healthy_rows, rows, "answers survive the dropped bake");

        // Absurdly tight: every BLAS evicts and the scene still refuses.
        let err = sharded.enforce_budget(MemoryBudget::Bytes(1)).unwrap_err();
        assert!(matches!(err, Error::OverBudget { budget: 1, .. }));
        assert_eq!(sharded.live_shard_count(), 0);
        assert!(sharded.degraded_shard_count() > 0);
        assert!(sharded
            .quarantined_shards()
            .iter()
            .all(|&(_, r)| r == QuarantineReason::Evicted));
        // Evicted shards still answer exactly through the fallback...
        let (rows, _) = sorted_rows(&sharded, &pts, eps);
        assert_eq!(healthy_rows, rows);
        // ...and rebuild on demand.
        let stats = sharded.recover(RetryPolicy::default());
        assert_eq!(stats.rebuilt, sharded.shard_count());
        assert_eq!(sharded.live_shard_count(), sharded.shard_count());
        let (rows, _) = sorted_rows(&sharded, &pts, eps);
        assert_eq!(healthy_rows, rows);
    }

    #[test]
    fn launches_tick_shard_heat() {
        let pts = blob_points(300, 3);
        let eps = 0.5f32;
        let sharded = ShardedIndex::build(&sharded_config(48), &pts, eps).unwrap();
        let (_, _) = sorted_rows(&sharded, &pts, eps);
        let total: u64 = (0..sharded.shard_count() as u32)
            .map(|s| sharded.shard_heat(s))
            .sum();
        assert!(total > 0, "launches must heat the shards they touch");
    }

    #[test]
    fn cancellable_launch_returns_structured_partial() {
        use crate::fault::{CancelScope, CancelToken};
        let pts = blob_points(300, 8);
        let eps = 0.5f32;
        let sharded = ShardedIndex::build(&sharded_config(48), &pts, eps).unwrap();

        // Pre-cancelled: structured error, zero partial work surfaced.
        let token = CancelToken::new();
        token.cancel();
        let scope = CancelScope::with_token(&token);
        let mut c = WorkCounters::ZERO;
        let sink = |_: usize, _: Neighbor, _: &mut WorkCounters| NeighborFlow::Continue;
        let err = sharded
            .batch_neighbors_cancellable(&pts, eps, &mut c, &sink, &scope)
            .unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded { .. }));
        assert_eq!(c, WorkCounters::ZERO, "partial work is never accumulated");

        // Inactive scope: identical counters to the plain launch.
        let mut plain = WorkCounters::ZERO;
        sharded.batch_neighbors(&pts, eps, &mut plain, &sink);
        let mut checked = WorkCounters::ZERO;
        sharded
            .batch_neighbors_cancellable(&pts, eps, &mut checked, &sink, &CancelScope::none())
            .unwrap();
        assert_eq!(plain, checked, "inactive scope must not perturb counters");
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn poisoned_shards_degrade_at_birth_and_stay_exact() {
        use crate::fault::FaultPlan;
        let pts = blob_points(400, 91);
        let eps = 0.6f32;
        let flat = WideBatchedIndex::build(&flat_config(), &pts, eps).unwrap();
        let config = NeighborIndexBuilder {
            fault: FaultPlan::Seeded { seed: 7, one_in: 1 },
            ..sharded_config(48)
        };
        // `one_in: 1` poisons every shard: the whole scene starts degraded
        // yet still builds and answers exactly.
        let sharded = ShardedIndex::build(&config, &pts, eps).unwrap();
        assert_eq!(sharded.live_shard_count(), 0);
        assert_eq!(sharded.degraded_shard_count(), sharded.shard_count());
        let (flat_rows, _) = sorted_rows(&flat, &pts, eps);
        let (shard_rows, _) = sorted_rows(&sharded, &pts, eps);
        assert_eq!(flat_rows, shard_rows);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn rebuild_retries_back_off_and_exhaust() {
        use crate::fault::FaultPlan;
        let pts = blob_points(300, 17);
        let eps = 0.5f32;
        let config = NeighborIndexBuilder {
            fault: FaultPlan::Seeded { seed: 3, one_in: 1 },
            ..sharded_config(48)
        };
        let mut sharded = ShardedIndex::build(&config, &pts, eps).unwrap();
        let degraded = sharded.degraded_shard_count();
        assert!(degraded > 0);
        let policy = RetryPolicy::default();
        // `one_in: 1` also fails every rebuild attempt; drive recovery past
        // the attempt cap and the shards must exhaust, not panic or loop.
        let mut saw_deferred = false;
        let mut last = RecoveryStats::default();
        for _ in 0..32 {
            last = sharded.recover(policy);
            saw_deferred |= last.deferred > 0;
        }
        assert_eq!(last.exhausted, degraded, "every shard exhausts its budget");
        assert!(saw_deferred, "backoff must defer attempts between retries");
        // Exhausted shards keep answering exactly through the fallback.
        let flat = WideBatchedIndex::build(&flat_config(), &pts, eps).unwrap();
        let (flat_rows, _) = sorted_rows(&flat, &pts, eps);
        let (shard_rows, _) = sorted_rows(&sharded, &pts, eps);
        assert_eq!(flat_rows, shard_rows);
    }
}

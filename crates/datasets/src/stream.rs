//! Replayable point streams for the streaming clustering subsystem.
//!
//! The batch experiments hand a whole dataset to an algorithm at once; a
//! streaming system instead sees *timestamped arrivals*.  This module turns
//! the deterministic generators of this crate into replayable streams: the
//! same `(dataset, n, seed)` triple always produces the identical sequence
//! of timestamped points, delivered in ingestion batches, so streaming
//! experiments are exactly as reproducible as the batch ones.
//!
//! Timestamps are synthetic (arrival index scaled by a configurable rate)
//! — what matters to the windowing logic downstream is their monotone
//! order and spacing, not any real-world clock.

use crate::PaperDataset;
use rtcore::geometry::Point3;

/// A point with its arrival timestamp (seconds since stream start).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedPoint {
    /// The spatial point.
    pub point: Point3,
    /// Arrival time in seconds since the start of the stream.
    pub time: f64,
}

/// Configuration of a replayable stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Total number of points the stream will deliver.
    pub total_points: usize,
    /// Points delivered per ingestion batch (the last batch may be short).
    pub batch_size: usize,
    /// Arrivals per second: consecutive points are spaced `1 / rate`
    /// seconds apart.
    pub points_per_second: f64,
    /// Seed forwarded to the underlying generator.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            total_points: 10_000,
            batch_size: 256,
            points_per_second: 1_000.0,
            seed: 42,
        }
    }
}

/// A replayable stream over one of the paper's dataset analogues.
///
/// The underlying generator is materialised once (they are cheap and
/// deterministic) and then replayed in arrival order.  Iterating yields
/// batches of [`TimedPoint`]s; [`PointStream::reset`] rewinds to the start
/// for an identical replay.
///
/// ```
/// use rtdbscan_datasets::stream::{PointStream, StreamConfig};
/// use rtdbscan_datasets::PaperDataset;
///
/// let config = StreamConfig { total_points: 1000, batch_size: 300, ..StreamConfig::default() };
/// let mut stream = PointStream::replay(PaperDataset::PortoTaxi, config);
/// let sizes: Vec<usize> = (&mut stream).map(|b| b.len()).collect();
/// assert_eq!(sizes, vec![300, 300, 300, 100]);
/// stream.reset();
/// assert_eq!(stream.next().unwrap().len(), 300);
/// ```
#[derive(Debug, Clone)]
pub struct PointStream {
    points: Vec<Point3>,
    config: StreamConfig,
    cursor: usize,
}

impl PointStream {
    /// Replay one of the paper's dataset analogues as a stream.
    pub fn replay(dataset: PaperDataset, config: StreamConfig) -> Self {
        let points = crate::generate(dataset, config.total_points, config.seed);
        PointStream {
            points,
            config,
            cursor: 0,
        }
    }

    /// Build a stream over an explicit point sequence (arrival order =
    /// slice order).
    pub fn from_points(points: Vec<Point3>, config: StreamConfig) -> Self {
        PointStream {
            points,
            config,
            cursor: 0,
        }
    }

    /// The stream's configuration.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// Total number of points this stream delivers.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the stream delivers no points at all.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of points already delivered.
    pub fn delivered(&self) -> usize {
        self.cursor
    }

    /// Rewind to the start; the replay is bit-identical.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// Arrival timestamp of the point with arrival index `i`.
    fn time_of(&self, i: usize) -> f64 {
        i as f64 / self.config.points_per_second.max(f64::MIN_POSITIVE)
    }
}

impl Iterator for PointStream {
    type Item = Vec<TimedPoint>;

    fn next(&mut self) -> Option<Vec<TimedPoint>> {
        if self.cursor >= self.points.len() {
            return None;
        }
        let batch = self.config.batch_size.max(1);
        let end = (self.cursor + batch).min(self.points.len());
        let out: Vec<TimedPoint> = (self.cursor..end)
            .map(|i| TimedPoint {
                point: self.points[i],
                time: self.time_of(i),
            })
            .collect();
        self.cursor = end;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(total: usize, batch: usize) -> StreamConfig {
        StreamConfig {
            total_points: total,
            batch_size: batch,
            points_per_second: 100.0,
            seed: 7,
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let a: Vec<Vec<TimedPoint>> =
            PointStream::replay(PaperDataset::Ngsim, config(2000, 128)).collect();
        let b: Vec<Vec<TimedPoint>> =
            PointStream::replay(PaperDataset::Ngsim, config(2000, 128)).collect();
        assert_eq!(a, b);
        let c: Vec<Vec<TimedPoint>> = PointStream::replay(
            PaperDataset::Ngsim,
            StreamConfig {
                seed: 8,
                ..config(2000, 128)
            },
        )
        .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn batches_cover_the_dataset_in_order() {
        let cfg = config(1000, 137);
        let stream = PointStream::replay(PaperDataset::PortoTaxi, cfg);
        let reference = crate::generate(PaperDataset::PortoTaxi, 1000, cfg.seed);
        let delivered: Vec<Point3> = stream
            .flat_map(|b| b.into_iter().map(|t| t.point))
            .collect();
        assert_eq!(delivered, reference);
    }

    #[test]
    fn timestamps_are_monotone_and_rate_scaled() {
        let cfg = config(500, 50);
        let stream = PointStream::replay(PaperDataset::RoadNetwork, cfg);
        let times: Vec<f64> = stream.flat_map(|b| b.into_iter().map(|t| t.time)).collect();
        assert_eq!(times.len(), 500);
        assert!(times.windows(2).all(|w| w[1] > w[0]));
        // 100 points/s → last point arrives at 4.99s.
        assert!((times[499] - 4.99).abs() < 1e-9);
    }

    #[test]
    fn reset_rewinds_identically() {
        let mut stream = PointStream::replay(PaperDataset::Ionosphere3d, config(300, 100));
        let first: Vec<_> = (&mut stream).collect();
        assert!(stream.next().is_none());
        assert_eq!(stream.delivered(), 300);
        stream.reset();
        assert_eq!(stream.delivered(), 0);
        let second: Vec<_> = stream.collect();
        assert_eq!(first, second);
    }

    #[test]
    fn explicit_points_and_edge_cases() {
        let pts = vec![Point3::new_2d(1.0, 2.0), Point3::new_2d(3.0, 4.0)];
        let mut stream = PointStream::from_points(pts.clone(), config(2, 10));
        let batch = stream.next().unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].point, pts[0]);
        assert!(stream.next().is_none());

        let mut empty = PointStream::from_points(vec![], config(0, 10));
        assert!(empty.is_empty());
        assert!(empty.next().is_none());
    }
}

//! [`ShardedIndex`]: the two-level (TLAS over sharded BLAS) neighbour-search
//! backend.
//!
//! The flat [`super::WideBatchedIndex`] builds one BVH over the whole scene;
//! this backend cuts the same Morton-sorted primitive array into contiguous
//! shards ([`crate::bvh::tlas::plan_shards`]), builds one bottom-level wide
//! scene per shard **in parallel**, and answers queries by descending a
//! small top-level BVH to enumerate the shards a query overlaps, then
//! reusing the existing wavefront packet engine per BLAS.
//!
//! # Equivalence to the flat path
//!
//! With the LBVH builder, every BLAS is bit-identical to the corresponding
//! subtree of the flat LBVH (see [`crate::bvh::tlas`]), so the *leaf* boxes
//! — the only structure that decides which candidates are charged — are the
//! same.  The TLAS gate uses the same [`Aabb::intersects_ray`] predicate as
//! the engines' root gates and is therefore conservative, so the union of
//! per-BLAS candidate sets equals the flat candidate set exactly: neighbour
//! sets, CSR rows, counts, and the `dist_comps` / `prim_tests` counters all
//! match the flat wide-batched launch.  Counters that measure *structure
//! walked* rather than *candidates charged* (`rays`, `aabb_tests`,
//! `wide_node_visits`, `batched_launches`) legitimately differ; the sharded
//! backend additionally charges `tlas_node_visits` and one `blas_launches`
//! per (packet, overlapping shard) engine dispatch.
//!
//! `early_exit` hints are honoured as *exact* counting (the hint is a lower
//! bound, so `count >= min` core decisions are unchanged); unlike the flat
//! hot path, packet planning allocates per-shard sub-lists, which is why
//! this backend is not under the flat path's zero-allocation contract.

use super::bvh_backend::caller_ordinal;
use super::{
    IndexCapabilities, IndexKind, NeighborFlow, NeighborIndex, NeighborIndexBuilder, NeighborSink,
    NeighborVisitor, WideBatchedIndex,
};
use crate::bvh::build::lbvh_from_sorted;
use crate::bvh::tlas::{plan_shards_with, Tlas};
use crate::bvh::{
    compact_coincident, spheres_from_points, BuilderKind, BvhBuilder, MedianSplitBuilder,
    SahBuilder,
};
use crate::error::{Error, Result};
use crate::geometry::{Aabb, Point3, Ray, Sphere};
use crate::hardware::sat_bump;
use crate::hardware::WorkCounters;
use crate::telemetry::{
    NodeHeatmap, PhaseKind, Telemetry, DIST_COMPS_BUCKETS, LATENCY_US_BUCKETS, OCCUPANCY_BUCKETS,
};
use crate::traversal::{QueryOrder, ReorderScratch, ScratchPool};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One shard's slice of the Morton-sorted build inputs (primitives and
/// codes), boxed in a consumable slot so the parallel build can move it
/// out exactly once.
type ShardSlice = Mutex<Option<(Vec<Sphere>, Vec<u32>)>>;

/// Per-worker reusable buffers for one sharded packet: the TLAS descent
/// output, the (shard, packet position) launch plan, the per-shard query
/// sub-lists, and the packet-local count cells.
#[derive(Debug, Default)]
struct ShardScratch {
    overlaps: Vec<u32>,
    /// `(shard, packet position)` pairs, sorted by shard so each shard's
    /// sub-launch is one contiguous run in packet order.
    pairs: Vec<(u32, u32)>,
    sub_queries: Vec<Point3>,
    sub_perm: Vec<u32>,
    counts: Vec<AtomicU64>,
}

/// Which shards a stitched stage-2 launch targets per query (see
/// [`ShardedIndex::batch_neighbors_stitched`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSelect {
    /// Only the query's owning shard — the intra-shard clustering pass.
    Owner,
    /// Every overlapping shard *except* the owner — the cross-shard
    /// boundary pass whose edges the stitcher merges.
    CrossOnly,
}

/// Two-level neighbour-search backend: a TLAS over Morton-range shards,
/// each owning a bottom-level wide (BVH4 / quantized) scene answered by the
/// wavefront packet engine.
///
/// Built through [`NeighborIndexBuilder`] by setting
/// [`NeighborIndexBuilder::sharding`] on the [`IndexKind::WideBatched`]
/// kind.  Streaming eviction drops whole BLASes: [`NeighborIndex::remove`]
/// routes retirements to their owning shards, and a shard whose last
/// primitive is refitted away becomes a `None` slot whose TLAS leaf is an
/// empty box.
#[derive(Debug)]
pub struct ShardedIndex {
    n: usize,
    eps: f32,
    batch_size: usize,
    min_parallel_launch: usize,
    query_order: QueryOrder,
    compacting: bool,
    max_shard_size: usize,
    representative_of: Vec<u32>,
    /// Representative point id → owning shard (`u32::MAX` once retired).
    owner_shard: Vec<u32>,
    tlas: Tlas,
    /// One bottom-level scene per planned shard; `None` = evicted.
    shards: Vec<Option<WideBatchedIndex>>,
    build_counters: WorkCounters,
    query_counters: Mutex<WorkCounters>,
    reorder: ScratchPool<ReorderScratch>,
    scratch: ScratchPool<ShardScratch>,
    telemetry: Telemetry,
}

impl ShardedIndex {
    /// Build the two-level scene from a [`NeighborIndexBuilder`] whose
    /// `sharding` knob is set.  Compaction (if configured) runs globally
    /// before sharding, so representatives and multiplicities are identical
    /// to the flat backend's; the per-shard BLAS builds run in parallel.
    pub fn build(config: &NeighborIndexBuilder, points: &[Point3], eps: f32) -> Result<Self> {
        let sharding = config.sharding.ok_or_else(|| {
            Error::InvalidConfig("ShardedIndex::build requires the sharding knob".into())
        })?;
        let telemetry = Telemetry::new(config.telemetry);
        let mut build_counters = WorkCounters::ZERO;
        let (spheres, representative_of) = if config.compaction {
            let compaction = compact_coincident(points, eps);
            sat_bump(&mut build_counters.compaction_merges, compaction.merged);
            sat_bump(&mut build_counters.build_prims, compaction.merged);
            (compaction.spheres, compaction.representative_of)
        } else {
            (
                spheres_from_points(points, eps),
                (0..points.len() as u32).collect(),
            )
        };

        let mut index = ShardedIndex {
            n: points.len(),
            eps,
            batch_size: config.batch_size.max(1),
            min_parallel_launch: config.min_parallel_launch,
            query_order: config.query_order,
            compacting: config.compaction,
            max_shard_size: sharding.max_shard_size,
            representative_of,
            // analyze-allow: hot-path-alloc -- constructor: owner table allocated once per scene build
            owner_shard: vec![u32::MAX; points.len()],
            tlas: Tlas::default(),
            // analyze-allow: hot-path-alloc -- constructor: shard list allocated once per scene build
            shards: Vec::new(),
            build_counters,
            query_counters: Mutex::new(WorkCounters::ZERO),
            reorder: ScratchPool::new(),
            scratch: ScratchPool::new(),
            telemetry,
        };
        if spheres.is_empty() {
            return Ok(index);
        }

        // Global Morton encode + sort + shard-cut descent.  The planner may
        // use the full parallelism budget — the per-shard builds have not
        // started yet, so there is nothing to oversubscribe.
        let plan = {
            let mut span = index.telemetry.span(PhaseKind::LbvhBuild);
            let plan =
                plan_shards_with(spheres, sharding.max_shard_size, config.build_parallelism)?;
            span.add_counters(plan.counters);
            plan
        };
        index.build_counters += plan.counters;
        for (s, &(lo, hi)) in plan.ranges.iter().enumerate() {
            for p in &plan.sorted_prims[lo..hi] {
                index.owner_shard[p.point_index as usize] = s as u32;
            }
        }

        // Per-shard parallel BLAS build on the rayon pool.  Each worker
        // opens its own build spans, so shard-build parallelism shows up in
        // the trace through the span thread ids.
        let max_leaf = config.max_leaf_size;
        let builder_kind = config.bvh_builder;
        // One consumable slot per shard: the shim's owned-`Vec` parallel
        // iterator clones items out, so hand workers indices instead and
        // move each slice out of its slot exactly once.
        let slices: Vec<ShardSlice> = plan
            .ranges
            .iter()
            .map(|&(lo, hi)| {
                Mutex::new(Some((
                    // analyze-allow: hot-path-alloc -- build path: each shard copies its prim slice once at scene construction
                    plan.sorted_prims[lo..hi].to_vec(),
                    // analyze-allow: hot-path-alloc -- build path: each shard copies its code slice once at scene construction
                    plan.sorted_codes[lo..hi].to_vec(),
                )))
            })
            .collect();
        let telemetry = index.telemetry.clone();
        // The shards themselves run in parallel, so each nested build only
        // gets its share of the parallelism budget; with at least as many
        // shards as workers this degrades to sequential per-shard builds
        // (the pre-existing behaviour) instead of oversubscribing the pool.
        let mut config = *config;
        config.build_parallelism = config.build_parallelism.for_nested(slices.len());
        let nested = config.build_parallelism;
        let built: Vec<Result<WideBatchedIndex>> = {
            use rayon::prelude::*;
            (0..slices.len())
                .into_par_iter()
                .map(|s| {
                    // analyze-allow: lib-unwrap -- each parallel build slot is filled by plan and taken exactly once by its own task
                    let (prims, codes) = slices[s].lock().take().expect("slot consumed once");
                    let bvh = {
                        let mut span = telemetry.span(PhaseKind::LbvhBuild);
                        let bvh = match builder_kind {
                            // The aligned path: emit over the pre-sorted
                            // slice, reproducing the flat subtree exactly.
                            BuilderKind::Lbvh => lbvh_from_sorted(
                                prims,
                                codes,
                                max_leaf,
                                WorkCounters::ZERO,
                                nested,
                                &telemetry,
                            )?,
                            BuilderKind::BinnedSah => SahBuilder {
                                max_leaf_size: max_leaf,
                                ..SahBuilder::default()
                            }
                            .build(prims)?,
                            BuilderKind::MedianSplit => MedianSplitBuilder {
                                max_leaf_size: max_leaf,
                            }
                            .build(prims)?,
                        };
                        span.add_counters(bvh.build_counters);
                        bvh
                    };
                    Ok(WideBatchedIndex::from_prebuilt(
                        &config,
                        bvh,
                        eps,
                        telemetry.clone(),
                    ))
                })
                .collect()
        };
        for blas in built {
            let blas = blas?;
            index.build_counters += blas.build_counters();
            index.shards.push(Some(blas));
        }
        index.rebuild_tlas();
        Ok(index)
    }

    /// Rebuild the top-level BVH from the current shard root bounds
    /// (evicted shards contribute empty boxes) under a `tlas_build` span.
    fn rebuild_tlas(&mut self) {
        let bounds: Vec<Aabb> = self
            .shards
            .iter()
            .map(|s| s.as_ref().map_or(Aabb::EMPTY, |b| b.root_bounds()))
            .collect();
        let mut counters = WorkCounters::ZERO;
        let mut span = self.telemetry.span(PhaseKind::TlasBuild);
        self.tlas = Tlas::build(&bounds, &mut counters);
        span.add_counters(counters);
        drop(span);
        self.build_counters += counters;
    }

    /// Number of planned shards (including evicted slots).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of shards still holding a live BLAS.
    pub fn live_shard_count(&self) -> usize {
        self.shards.iter().filter(|s| s.is_some()).count()
    }

    /// The shard owning a point's representative primitive, or `None` once
    /// the point was retired (or never indexed).
    pub fn owner_shard(&self, point: u32) -> Option<u32> {
        match self.owner_shard.get(point as usize) {
            Some(&s) if s != u32::MAX && self.shards.get(s as usize)?.is_some() => Some(s),
            _ => None,
        }
    }

    /// Per-shard node-visit heatmaps (one entry per shard slot), populated
    /// when the index was built under
    /// [`crate::telemetry::TelemetryConfig::Profile`].
    pub fn shard_heatmaps(&self) -> Vec<Option<&NodeHeatmap>> {
        self.shards
            .iter()
            .map(|s| s.as_ref().and_then(|b| b.heatmap()))
            .collect()
    }

    /// The configured shard-size ceiling.
    pub fn max_shard_size(&self) -> usize {
        self.max_shard_size
    }

    fn record(&self, local: &WorkCounters) {
        *self.query_counters.lock() += *local;
    }

    /// Mirror of the flat backends' launch metrics recording.
    fn record_launch_metrics(&self, queries: usize, start_ns: u64, total: &WorkCounters) {
        let Some(metrics) = self.telemetry.metrics() else {
            return;
        };
        metrics.incr("launches", 1);
        metrics.incr("launched_queries", queries as u64);
        let latency_us = self.telemetry.now_ns().saturating_sub(start_ns) as f64 / 1_000.0;
        metrics.observe("launch_latency_us", LATENCY_US_BUCKETS, latency_us);
        if queries > 0 {
            metrics.observe(
                "dist_comps_per_query",
                DIST_COMPS_BUCKETS,
                total.dist_comps as f64 / queries as f64,
            );
            let size = self.batch_size.max(1);
            let packets = queries.div_ceil(size);
            metrics.observe(
                "packet_occupancy",
                OCCUPANCY_BUCKETS,
                queries as f64 / (packets * size) as f64,
            );
        }
    }

    /// Morton-reorder the launch when configured (see the flat backend's
    /// `morton_guard`); outputs are restored to caller ordinals through the
    /// permutation either way.
    fn morton_guard(
        &self,
        queries: &[Point3],
        setup: &mut WorkCounters,
    ) -> Option<crate::traversal::PoolGuard<'_, ReorderScratch>> {
        if self.query_order != QueryOrder::Morton || queries.len() < 2 {
            return None;
        }
        let mut span = self.telemetry.span(PhaseKind::MortonReorder);
        let mut guard = self.reorder.acquire();
        let sort_ops = guard.order_morton(queries);
        sat_bump(&mut setup.misc_ops, sort_ops);
        span.add_counters(WorkCounters {
            misc_ops: sort_ops,
            ..WorkCounters::ZERO
        });
        Some(guard)
    }

    /// TLAS-descend every ray of one packet and lay out the per-shard
    /// sub-launch plan in `scratch.pairs` (sorted by shard, packet order
    /// within a shard).  `filter(caller ordinal, shard)` prunes shards per
    /// query — the stitched stage-2 passes select owner-only or cross-only
    /// launches through it.
    #[allow(clippy::too_many_arguments)]
    fn plan_packet(
        tlas: &Tlas,
        shards: &[Option<WideBatchedIndex>],
        ordered: &[Point3],
        perm: Option<&[u32]>,
        start: usize,
        len: usize,
        overlaps: &mut Vec<u32>,
        pairs: &mut Vec<(u32, u32)>,
        counters: &mut WorkCounters,
        filter: &(impl Fn(usize, u32) -> bool + ?Sized),
    ) {
        pairs.clear();
        for pos in 0..len {
            let ray = Ray::epsilon_ray(ordered[start + pos]);
            overlaps.clear();
            tlas.overlapping(&ray, counters, overlaps);
            let global = caller_ordinal(perm, start + pos);
            for &s in overlaps.iter() {
                if shards[s as usize].is_some() && filter(global, s) {
                    pairs.push((s, pos as u32));
                }
            }
        }
        pairs.sort_unstable();
    }

    /// Sink-mode sharded packet: plan, then one wavefront engine launch per
    /// overlapped shard, each charged as one `blas_launches`.  Sinks see
    /// caller ordinals directly through the sub-launch permutation.
    #[allow(clippy::too_many_arguments)]
    fn trace_packet_sharded(
        &self,
        ordered: &[Point3],
        perm: Option<&[u32]>,
        start: usize,
        len: usize,
        eps: f32,
        sink: &NeighborSink<'_>,
        filter: &(impl Fn(usize, u32) -> bool + ?Sized),
    ) -> WorkCounters {
        let mut local = WorkCounters::ZERO;
        let mut guard = self.scratch.acquire();
        let ShardScratch {
            overlaps,
            pairs,
            sub_queries,
            sub_perm,
            ..
        } = &mut *guard;
        Self::plan_packet(
            &self.tlas,
            &self.shards,
            ordered,
            perm,
            start,
            len,
            overlaps,
            pairs,
            &mut local,
            filter,
        );
        let mut i = 0;
        while i < pairs.len() {
            let shard = pairs[i].0;
            sub_queries.clear();
            sub_perm.clear();
            let mut j = i;
            while j < pairs.len() && pairs[j].0 == shard {
                let pos = pairs[j].1 as usize;
                sub_queries.push(ordered[start + pos]);
                sub_perm.push(caller_ordinal(perm, start + pos) as u32);
                j += 1;
            }
            let blas = self.shards[shard as usize]
                .as_ref()
                // analyze-allow: lib-unwrap -- plan_packet only emits pairs for shards it verified live
                .expect("planned shards are live");
            sat_bump(&mut local.blas_launches, 1);
            local +=
                blas.trace_packet(sub_queries, Some(sub_perm), 0, sub_queries.len(), eps, sink);
            i = j;
        }
        local
    }

    /// Count-mode sharded packet: per-shard counts accumulate in
    /// packet-local cells (each sub-launch flushes once per query, exactly
    /// like the flat packet tracer), and the packet flushes the
    /// `saturating_sub(1)` self-exclusion algebra to the shared cells once
    /// per query — bit-identical to the flat count path's adjustment.
    #[allow(clippy::too_many_arguments)]
    fn trace_count_packet_sharded(
        &self,
        ordered: &[Point3],
        perm: Option<&[u32]>,
        start: usize,
        len: usize,
        eps: f32,
        exclude_self: bool,
        counts: &[AtomicU64],
    ) -> WorkCounters {
        let mut local = WorkCounters::ZERO;
        let mut guard = self.scratch.acquire();
        let ShardScratch {
            overlaps,
            pairs,
            sub_queries,
            sub_perm,
            counts: cells,
        } = &mut *guard;
        Self::plan_packet(
            &self.tlas,
            &self.shards,
            ordered,
            perm,
            start,
            len,
            overlaps,
            pairs,
            &mut local,
            &|_, _| true,
        );
        cells.clear();
        cells.resize_with(len, AtomicU64::default);
        let mut i = 0;
        while i < pairs.len() {
            let shard = pairs[i].0;
            sub_queries.clear();
            sub_perm.clear();
            let mut j = i;
            while j < pairs.len() && pairs[j].0 == shard {
                let pos = pairs[j].1;
                sub_queries.push(ordered[start + pos as usize]);
                sub_perm.push(pos);
                j += 1;
            }
            let blas = self.shards[shard as usize]
                .as_ref()
                // analyze-allow: lib-unwrap -- plan_packet only emits pairs for shards it verified live
                .expect("planned shards are live");
            sat_bump(&mut local.blas_launches, 1);
            local += blas.trace_count_packet(
                sub_queries,
                Some(sub_perm),
                0,
                sub_queries.len(),
                eps,
                false,
                None,
                cells,
            );
            i = j;
        }
        // ordering: Relaxed is sound on both sides of this flush.  The
        // packet-local `cells` come from pooled ShardScratch owned by this
        // packet alone; the per-shard sub-launches above run *sequentially*
        // on this thread, so by the time the loop reads a cell every write
        // to it is sequenced-before the read (the cells are atomic only
        // because `trace_count_packet` takes `&[AtomicU64]`).  Each shared
        // `counts` cell has a single writer per launch — caller ordinals are
        // disjoint across packets — so the fetch_add never races another
        // increment to the same cell, and the dispatch join in the launch
        // driver provides the happens-before edge that publishes the totals
        // to the post-join reader.  The `saturating_sub(1)` self-exclusion
        // is exact, not defensive: each cell starts at 0 and receives
        // exactly one flush per query (each query is routed to each
        // overlapping shard at most once by `plan_packet`), so the query's
        // own hit is counted exactly once before subtraction.
        for (pos, cell) in cells.iter().enumerate() {
            let mut count = cell.load(Ordering::Relaxed);
            if exclude_self {
                count = count.saturating_sub(1);
            }
            if count > 0 {
                counts[caller_ordinal(perm, start + pos)].fetch_add(count, Ordering::Relaxed);
            }
        }
        local
    }

    /// The shared sink-mode launch driver: Morton reorder (when configured),
    /// fixed packets, one `tlas_visit` span over the whole launch.
    fn launch_sink(
        &self,
        queries: &[Point3],
        eps: f32,
        counters: &mut WorkCounters,
        sink: &NeighborSink<'_>,
        filter: &(dyn Fn(usize, u32) -> bool + Sync),
    ) {
        debug_assert!(eps <= self.eps, "query radius exceeds the build radius");
        let mut setup = WorkCounters::ZERO;
        let reorder = self.morton_guard(queries, &mut setup);
        let (ordered, perm): (&[Point3], Option<&[u32]>) = match reorder.as_deref() {
            Some(g) => (&g.points, Some(&g.perm)),
            None => (queries, None),
        };
        let start_ns = self.telemetry.now_ns();
        let mut span = self.telemetry.span(PhaseKind::TlasVisit);
        let packets = queries.len().div_ceil(self.batch_size);
        let mut total = super::dispatch_batch(
            packets,
            queries.len() >= self.min_parallel_launch,
            |packet| {
                let start = packet * self.batch_size;
                let len = self.batch_size.min(queries.len() - start);
                self.trace_packet_sharded(ordered, perm, start, len, eps, sink, filter)
            },
        );
        total += setup;
        span.add_counters(total);
        drop(span);
        self.record_launch_metrics(queries.len(), start_ns, &total);
        self.record(&total);
        *counters += total;
    }

    /// Stage-2 stitching entry: launch each query against the shards
    /// [`ShardSelect`] picks relative to its owning shard.  `owners[i]` is
    /// the owning shard of `queries[i]` (from [`ShardedIndex::owner_shard`]).
    /// The union of an [`ShardSelect::Owner`] and a
    /// [`ShardSelect::CrossOnly`] launch over the same queries reports
    /// exactly the neighbours (and charges exactly the candidate work) of
    /// one plain [`NeighborIndex::batch_neighbors`] launch.
    pub fn batch_neighbors_stitched(
        &self,
        queries: &[Point3],
        owners: &[u32],
        select: ShardSelect,
        eps: f32,
        counters: &mut WorkCounters,
        sink: &NeighborSink<'_>,
    ) {
        assert_eq!(queries.len(), owners.len(), "one owning shard per query");
        match select {
            ShardSelect::Owner => {
                self.launch_sink(queries, eps, counters, sink, &|q, s| owners[q] == s)
            }
            ShardSelect::CrossOnly => {
                self.launch_sink(queries, eps, counters, sink, &|q, s| owners[q] != s)
            }
        }
    }
}

impl NeighborIndex for ShardedIndex {
    fn len(&self) -> usize {
        self.n
    }

    fn eps(&self) -> f32 {
        self.eps
    }

    fn capabilities(&self) -> IndexCapabilities {
        IndexCapabilities {
            kind: IndexKind::WideBatched,
            batched: true,
            compacting: self.compacting,
            refittable: !self.compacting,
            rt_core: true,
        }
    }

    fn build_counters(&self) -> WorkCounters {
        self.build_counters
    }

    fn counters(&self) -> WorkCounters {
        self.build_counters + *self.query_counters.lock()
    }

    fn device_bytes(&self) -> u64 {
        let blas: u64 = self.shards.iter().flatten().map(|b| b.device_bytes()).sum();
        blas + (self.tlas.nodes.len() * std::mem::size_of::<crate::bvh::TlasNode>()) as u64
    }

    fn representative_of(&self, index: u32) -> u32 {
        self.representative_of
            .get(index as usize)
            .copied()
            .unwrap_or(index)
    }

    fn for_each_neighbor(
        &self,
        query: Point3,
        eps: f32,
        exclude: Option<u32>,
        counters: &mut WorkCounters,
        visit: &mut NeighborVisitor<'_>,
    ) {
        let mut local = WorkCounters::ZERO;
        // analyze-allow: hot-path-alloc -- single-query compatibility path; the batched tracers use pooled ShardScratch
        let mut overlaps = Vec::new();
        self.tlas
            .overlapping(&Ray::epsilon_ray(query), &mut local, &mut overlaps);
        let mut stopped = false;
        for s in overlaps {
            if stopped {
                break;
            }
            let Some(blas) = self.shards[s as usize].as_ref() else {
                continue;
            };
            sat_bump(&mut local.blas_launches, 1);
            blas.for_each_neighbor(query, eps, exclude, &mut local, &mut |n, c| {
                let flow = visit(n, c);
                if flow == NeighborFlow::Stop {
                    stopped = true;
                }
                flow
            });
        }
        self.record(&local);
        *counters += local;
    }

    fn batch_neighbors(
        &self,
        queries: &[Point3],
        eps: f32,
        counters: &mut WorkCounters,
        sink: &NeighborSink<'_>,
    ) {
        self.launch_sink(queries, eps, counters, sink, &|_, _| true);
    }

    fn batch_neighbor_counts(
        &self,
        queries: &[Point3],
        eps: f32,
        exclude_self: bool,
        early_exit: Option<u64>,
        counters: &mut WorkCounters,
        counts: &[AtomicU64],
    ) {
        // `early_exit` is a hint; the sharded path counts exactly (exact
        // counts are >= the capped ones, so `count >= min_pts` core
        // decisions are identical).
        let _ = early_exit;
        debug_assert!(eps <= self.eps, "query radius exceeds the build radius");
        assert_eq!(
            queries.len(),
            counts.len(),
            "one count cell per launched query"
        );
        let mut setup = WorkCounters::ZERO;
        let reorder = self.morton_guard(queries, &mut setup);
        let (ordered, perm): (&[Point3], Option<&[u32]>) = match reorder.as_deref() {
            Some(g) => (&g.points, Some(&g.perm)),
            None => (queries, None),
        };
        let start_ns = self.telemetry.now_ns();
        let mut span = self.telemetry.span(PhaseKind::TlasVisit);
        let packets = queries.len().div_ceil(self.batch_size);
        let mut total = super::dispatch_batch(
            packets,
            queries.len() >= self.min_parallel_launch,
            |packet| {
                let start = packet * self.batch_size;
                let len = self.batch_size.min(queries.len() - start);
                self.trace_count_packet_sharded(
                    ordered,
                    perm,
                    start,
                    len,
                    eps,
                    exclude_self,
                    counts,
                )
            },
        );
        total += setup;
        span.add_counters(total);
        drop(span);
        self.record_launch_metrics(queries.len(), start_ns, &total);
        self.record(&total);
        *counters += total;
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.is_enabled().then_some(&self.telemetry)
    }

    fn remove(&mut self, retired: &[u32]) -> Result<WorkCounters> {
        if self.compacting {
            return Err(Error::InvalidConfig(
                "cannot remove points from a compacting index: merged primitives \
                 stand for several input points"
                    .into(),
            ));
        }
        // Route retirements to their owning shards, refit each touched BLAS
        // in parallel, and drop any BLAS refitted down to nothing.
        // analyze-allow: hot-path-alloc -- refit path: per-shard routing buckets, once per retire batch, not per query
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        for &id in retired {
            if let Some(s) = self.owner_shard(id) {
                per_shard[s as usize].push(id);
            }
        }
        for &id in retired {
            if let Some(slot) = self.owner_shard.get_mut(id as usize) {
                *slot = u32::MAX;
            }
        }
        let work: Vec<Mutex<Option<WideBatchedIndex>>> = std::mem::take(&mut self.shards)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let refitted: Vec<Result<(Option<WideBatchedIndex>, WorkCounters)>> = {
            use rayon::prelude::*;
            (0..work.len())
                .into_par_iter()
                .map(|s| {
                    let Some(mut blas) = work[s].lock().take() else {
                        return Ok((None, WorkCounters::ZERO));
                    };
                    let dead = &per_shard[s];
                    if dead.is_empty() {
                        return Ok((Some(blas), WorkCounters::ZERO));
                    }
                    let counters = blas.remove(dead)?;
                    // Eviction emptied the shard: drop the whole BLAS.
                    let blas = blas.wide_scene().is_some().then_some(blas);
                    Ok((blas, counters))
                })
                .collect()
        };
        let mut total = WorkCounters::ZERO;
        for r in refitted {
            let (blas, counters) = r?;
            total += counters;
            self.shards.push(blas);
        }
        self.n = self.n.saturating_sub(retired.len());
        self.build_counters += total;
        self.rebuild_tlas();
        Ok(total)
    }

    fn update(&mut self, moved: &[(u32, Point3)]) -> Result<WorkCounters> {
        if self.compacting {
            return Err(Error::InvalidConfig(
                "cannot move points of a compacting index: merged primitives \
                 stand for several input points"
                    .into(),
            ));
        }
        // A moved point stays in its owning shard — the refit inflates the
        // BLAS (and then TLAS) bounds exactly like the flat refit inflates
        // the single tree.
        // analyze-allow: hot-path-alloc -- refit path: per-shard routing buckets, once per move batch, not per query
        let mut per_shard: Vec<Vec<(u32, Point3)>> = vec![Vec::new(); self.shards.len()];
        for &(id, p) in moved {
            if let Some(s) = self.owner_shard(id) {
                per_shard[s as usize].push((id, p));
            }
        }
        let work: Vec<Mutex<Option<WideBatchedIndex>>> = std::mem::take(&mut self.shards)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let refitted: Vec<Result<(Option<WideBatchedIndex>, WorkCounters)>> = {
            use rayon::prelude::*;
            (0..work.len())
                .into_par_iter()
                .map(|s| {
                    let Some(mut blas) = work[s].lock().take() else {
                        return Ok((None, WorkCounters::ZERO));
                    };
                    let shard_moves = &per_shard[s];
                    if shard_moves.is_empty() {
                        return Ok((Some(blas), WorkCounters::ZERO));
                    }
                    let counters = blas.update(shard_moves)?;
                    Ok((Some(blas), counters))
                })
                .collect()
        };
        let mut total = WorkCounters::ZERO;
        for r in refitted {
            let (blas, counters) = r?;
            total += counters;
            self.shards.push(blas);
        }
        self.build_counters += total;
        self.rebuild_tlas();
        Ok(total)
    }

    fn as_sharded(&self) -> Option<&ShardedIndex> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bvh::WideLayout;
    use crate::index::{Neighbor, NeighborIndexBuilder};

    fn blob_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 8.0
        };
        (0..n)
            .map(|i| {
                if i % 11 == 0 {
                    Point3::new(2.0, 2.0, 2.0) // duplicate run
                } else {
                    Point3::new(next(), next(), next())
                }
            })
            .collect()
    }

    fn flat_config() -> NeighborIndexBuilder {
        NeighborIndexBuilder {
            bvh_builder: BuilderKind::Lbvh,
            min_parallel_launch: 0,
            batch_size: 64,
            ..NeighborIndexBuilder::new(IndexKind::WideBatched)
        }
    }

    fn sharded_config(max_shard: usize) -> NeighborIndexBuilder {
        NeighborIndexBuilder {
            sharding: Some(crate::bvh::ShardingConfig::new(max_shard)),
            ..flat_config()
        }
    }

    fn sorted_rows(
        index: &dyn NeighborIndex,
        queries: &[Point3],
        eps: f32,
    ) -> (Vec<Vec<u32>>, WorkCounters) {
        let mut c = WorkCounters::ZERO;
        let csr = index.batch_neighbors_csr(queries, eps, &mut c);
        let rows = (0..queries.len())
            .map(|q| {
                let mut row: Vec<u32> = csr.neighbors(q).to_vec();
                row.sort_unstable();
                row
            })
            .collect();
        (rows, c)
    }

    #[test]
    fn sharded_matches_flat_rows_and_candidate_counters() {
        let pts = blob_points(700, 5);
        let eps = 0.6f32;
        let flat = WideBatchedIndex::build(&flat_config(), &pts, eps).unwrap();
        let sharded = ShardedIndex::build(&sharded_config(64), &pts, eps).unwrap();
        assert!(sharded.shard_count() > 1, "scene must actually shard");

        let (flat_rows, flat_c) = sorted_rows(&flat, &pts, eps);
        let (shard_rows, shard_c) = sorted_rows(&sharded, &pts, eps);
        assert_eq!(flat_rows, shard_rows);
        assert_eq!(flat_c.dist_comps, shard_c.dist_comps);
        assert_eq!(flat_c.prim_tests, shard_c.prim_tests);
        assert!(shard_c.tlas_node_visits > 0);
        assert!(shard_c.blas_launches > 0);
    }

    #[test]
    fn sharded_counts_match_flat_counts() {
        let pts = blob_points(500, 9);
        let eps = 0.5f32;
        let flat = WideBatchedIndex::build(&flat_config(), &pts, eps).unwrap();
        let sharded = ShardedIndex::build(&sharded_config(48), &pts, eps).unwrap();
        for exclude_self in [false, true] {
            let fc: Vec<AtomicU64> = (0..pts.len()).map(|_| AtomicU64::new(0)).collect();
            let sc: Vec<AtomicU64> = (0..pts.len()).map(|_| AtomicU64::new(0)).collect();
            let mut c1 = WorkCounters::ZERO;
            let mut c2 = WorkCounters::ZERO;
            flat.batch_neighbor_counts(&pts, eps, exclude_self, None, &mut c1, &fc);
            sharded.batch_neighbor_counts(&pts, eps, exclude_self, None, &mut c2, &sc);
            for (i, (f, s)) in fc.iter().zip(&sc).enumerate() {
                assert_eq!(
                    f.load(Ordering::Relaxed),
                    s.load(Ordering::Relaxed),
                    "query {i} exclude_self={exclude_self}"
                );
            }
            assert_eq!(c1.dist_comps, c2.dist_comps);
        }
    }

    #[test]
    fn stitched_launches_partition_the_neighbor_set() {
        let pts = blob_points(400, 21);
        let eps = 0.7f32;
        let sharded = ShardedIndex::build(&sharded_config(48), &pts, eps).unwrap();
        let owners: Vec<u32> = (0..pts.len())
            .map(|i| sharded.owner_shard(i as u32).unwrap())
            .collect();
        let collect = |select: Option<ShardSelect>| {
            let rows: Vec<Mutex<Vec<u32>>> =
                (0..pts.len()).map(|_| Mutex::new(Vec::new())).collect();
            let mut c = WorkCounters::ZERO;
            let sink = |q: usize, n: Neighbor, _: &mut WorkCounters| {
                rows[q].lock().push(n.index);
                NeighborFlow::Continue
            };
            match select {
                Some(s) => sharded.batch_neighbors_stitched(&pts, &owners, s, eps, &mut c, &sink),
                None => sharded.batch_neighbors(&pts, eps, &mut c, &sink),
            }
            let rows: Vec<Vec<u32>> = rows
                .into_iter()
                .map(|m| {
                    let mut v = m.into_inner();
                    v.sort_unstable();
                    v
                })
                .collect();
            (rows, c)
        };
        let (all, call) = collect(None);
        let (intra, cintra) = collect(Some(ShardSelect::Owner));
        let (cross, ccross) = collect(Some(ShardSelect::CrossOnly));
        for q in 0..pts.len() {
            let mut merged: Vec<u32> = intra[q].iter().chain(&cross[q]).copied().collect();
            merged.sort_unstable();
            assert_eq!(merged, all[q], "query {q}");
        }
        assert_eq!(
            cintra.dist_comps + ccross.dist_comps,
            call.dist_comps,
            "intra + cross candidate work must equal the plain launch"
        );
    }

    #[test]
    fn eviction_drops_blases_and_keeps_answers_correct() {
        let pts = blob_points(300, 33);
        let eps = 0.5f32;
        let mut sharded = ShardedIndex::build(&sharded_config(32), &pts, eps).unwrap();
        let before = sharded.live_shard_count();
        // Evict every point of shard 0 → that BLAS must drop.
        let shard0: Vec<u32> = (0..pts.len() as u32)
            .filter(|&i| sharded.owner_shard(i) == Some(0))
            .collect();
        assert!(!shard0.is_empty());
        sharded.remove(&shard0).unwrap();
        assert_eq!(sharded.live_shard_count(), before - 1);
        assert_eq!(sharded.owner_shard(shard0[0]), None);
        // Remaining queries still answer exactly (vs brute force).
        let mut c = WorkCounters::ZERO;
        for q in (0..pts.len()).step_by(17) {
            let mut got = sharded.neighbors_of(pts[q], eps, Some(q as u32), &mut c);
            got.sort_unstable();
            let mut want: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|&(j, p)| {
                    j != q
                        && !shard0.contains(&(j as u32))
                        && p.distance_squared(pts[q]) <= eps * eps
                })
                .map(|(j, _)| j as u32)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn empty_scene_builds_and_answers_empty() {
        let sharded = ShardedIndex::build(&sharded_config(32), &[], 1.0).unwrap();
        assert!(sharded.is_empty());
        assert_eq!(sharded.shard_count(), 0);
        let mut c = WorkCounters::ZERO;
        assert!(sharded
            .neighbors_of(Point3::ORIGIN, 1.0, None, &mut c)
            .is_empty());
    }

    #[test]
    fn quantized_layout_keeps_labels_identical_sets() {
        // The quantized BLAS mirror is conservative per shard-frame: sets
        // stay exact even though traversal counters may grow.
        let pts = blob_points(350, 44);
        let eps = 0.6f32;
        let flat = WideBatchedIndex::build(&flat_config(), &pts, eps).unwrap();
        let q_config = NeighborIndexBuilder {
            wide_layout: WideLayout::Quantized,
            ..sharded_config(48)
        };
        let sharded = ShardedIndex::build(&q_config, &pts, eps).unwrap();
        let (flat_rows, _) = sorted_rows(&flat, &pts, eps);
        let (shard_rows, _) = sorted_rows(&sharded, &pts, eps);
        assert_eq!(flat_rows, shard_rows);
    }
}

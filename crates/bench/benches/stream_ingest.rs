//! Streaming benches: ingest throughput, snapshot latency, and the
//! refit-vs-rebuild comparison that justifies the BVH update policy.
//!
//! Three groups:
//!
//! * `refit_vs_rebuild` — the raw scene-maintenance primitives: removing a
//!   slice of expired primitives via `rtcore::bvh::refit` against a full
//!   LBVH rebuild of the survivors, at several scene sizes.  This is the
//!   acceptance-criterion bench: refit must be demonstrably cheaper.
//! * `stream_ingest` — end-to-end sliding-window ingest throughput of
//!   `StreamingClusterer` under (a) the default refit-first update policy
//!   and (b) a policy pinned to rebuild on every batch.
//! * `snapshot_latency` — clean-path vs dirty-path snapshot cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtcore::bvh::{refit, spheres_from_points, BvhBuilder, LbvhBuilder};
use rtcore::geometry::Point3;
use rtcore::hardware::WorkCounters;
use rtdbscan::DbscanParams;
use rtdbscan_datasets::{generate, PaperDataset};
use rtdbscan_stream::{StreamingClusterer, StreamingConfig, WindowPolicy};
use std::hint::black_box;
use std::time::Duration;

fn bench_refit_vs_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("refit_vs_rebuild");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[10_000usize, 60_000] {
        let points = generate(PaperDataset::PortoTaxi, n, 42);
        let radius = 0.5f32;
        let base = LbvhBuilder::default()
            .build(spheres_from_points(&points, radius))
            .unwrap();
        group.throughput(Throughput::Elements(n as u64));
        // Refit: drop 10% of the primitives in place.
        group.bench_with_input(BenchmarkId::new("refit_drop_10pct", n), &base, |b, base| {
            b.iter(|| {
                let mut bvh = base.clone();
                let mut counters = WorkCounters::ZERO;
                refit::remove_points(&mut bvh, |i| i % 10 == 0, &mut counters);
                black_box((bvh.primitives.len(), counters.refit_node_ops))
            })
        });
        // Rebuild: fresh LBVH over the same survivors.
        group.bench_with_input(
            BenchmarkId::new("rebuild_survivors", n),
            &base,
            |b, base| {
                b.iter(|| {
                    let survivors: Vec<_> = base
                        .primitives
                        .iter()
                        .filter(|s| s.point_index % 10 != 0)
                        .copied()
                        .collect();
                    black_box(
                        LbvhBuilder::default()
                            .build(survivors)
                            .unwrap()
                            .node_count(),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Feed a replayed Porto stream through a clusterer and return points/sec
/// bookkeeping inputs (total points ingested).
fn drive_stream(config: StreamingConfig, points: &[Point3], batch: usize) -> StreamingClusterer {
    let mut clusterer = StreamingClusterer::new(config).unwrap();
    let mut t = 0.0f64;
    for chunk in points.chunks(batch) {
        let timed: Vec<(Point3, f64)> = chunk
            .iter()
            .map(|&p| {
                t += 1.0;
                (p, t)
            })
            .collect();
        clusterer.ingest(&timed).unwrap();
    }
    clusterer
}

fn bench_stream_ingest(c: &mut Criterion) {
    let total = 30_000usize;
    let window = 8_000usize;
    let batch = 500usize;
    let points = generate(PaperDataset::PortoTaxi, total, 42);
    let params = DbscanParams::new(0.5, 8).unwrap();

    let refit_first = StreamingConfig::new(params, WindowPolicy::Count(window));
    let rebuild_always = StreamingConfig {
        // Any pending point forces a rebuild; the refit path never fires.
        max_pending_fraction: 1e-9,
        ..refit_first
    };

    let mut group = c.benchmark_group("stream_ingest_30k_window8k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(4));
    group.throughput(Throughput::Elements(total as u64));
    group.bench_function("refit_policy", |b| {
        b.iter(|| black_box(drive_stream(refit_first, &points, batch).stats()))
    });
    group.bench_function("rebuild_every_batch", |b| {
        b.iter(|| black_box(drive_stream(rebuild_always, &points, batch).stats()))
    });
    group.finish();

    // One-off decision/work report so the policy's effect is visible in
    // bench output (and in the simulated device model's terms).
    for (name, cfg) in [
        ("refit_policy", refit_first),
        ("rebuild_every_batch", rebuild_always),
    ] {
        let clusterer = drive_stream(cfg, &points, batch);
        let stats = clusterer.stats();
        let counters = clusterer.counters();
        let device = rtcore::hardware::DeviceModel::default();
        let path = rtcore::hardware::ExecutionPath::RtCore;
        // The cost model charges the fixed build-kernel setup once per
        // recorded rebuild, so accumulated streaming counters price
        // correctly without correction.
        let build_time = device.build_time(&counters, path).as_secs_f64();
        let total_time = device.total_time(&counters, path).as_secs_f64();
        println!(
            "{name}: refits={} rebuilds={} refit_node_ops={} build_prims={} \
             simulated_build={build_time:.6}s simulated_total={total_time:.6}s",
            stats.refits, stats.rebuilds, counters.refit_node_ops, counters.build_prims
        );
    }
}

fn bench_snapshot_latency(c: &mut Criterion) {
    let points = generate(PaperDataset::PortoTaxi, 12_000, 7);
    let params = DbscanParams::new(0.5, 8).unwrap();
    let config = StreamingConfig::new(params, WindowPolicy::Count(8_000));

    let mut group = c.benchmark_group("snapshot_latency_window8k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(8_000));

    // Clean path: insert-only history, partition maintained incrementally.
    let mut clean = drive_stream(config, &points[..8_000], 500);
    group.bench_function("clean_path", |b| b.iter(|| black_box(clean.snapshot())));

    // Dirty path: window slid (core points retired), stage-2 re-forms.
    group.bench_function("dirty_path", |b| {
        b.iter(|| {
            // Re-dirty by sliding one batch further each iteration pattern;
            // rebuild a fresh slid clusterer outside timing would be
            // costly, so slide once and snapshot (first call is dirty,
            // subsequent are clean — the mix approximates steady state).
            let mut slid = drive_stream(config, &points, 500);
            black_box(slid.snapshot())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_refit_vs_rebuild,
    bench_stream_ingest,
    bench_snapshot_latency
);
criterion_main!(benches);

//! Reusable traversal scratch arenas — the zero-allocation hot path.
//!
//! Every structure the wavefront and single-ray engines need between
//! launches lives in a [`TraversalScratch`]: a flat bump-allocated query-id
//! **segment arena** with an explicit `(node, seg_start, seg_len)` frame
//! stack (replacing the old per-node `Vec<u32>` clones), the SoA-staged
//! packet query lanes, the per-query alive flags and outcomes, and the
//! single-ray node stack.  Buffers are **grow-only**: a launch may enlarge
//! them, nothing ever shrinks them, so after one warm-up launch of the
//! largest shape the steady state performs no heap allocation at all — the
//! property `tests/alloc_regression.rs` pins with a counting allocator.
//!
//! Scratches are owned per worker and handed out by a [`ScratchPool`]:
//! workers `acquire()` a guard at the start of a packet (or query), the
//! guard returns the scratch to the pool on drop, and the pool never holds
//! more scratches than the peak number of concurrent workers.
//!
//! # The segment arena
//!
//! The wavefront engine used to keep a worklist of `(node, Vec<u32>)`
//! pairs, cloning the query list for every interior child.  The arena
//! replaces that with one flat `Vec<u32>` plus frames indexing into it.
//! Frames are pushed and popped LIFO and every frame's segment is appended
//! at the arena top when pushed, so the popped frame's segment is always
//! the arena suffix — consuming a frame is a `truncate`, publishing a
//! child segment is a bump append, and the arena's high-water mark is
//! bounded by (tree depth × packet size) instead of the total number of
//! node visits.
//!
//! # Examples
//!
//! ```
//! use rtcore::bvh::{spheres_from_points, BvhBuilder, LbvhBuilder, WideBvh};
//! use rtcore::geometry::{Point3, Ray};
//! use rtcore::hardware::WorkCounters;
//! use rtcore::traversal::{traverse_batch_with_scratch, Traversal, TraversalScratch};
//!
//! let points: Vec<Point3> = (0..64).map(|i| Point3::new(i as f32 * 0.3, 0.0, 0.0)).collect();
//! let bvh = LbvhBuilder::default()
//!     .build(spheres_from_points(&points, 0.5))
//!     .unwrap();
//! let wide = WideBvh::from_binary(&bvh);
//! let rays: Vec<Ray> = points.iter().map(|&p| Ray::epsilon_ray(p)).collect();
//!
//! // One scratch, reused across launches: only the first launch allocates.
//! let mut scratch = TraversalScratch::default();
//! let mut counters = WorkCounters::ZERO;
//! for _ in 0..3 {
//!     let outcomes =
//!         traverse_batch_with_scratch(&wide, &rays, &mut scratch, &mut counters, |_q, _s, c| {
//!             c.dist_comps += 1;
//!             Traversal::Continue
//!         });
//!     assert_eq!(outcomes.len(), rays.len());
//! }
//! assert_eq!(counters.batched_launches, 3);
//! ```

use crate::traversal::TraversalOutcome;
use parking_lot::Mutex;

/// One frame of the wavefront traversal stack: a wide node plus the segment
/// of the query arena that reached it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SegFrame {
    /// Wide node index.
    pub node: u32,
    /// First entry of this frame's segment in the arena.
    pub seg_start: u32,
    /// Segment length.
    pub seg_len: u32,
}

/// Reusable, grow-only working memory for the traversal engines.
///
/// See the [module docs](self) for the lifecycle and an example.  A fresh
/// (`Default`) scratch is empty; the first launch sizes every buffer and
/// later launches of the same or smaller shape reuse the capacity without
/// touching the allocator.
#[derive(Debug, Default)]
pub struct TraversalScratch {
    /// Flat bump arena of packet-local query ids; frames address segments.
    pub(crate) arena: Vec<u32>,
    /// Explicit wavefront stack of `(node, seg_start, seg_len)` frames.
    pub(crate) frames: Vec<SegFrame>,
    /// Node stack for the single-ray engines.
    pub(crate) node_stack: Vec<u32>,
    /// Per-query liveness for the current launch.
    pub(crate) alive: Vec<bool>,
    /// Per-query outcomes for the current launch.
    pub(crate) outcomes: Vec<TraversalOutcome>,
    /// Query ids alive at the node currently being visited.
    pub(crate) live: Vec<u32>,
    /// Child-slot hit mask per entry of `live`.
    pub(crate) masks: Vec<u8>,
    /// SoA-staged query origins (x lane), one entry per packet ray.
    pub(crate) qx: Vec<f32>,
    /// SoA-staged query origins (y lane).
    pub(crate) qy: Vec<f32>,
    /// SoA-staged query origins (z lane).
    pub(crate) qz: Vec<f32>,
    /// `(query, hit)` pair buffer for CSR output builds.
    pub(crate) pairs: Vec<(u32, u32)>,
}

impl TraversalScratch {
    /// A fresh scratch with empty buffers (identical to `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total heap capacity currently held, in bytes — instrumentation for
    /// sizing worker pools, not part of the cost model.
    pub fn capacity_bytes(&self) -> usize {
        self.arena.capacity() * std::mem::size_of::<u32>()
            + self.frames.capacity() * std::mem::size_of::<SegFrame>()
            + self.node_stack.capacity() * std::mem::size_of::<u32>()
            + self.alive.capacity()
            + self.outcomes.capacity() * std::mem::size_of::<TraversalOutcome>()
            + self.live.capacity() * std::mem::size_of::<u32>()
            + self.masks.capacity()
            + (self.qx.capacity() + self.qy.capacity() + self.qz.capacity())
                * std::mem::size_of::<f32>()
            + self.pairs.capacity() * std::mem::size_of::<(u32, u32)>()
    }

    /// Stage a packet's query origins into the SoA lanes.  Returns `true`
    /// if every ray is a degenerate point query (the neighbour-search
    /// shape), enabling the lockstep lane test.
    pub(crate) fn stage_origins(&mut self, rays: &[crate::geometry::Ray]) -> bool {
        self.qx.clear();
        self.qy.clear();
        self.qz.clear();
        let mut all_points = true;
        for ray in rays {
            self.qx.push(ray.origin.x);
            self.qy.push(ray.origin.y);
            self.qz.push(ray.origin.z);
            all_points &= ray.is_point_query();
        }
        all_points
    }
}

/// A lock-guarded free list of per-worker scratch state.
///
/// `acquire()` pops an idle item (or creates one on first use); dropping
/// the returned [`PoolGuard`] pushes it back.  The pool holds at most the
/// peak number of concurrent workers and items are grow-only, so a warm
/// pool serves the steady state without heap traffic — the lock is held
/// only for the pop/push itself.
#[derive(Debug, Default)]
pub struct ScratchPool<T: Default = TraversalScratch> {
    pool: Mutex<Vec<T>>,
}

impl<T: Default> ScratchPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool {
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Check out an idle item, creating a fresh one only when every item is
    /// in use (i.e. at most once per peak-concurrent worker).
    pub fn acquire(&self) -> PoolGuard<'_, T> {
        let item = self.pool.lock().pop().unwrap_or_default();
        PoolGuard {
            pool: self,
            item: Some(item),
        }
    }

    /// Number of idle items currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.pool.lock().len()
    }
}

/// Checked-out scratch state; returns itself to the pool on drop.
#[derive(Debug)]
pub struct PoolGuard<'a, T: Default> {
    pool: &'a ScratchPool<T>,
    item: Option<T>,
}

impl<T: Default> std::ops::Deref for PoolGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // analyze-allow: lib-unwrap -- pool guard invariant: the item is only None after Drop takes it back
        self.item.as_ref().expect("present until drop")
    }
}

impl<T: Default> std::ops::DerefMut for PoolGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // analyze-allow: lib-unwrap -- pool guard invariant: the item is only None after Drop takes it back
        self.item.as_mut().expect("present until drop")
    }
}

impl<T: Default> Drop for PoolGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            self.pool.pool.lock().push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_items() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        assert_eq!(pool.idle(), 0);
        {
            let mut a = pool.acquire();
            a.push(7);
            let b = pool.acquire();
            assert!(b.is_empty());
        }
        assert_eq!(pool.idle(), 2);
        // One of the recycled items still holds its capacity.
        let recycled = pool.acquire();
        assert!(recycled.capacity() >= 1 || recycled.capacity() == 0);
        drop(recycled);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn scratch_capacity_accounting_grows_with_use() {
        let mut s = TraversalScratch::new();
        assert_eq!(s.capacity_bytes(), 0);
        s.arena.reserve(128);
        s.pairs.reserve(16);
        assert!(s.capacity_bytes() >= 128 * 4 + 16 * 8);
    }
}

//! The OptiX / OWL-like programming model.
//!
//! OWL splits a ray-tracing computation into small user programs bound to a
//! pipeline: *RayGen* creates rays, the hardware builds and traverses the
//! BVH, and for every candidate primitive the *Intersection* program decides
//! whether the primitive is really hit; *AnyHit*, *ClosestHit* and *Miss* are
//! optional.  RT-DBSCAN implements both of its clustering phases **inside the
//! Intersection program** and explicitly disables AnyHit and ClosestHit
//! (Section IV), which is exactly how this module is intended to be used.
//!
//! A [`Pipeline`] borrows a built [`crate::bvh::Bvh`] ("the scene"), a user
//! [`RayProgram`] provides the programmable stages, and
//! [`Pipeline::launch`] executes one ray per launch index in parallel —
//! the software analogue of launching one CUDA thread per ray.

mod launch;
mod program;

pub use launch::{LaunchResult, Pipeline, PipelineConfig, TraversalEngine};
pub use program::{GeometryKind, ProgramFlow, RayProgram};

pub use crate::bvh::WideLayout;
pub use crate::simd::SimdPolicy;
pub use crate::traversal::QueryOrder;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bvh::{spheres_from_points, BvhBuilder, SahBuilder};
    use crate::geometry::{Point3, Ray, Sphere};
    use crate::hardware::WorkCounters;

    /// A program that counts, for each launch index, how many spheres contain
    /// the corresponding query point — i.e. the neighbour-count kernel of
    /// RT-DBSCAN's first stage.
    struct CountNeighbors<'a> {
        points: &'a [Point3],
        radius: f32,
    }

    impl RayProgram for CountNeighbors<'_> {
        type Payload = u32;

        fn ray_gen(&self, launch_index: usize) -> (Ray, u32) {
            (Ray::epsilon_ray(self.points[launch_index]), 0)
        }

        fn intersection(
            &self,
            launch_index: usize,
            sphere: &Sphere,
            ray: &Ray,
            payload: &mut u32,
            counters: &mut WorkCounters,
        ) -> ProgramFlow {
            counters.dist_comps += 1;
            let within = sphere.center.distance_squared(ray.origin) <= self.radius * self.radius;
            if within && sphere.point_index != launch_index as u32 {
                *payload += sphere.multiplicity;
            }
            ProgramFlow::Continue
        }
    }

    #[test]
    fn pipeline_counts_neighbors_in_parallel() {
        // Points on a line, spacing 1, radius 1.5 → interior points have 2
        // neighbours, the two endpoints have 1.
        let points: Vec<Point3> = (0..64).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
        let bvh = SahBuilder::default()
            .build(spheres_from_points(&points, 1.5))
            .unwrap();
        let pipeline = Pipeline::new(&bvh);
        let program = CountNeighbors {
            points: &points,
            radius: 1.5,
        };
        let result = pipeline.launch(points.len(), &program);
        assert_eq!(result.payloads.len(), 64);
        assert_eq!(result.payloads[0], 1);
        assert_eq!(result.payloads[63], 1);
        assert!(result.payloads[1..63].iter().all(|&c| c == 2));
        assert_eq!(result.counters.rays, 64);
        assert!(result.counters.prim_tests > 0);
        assert!(result.counters.anyhit_invocations == 0);
    }

    #[test]
    fn sequential_and_parallel_launch_agree() {
        let points: Vec<Point3> = (0..200)
            .map(|i| Point3::new((i % 20) as f32 * 0.3, (i / 20) as f32 * 0.3, 0.0))
            .collect();
        let bvh = SahBuilder::default()
            .build(spheres_from_points(&points, 0.5))
            .unwrap();
        let program = CountNeighbors {
            points: &points,
            radius: 0.5,
        };
        let par = Pipeline::new(&bvh).launch(points.len(), &program);
        let seq = Pipeline::new(&bvh).launch_sequential(points.len(), &program);
        assert_eq!(par.payloads, seq.payloads);
        assert_eq!(par.counters, seq.counters);
    }
}

//! In-workspace static analysis for the RT-DBSCAN reproduction.
//!
//! The workspace's correctness story rests on disciplines no off-the-shelf
//! linter knows about: saturating counter arithmetic (bit-identity of
//! `WorkCounters` across backends), justified atomic orderings in the
//! lock-free core, `SAFETY:` comments on the SIMD kernels, and the
//! zero-allocation guarantee on the traversal hot path.  This crate
//! enforces them with a hand-rolled lexer ([`lexer`]), a rule registry
//! ([`rules`]) and a workspace walker ([`engine`]) — no crates.io
//! dependencies, so it builds in the offline container.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p rtdbscan-analyze -- --deny-warnings --format json
//! cargo xtask analyze                 # thin alias (.cargo/config.toml)
//! cargo test -p rtdbscan-analyze --features loom-models   # model checker
//! ```

pub mod engine;
pub mod lexer;
pub mod rules;

//! Morton (Z-order) codes and the radix sort used by the LBVH builder.
//!
//! GPU BVH builders (including the ones behind OptiX's fast build mode)
//! linearise primitives along a space-filling curve and then emit the
//! hierarchy from the sorted order.  This module provides the 30-bit 3-D
//! Morton encoding (10 bits per axis) that the LBVH builder in
//! [`crate::bvh::lbvh`] consumes, plus a stable LSD radix sort over the codes
//! so the builder does not depend on the standard library sort (and so the
//! cost model can account for the sort explicitly).
//!
//! The sort comes in two flavours: the original sequential
//! [`radix_sort_by_code`] and a chunk-parallel [`radix_sort_by_code_parallel`]
//! (per-chunk histograms, an exclusive prefix-sum across chunks, and a stable
//! parallel scatter into disjoint output regions).  Both produce bit-identical
//! output and charge exactly the same number of scatter operations; the
//! parallel variant additionally reports its cross-chunk histogram merges so
//! the cost model can see where the bookkeeping differs.

use rayon::prelude::*;

/// A 30-bit 3-D Morton code paired with the index of the primitive it was
/// computed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MortonCode {
    /// The interleaved code.
    pub code: u32,
    /// Index of the primitive this code belongs to.
    pub index: u32,
}

/// Spread the lower 10 bits of `v` so that there are two zero bits between
/// each original bit ("bit interleaving" helper).
#[inline]
fn expand_bits_10(v: u32) -> u32 {
    let mut x = v & 0x3ff;
    x = (x | (x << 16)) & 0x030000FF;
    x = (x | (x << 8)) & 0x0300F00F;
    x = (x | (x << 4)) & 0x030C30C3;
    x = (x | (x << 2)) & 0x09249249;
    x
}

/// Encode normalised coordinates (each in `[0, 1]`) into a 30-bit Morton
/// code.  Values outside `[0, 1]` are clamped.
#[inline]
pub fn morton_encode_normalized(x: f32, y: f32, z: f32) -> u32 {
    #[inline]
    fn quantize(v: f32) -> u32 {
        let v = (v.clamp(0.0, 1.0) * 1023.0).round();
        v as u32
    }
    let xx = expand_bits_10(quantize(x));
    let yy = expand_bits_10(quantize(y));
    let zz = expand_bits_10(quantize(z));
    (xx << 2) | (yy << 1) | zz
}

/// Encode a point given the scene bounds used for normalisation.
///
/// Degenerate extents (a flat axis, common for 2-D data with `z = 0`) map to
/// coordinate 0 on that axis.
#[inline]
pub fn morton_encode_3d(
    p: crate::geometry::Point3,
    scene_min: crate::geometry::Point3,
    scene_extent: (f32, f32, f32),
) -> u32 {
    #[inline]
    fn norm(v: f32, min: f32, extent: f32) -> f32 {
        if extent > 0.0 {
            (v - min) / extent
        } else {
            0.0
        }
    }
    morton_encode_normalized(
        norm(p.x, scene_min.x, scene_extent.0),
        norm(p.y, scene_min.y, scene_extent.1),
        norm(p.z, scene_min.z, scene_extent.2),
    )
}

/// Stable least-significant-digit radix sort of Morton codes (8-bit digits,
/// 4 passes).  Returns the number of scatter operations performed so the
/// device cost model can charge for the sort.
pub fn radix_sort_by_code(codes: &mut Vec<MortonCode>) -> u64 {
    let n = codes.len();
    if n <= 1 {
        return 0;
    }
    let mut scratch: Vec<MortonCode> = vec![MortonCode { code: 0, index: 0 }; n];
    let mut ops: u64 = 0;
    for pass in 0..4u32 {
        let shift = pass * 8;
        let mut counts = [0usize; 256];
        for c in codes.iter() {
            counts[((c.code >> shift) & 0xff) as usize] += 1;
        }
        let mut offsets = [0usize; 256];
        let mut running = 0usize;
        for (digit, count) in counts.iter().enumerate() {
            offsets[digit] = running;
            running += count;
        }
        for c in codes.iter() {
            let digit = ((c.code >> shift) & 0xff) as usize;
            scratch[offsets[digit]] = *c;
            offsets[digit] += 1;
            ops += 1;
        }
        std::mem::swap(codes, &mut scratch);
    }
    ops
}

/// Raw-pointer wrapper that lets chunk workers write into *disjoint* regions
/// of one shared output buffer.  Every use site must argue disjointness in a
/// `SAFETY` comment; the wrapper itself only launders the pointer across the
/// `Send`/`Sync` boundary of the scoped-thread pool.
pub(crate) struct SendPtr<T>(*mut T);

// SAFETY: `SendPtr` is a plain pointer with no aliasing guarantees of its
// own; each use site partitions the pointee buffer into disjoint index
// ranges per worker (asserted where the pointer is created), so concurrent
// writes never overlap and the buffer is only read again after the pool
// joins (the join is the happens-before edge).
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: see the `Send` justification above — the wrapper is shared across
// workers by reference, and all access goes through disjoint regions.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

/// Work performed by [`radix_sort_by_code_parallel`], reported separately so
/// the caller can charge `build_sort_ops` exactly like the sequential sort
/// and account the parallel-only prefix-sum bookkeeping on its own counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadixSortStats {
    /// Stable scatter operations — identical to what the sequential sort
    /// would have returned (4 passes × n elements).
    pub scatter_ops: u64,
    /// Cross-chunk merges performed by the exclusive prefix-sum over the
    /// per-chunk digit histograms (zero when the sort ran sequentially).
    pub chunk_merges: u64,
}

/// Chunk-parallel stable LSD radix sort: same four 8-bit passes as
/// [`radix_sort_by_code`], but each pass computes per-chunk digit histograms
/// in parallel, runs one sequential digit-major exclusive prefix-sum across
/// the chunks, and then scatters every chunk in parallel into the disjoint
/// output regions the prefix-sum assigned.
///
/// The output is **bit-identical** to the sequential sort for any `workers`
/// value: region order is (digit ascending, chunk ascending) and every chunk
/// scatters its elements in index order, which is exactly the sequential
/// stable order.  `workers` is a *logical* chunk count — the thread pool may
/// run chunks on fewer physical threads without affecting the result.
pub fn radix_sort_by_code_parallel(codes: &mut Vec<MortonCode>, workers: usize) -> RadixSortStats {
    let n = codes.len();
    if workers <= 1 || n <= 1 {
        return RadixSortStats {
            scatter_ops: radix_sort_by_code(codes),
            chunk_merges: 0,
        };
    }
    let workers = workers.min(n);
    let chunk = n.div_ceil(workers);
    let mut scratch: Vec<MortonCode> = vec![MortonCode { code: 0, index: 0 }; n];
    let mut chunk_merges = 0u64;
    for pass in 0..4u32 {
        let shift = pass * 8;
        let src: &[MortonCode] = codes;
        let histograms: Vec<[usize; 256]> = (0..workers)
            .into_par_iter()
            .map(|t| {
                let lo = (t * chunk).min(n);
                let hi = ((t + 1) * chunk).min(n);
                let mut counts = [0usize; 256];
                for c in &src[lo..hi] {
                    counts[((c.code >> shift) & 0xff) as usize] += 1;
                }
                counts
            })
            .collect();
        // Digit-major exclusive prefix-sum: region (digit, chunk) starts
        // after every smaller digit and every earlier chunk of the same
        // digit — the order that makes the parallel scatter stable.
        let mut offsets: Vec<[usize; 256]> = vec![[0usize; 256]; workers];
        let mut running = 0usize;
        for digit in 0..256 {
            for (t, histogram) in histograms.iter().enumerate() {
                offsets[t][digit] = running;
                running += histogram[digit];
                chunk_merges += 1;
            }
        }
        debug_assert_eq!(running, n);
        let out = SendPtr::new(scratch.as_mut_ptr());
        (0..workers).into_par_iter().for_each(|t| {
            let lo = (t * chunk).min(n);
            let hi = ((t + 1) * chunk).min(n);
            let mut offs = offsets[t];
            // The prefix-sum partitions `[0, n)` into disjoint (digit, chunk)
            // regions sized by the per-chunk histograms; worker `t` only
            // writes inside its own regions (starting at `offsets[t][digit]`,
            // bumping by one per element, bounded by its histogram count).
            for c in &src[lo..hi] {
                let digit = ((c.code >> shift) & 0xff) as usize;
                // SAFETY: disjoint (digit, chunk) regions (see above) — no
                // two workers touch the same slot, every slot is written
                // exactly once, and scratch is read only after the join.
                unsafe {
                    *out.get().add(offs[digit]) = *c;
                }
                offs[digit] += 1;
            }
        });
        std::mem::swap(codes, &mut scratch);
    }
    RadixSortStats {
        scatter_ops: 4 * n as u64,
        chunk_merges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point3;

    #[test]
    fn expand_bits_spacing() {
        // 0b111 -> 0b1001001
        assert_eq!(expand_bits_10(0b111), 0b1001001);
        assert_eq!(expand_bits_10(1), 1);
        assert_eq!(expand_bits_10(0), 0);
    }

    #[test]
    fn morton_origin_is_zero_and_corner_is_max() {
        assert_eq!(morton_encode_normalized(0.0, 0.0, 0.0), 0);
        let max = morton_encode_normalized(1.0, 1.0, 1.0);
        assert_eq!(max, (1 << 30) - 1);
    }

    #[test]
    fn morton_clamps_out_of_range() {
        assert_eq!(
            morton_encode_normalized(-1.0, 2.0, 0.5),
            morton_encode_normalized(0.0, 1.0, 0.5)
        );
    }

    #[test]
    fn morton_orders_along_axes() {
        // Larger x (with other coordinates 0) must give a strictly larger code.
        let lo = morton_encode_normalized(0.1, 0.0, 0.0);
        let hi = morton_encode_normalized(0.9, 0.0, 0.0);
        assert!(hi > lo);
    }

    #[test]
    fn morton_encode_3d_handles_flat_axis() {
        let min = Point3::new(0.0, 0.0, 0.0);
        let extent = (10.0, 10.0, 0.0); // flat z, as for 2-D data
        let a = morton_encode_3d(Point3::new(1.0, 1.0, 0.0), min, extent);
        let b = morton_encode_3d(Point3::new(9.0, 9.0, 0.0), min, extent);
        assert!(b > a);
    }

    #[test]
    fn radix_sort_sorts_and_is_stable() {
        let mut codes = vec![
            MortonCode { code: 30, index: 0 },
            MortonCode { code: 10, index: 1 },
            MortonCode { code: 30, index: 2 },
            MortonCode { code: 5, index: 3 },
            MortonCode { code: 10, index: 4 },
        ];
        let ops = radix_sort_by_code(&mut codes);
        assert!(ops > 0);
        let sorted: Vec<u32> = codes.iter().map(|c| c.code).collect();
        assert_eq!(sorted, vec![5, 10, 10, 30, 30]);
        // Stability: equal codes keep their original relative order.
        assert_eq!(codes[1].index, 1);
        assert_eq!(codes[2].index, 4);
        assert_eq!(codes[3].index, 0);
        assert_eq!(codes[4].index, 2);
    }

    #[test]
    fn radix_sort_handles_trivial_inputs() {
        let mut empty: Vec<MortonCode> = vec![];
        assert_eq!(radix_sort_by_code(&mut empty), 0);
        let mut one = vec![MortonCode { code: 9, index: 0 }];
        assert_eq!(radix_sort_by_code(&mut one), 0);
        assert_eq!(one[0].code, 9);
    }

    // The parallel sort deliberately uses no atomics: every pass hands work
    // between phases through the pool's fork/join edges (histograms are
    // collected before the prefix-sum runs; the scatter only starts after the
    // prefix-sum assigned disjoint regions), so there is no interleaving to
    // model-check with loom.  Instead, the handoff is exercised as a
    // deterministic schedule sweep: the result must be bit-identical to the
    // sequential sort for *every* logical chunk count, including chunk counts
    // far above the physical core count.
    #[test]
    fn parallel_radix_sort_matches_sequential_for_all_worker_counts() {
        let mut state = 0xdeadbeefu64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) & 0x3fffffff
        };
        // Heavy duplication so stability is actually load-bearing.
        let base: Vec<MortonCode> = (0..2000)
            .map(|i| MortonCode {
                code: next() % 97,
                index: i,
            })
            .collect();
        let mut expected = base.clone();
        let seq_ops = radix_sort_by_code(&mut expected);
        for workers in [1usize, 2, 3, 5, 8, 16, 64] {
            let mut codes = base.clone();
            let stats = radix_sort_by_code_parallel(&mut codes, workers);
            assert_eq!(codes, expected, "workers={workers}");
            assert_eq!(stats.scatter_ops, seq_ops, "workers={workers}");
            if workers > 1 {
                assert!(stats.chunk_merges > 0, "workers={workers}");
            } else {
                assert_eq!(stats.chunk_merges, 0);
            }
        }
    }

    #[test]
    fn parallel_radix_sort_handles_identical_codes_and_tiny_inputs() {
        let identical: Vec<MortonCode> = (0..100)
            .map(|i| MortonCode { code: 42, index: i })
            .collect();
        for workers in [2usize, 7, 200] {
            let mut codes = identical.clone();
            radix_sort_by_code_parallel(&mut codes, workers);
            // Stability: identical codes keep their original order.
            assert!(codes.iter().enumerate().all(|(i, c)| c.index == i as u32));
        }
        let mut empty: Vec<MortonCode> = vec![];
        assert_eq!(radix_sort_by_code_parallel(&mut empty, 8).scatter_ops, 0);
        let mut one = vec![MortonCode { code: 9, index: 0 }];
        let stats = radix_sort_by_code_parallel(&mut one, 8);
        assert_eq!(stats.scatter_ops, 0);
        assert_eq!(one[0].code, 9);
    }

    #[test]
    fn radix_sort_matches_std_sort_on_random_codes() {
        // Simple LCG so the test does not need the rand crate here.
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) & 0x3fffffff
        };
        let mut codes: Vec<MortonCode> = (0..1000)
            .map(|i| MortonCode {
                code: next(),
                index: i,
            })
            .collect();
        let mut expected: Vec<u32> = codes.iter().map(|c| c.code).collect();
        expected.sort_unstable();
        radix_sort_by_code(&mut codes);
        let got: Vec<u32> = codes.iter().map(|c| c.code).collect();
        assert_eq!(got, expected);
    }
}

//! Benchmark harness for the RT-DBSCAN reproduction.
//!
//! This crate turns the algorithms in `rtdbscan` and the generators in
//! `rtdbscan-datasets` into the concrete experiments of the paper's
//! evaluation section.  Every table and figure has a corresponding function
//! in [`experiments`] that returns an [`ExperimentTable`]; the `repro` binary
//! prints them and `EXPERIMENTS.md` records the measured numbers next to the
//! paper's.
//!
//! Two kinds of numbers are produced:
//!
//! * **simulated device time** — the per-phase work counters of a run charged
//!   to the RT-core or shader-core cost profile of the simulated RTX 2060
//!   (see `rtcore::hardware`).  These are the numbers the figures are rebuilt
//!   from, because the speedups in the paper come from the RT hardware, which
//!   does not exist on this machine.
//! * **wall-clock time** of this Rust implementation, reported alongside for
//!   transparency and used by the Criterion micro-benchmarks.

#![warn(missing_docs)]

pub mod experiments;
pub mod measure;
pub mod table;

pub use experiments::ExperimentScale;
pub use measure::{measure, MeasuredRun};
pub use table::ExperimentTable;

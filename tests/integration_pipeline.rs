//! Integration tests of the rtcore substrate against the dataset generators:
//! BVH invariants, query correctness against brute force, and counter
//! consistency — the plumbing every experiment rests on.

use proptest::prelude::*;
use rtcore::bvh::{
    build_over_points, compact_coincident, validate, BvhBuilder, LbvhBuilder, MedianSplitBuilder,
    SahBuilder,
};
use rtcore::geometry::{Point3, Ray};
use rtcore::hardware::{DeviceModel, ExecutionPath, WorkCounters};
use rtcore::index::{IndexKind, NeighborIndex, NeighborIndexBuilder};
use rtcore::traversal::collect_sphere_hits;
use rtdbscan_datasets::{generate, PaperDataset};

fn binary_index(points: &[Point3], radius: f32) -> Box<dyn NeighborIndex> {
    NeighborIndexBuilder::new(IndexKind::BinaryBvh)
        .build(points, radius)
        .expect("finite points and positive radius")
}

fn index_neighbors(index: &dyn NeighborIndex, points: &[Point3], q: usize) -> Vec<u32> {
    let mut scratch = WorkCounters::ZERO;
    let mut got = index.neighbors_of(points[q], index.eps(), Some(q as u32), &mut scratch);
    got.sort_unstable();
    got
}

fn brute_force_neighbors(points: &[Point3], q: usize, radius: f32) -> Vec<u32> {
    let mut out: Vec<u32> = points
        .iter()
        .enumerate()
        .filter(|&(i, p)| i != q && points[q].distance(*p) <= radius)
        .map(|(i, _)| i as u32)
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn bvh_invariants_hold_on_every_dataset_and_builder() {
    for dataset in PaperDataset::ALL {
        let points = generate(dataset, 4_000, 17);
        let (eps, _) = dataset.default_params();
        let builders: Vec<Box<dyn BvhBuilder>> = vec![
            Box::new(LbvhBuilder::default()),
            Box::new(SahBuilder::default()),
            Box::new(MedianSplitBuilder::default()),
        ];
        for builder in builders {
            let bvh = build_over_points(builder.as_ref(), &points, eps).unwrap();
            validate(&bvh)
                .unwrap_or_else(|e| panic!("{:?} on {}: {e}", builder.kind(), dataset.name()));
            assert_eq!(bvh.primitive_count(), points.len());
            assert!(bvh.depth() <= 2 * (points.len() as f32).log2() as usize + 32);
        }
    }
}

#[test]
fn fixed_radius_search_matches_brute_force_on_real_shaped_data() {
    for dataset in PaperDataset::ALL {
        let points = generate(dataset, 1_500, 23);
        let (eps, _) = dataset.default_params();
        let search = binary_index(&points, eps);
        for q in (0..points.len()).step_by(137) {
            assert_eq!(
                index_neighbors(search.as_ref(), &points, q),
                brute_force_neighbors(&points, q, eps),
                "dataset {} query {q}",
                dataset.name()
            );
        }
    }
}

#[test]
fn compaction_preserves_query_semantics_on_duplicated_data() {
    let points = generate(PaperDataset::Ngsim, 3_000, 5);
    let radius = 0.001;
    let compaction = compact_coincident(&points, radius);
    assert!(
        compaction.merged > 0,
        "NGSIM data should contain duplicates"
    );
    let bvh = SahBuilder::default()
        .build(compaction.spheres.clone())
        .unwrap();
    validate(&bvh).unwrap();

    // Multiplicity-weighted neighbour counts over the compacted scene must
    // equal the exact counts over the raw points.
    for q in (0..points.len()).step_by(211) {
        let expected = brute_force_neighbors(&points, q, radius).len() as u64;
        let ray = Ray::epsilon_ray(points[q]);
        let mut counters = WorkCounters::ZERO;
        let mut count = 0u64;
        rtcore::traversal::traverse(&bvh, &ray, &mut counters, |sphere, counters| {
            counters.dist_comps += 1;
            if sphere.center.distance_squared(points[q]) <= radius * radius {
                if sphere.point_index == compaction.representative_of[q] {
                    count += (sphere.multiplicity - 1) as u64;
                } else {
                    count += sphere.multiplicity as u64;
                }
            }
            rtcore::traversal::Traversal::Continue
        });
        assert_eq!(count, expected, "query {q}");
    }
}

#[test]
fn traversal_counters_and_device_model_are_consistent() {
    let points = generate(PaperDataset::PortoTaxi, 5_000, 7);
    let bvh = build_over_points(&LbvhBuilder::default(), &points, 0.5).unwrap();
    let mut counters = WorkCounters::ZERO;
    for (i, &p) in points.iter().enumerate().step_by(10) {
        counters.rays += 1;
        collect_sphere_hits(&bvh, &Ray::epsilon_ray(p), Some(i as u32), &mut counters);
    }
    // Counter sanity: every ray visits at least the root, every primitive
    // test was preceded by an AABB admission, distance filter ran per test.
    assert!(counters.aabb_tests >= counters.rays);
    assert!(counters.dist_comps == counters.prim_tests);
    assert!(counters.node_visits > 0);

    // The same counters are strictly cheaper on the RT path than on the
    // shader path, and build time is charged separately.
    let device = DeviceModel::rtx2060();
    let rt = device.traversal_time(&counters, ExecutionPath::RtCore);
    let sm = device.traversal_time(&counters, ExecutionPath::ShaderCore);
    assert!(rt < sm);
    assert_eq!(
        device
            .build_time(&counters, ExecutionPath::RtCore)
            .as_secs_f64(),
        0.0,
        "no build work was recorded, so no build time may be charged"
    );
}

#[test]
fn query_structure_handles_updates_of_radius_via_rebuild() {
    let points = generate(PaperDataset::Ionosphere3d, 2_000, 3);
    let small = binary_index(&points, 0.1);
    let large = binary_index(&points, 1.0);
    let mut grew = 0;
    for q in (0..points.len()).step_by(97) {
        let a = index_neighbors(small.as_ref(), &points, q).len();
        let b = index_neighbors(large.as_ref(), &points, q).len();
        assert!(b >= a, "larger radius can never lose neighbours");
        if b > a {
            grew += 1;
        }
    }
    assert!(
        grew > 0,
        "a 10x larger radius should grow some neighbourhood"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: for arbitrary point clouds and radii, the RT query primitive
    /// returns exactly the brute-force neighbour set.
    #[test]
    fn rt_findneighbor_equals_brute_force(
        n in 1usize..120,
        radius in 0.05f32..3.0,
        seed in 0u64..500,
        query in 0usize..120,
    ) {
        // Deterministic pseudo-random points from the seed (keep proptest
        // shrinking well-behaved by avoiding external RNG state).
        let pts: Vec<Point3> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(seed);
                let x = ((h >> 16) & 0xffff) as f32 / 65535.0 * 10.0;
                let y = ((h >> 32) & 0xffff) as f32 / 65535.0 * 10.0;
                let z = ((h >> 48) & 0xffff) as f32 / 65535.0 * 2.0;
                Point3::new(x, y, z)
            })
            .collect();
        let q = query % n;
        let search = binary_index(&pts, radius);
        prop_assert_eq!(
            index_neighbors(search.as_ref(), &pts, q),
            brute_force_neighbors(&pts, q, radius)
        );
    }

    /// Property: BVH structural invariants hold for arbitrary point clouds,
    /// including ones with many exact duplicates.
    #[test]
    fn bvh_invariants_hold_for_arbitrary_inputs(
        n in 1usize..200,
        dup_every in 1usize..5,
        radius in 0.01f32..1.0,
        seed in 0u64..500,
    ) {
        let pts: Vec<Point3> = (0..n)
            .map(|i| {
                let base = i / dup_every * dup_every; // duplicate runs
                let h = (base as u64).wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(seed);
                Point3::new_2d(
                    ((h >> 20) & 0x3ff) as f32 / 10.0,
                    ((h >> 40) & 0x3ff) as f32 / 10.0,
                )
            })
            .collect();
        for builder in [rtcore::bvh::BuilderKind::Lbvh, rtcore::bvh::BuilderKind::BinnedSah] {
            let bvh = match builder {
                rtcore::bvh::BuilderKind::Lbvh =>
                    build_over_points(&LbvhBuilder::default(), &pts, radius).unwrap(),
                _ => build_over_points(&SahBuilder::default(), &pts, radius).unwrap(),
            };
            prop_assert!(validate(&bvh).is_ok());
        }
    }
}

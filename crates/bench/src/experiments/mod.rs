//! One function per table / figure of the paper's evaluation.
//!
//! | function | paper artefact |
//! |---|---|
//! | [`fig4_small_dataset`] | Fig 4 — speedup over CUDA-DClust+, 16 K 3DRoad, ε sweep |
//! | [`fig5_eps_sweep`] | Fig 5a/5b/5c — speedup over FDBSCAN vs ε |
//! | [`fig6_size_sweep`] | Fig 6a/6b/6c — speedup over FDBSCAN vs dataset size |
//! | [`fig7_scalability`] | Fig 7 — raw execution-time growth on 3DIono |
//! | [`table1_porto`] | Table I — raw times, Porto size sweep |
//! | [`table2_ngsim_eps`] | Table II + Fig 8a — NGSIM ε sweep |
//! | [`table3_ngsim_size`] | Table III + Fig 8b — NGSIM size sweep |
//! | [`fig9_early_exit`] | Fig 9a/9b/9c — early-termination study |
//! | [`breakdown_analysis`] | §V-D — build vs clustering breakdown |
//! | [`tiny_dataset_crossover`] | §V-B1 — sub-500-point crossover |
//! | [`ablation_triangles`] | §VI-C — triangle-geometry ablation |
//! | [`ablation_builders_and_compaction`] | design-choice ablations (DESIGN.md) |
//!
//! Every experiment takes an [`ExperimentScale`] so the full paper-sized
//! workloads (`--full`) and quick scaled-down runs share one code path.

mod analysis;
mod eps_sweeps;
mod ngsim;
mod size_sweeps;

pub use analysis::{
    ablation_builders_and_compaction, ablation_triangles, breakdown_analysis, fig9_early_exit,
    tiny_dataset_crossover,
};
pub use eps_sweeps::{
    agrees_with_fdbscan, eps_sweep_values, fig4_small_dataset, fig5_eps_sweep, measure_pair,
};
pub use ngsim::{table2_ngsim_eps, table3_ngsim_size, NGSIM_EPS_VALUES};
pub use size_sweeps::{
    fig6_size_sweep, fig7_scalability, size_sweep_params, size_sweep_values, table1_porto,
};

use crate::table::ExperimentTable;
use rtdbscan_datasets::PaperDataset;

/// Scales the paper's workload sizes down so experiments finish quickly on a
/// CPU-only machine; `--full` in the `repro` binary uses [`ExperimentScale::full`].
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Multiplier applied to dataset sizes (and proportionally to `minPts`,
    /// so the density regime — which points are core — is preserved).
    pub factor: f64,
    /// Seed for the dataset generators.
    pub seed: u64,
}

impl ExperimentScale {
    /// Paper-sized workloads (up to 8 M points — slow on a laptop).
    pub fn full() -> Self {
        ExperimentScale {
            factor: 1.0,
            seed: 42,
        }
    }

    /// The default for the `repro` binary: 1/8 of the paper sizes.
    pub fn standard() -> Self {
        ExperimentScale {
            factor: 0.125,
            seed: 42,
        }
    }

    /// Very small workloads for integration tests and smoke runs.
    pub fn smoke() -> Self {
        ExperimentScale {
            factor: 0.01,
            seed: 42,
        }
    }

    /// Scale a dataset size.
    pub fn size(&self, n: usize) -> usize {
        ((n as f64 * self.factor).round() as usize).max(512)
    }

    /// Scale a `minPts` value in proportion to the dataset size so the core /
    /// border / noise structure of the scaled workload matches the paper's.
    pub fn min_pts(&self, m: usize) -> usize {
        ((m as f64 * self.factor).round() as usize).max(2)
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale::standard()
    }
}

/// Generate a scaled instance of a paper dataset.
pub(crate) fn dataset(
    scale: &ExperimentScale,
    which: PaperDataset,
    paper_n: usize,
) -> Vec<rtcore::geometry::Point3> {
    rtdbscan_datasets::generate(which, scale.size(paper_n), scale.seed)
}

/// Run every experiment at the given scale, in the order they appear in the
/// paper.  Used by the `repro` binary's `all` command and by EXPERIMENTS.md
/// generation.
pub fn run_all(scale: &ExperimentScale) -> Vec<ExperimentTable> {
    let mut out = Vec::new();
    out.push(fig4_small_dataset(scale));
    for d in [
        PaperDataset::RoadNetwork,
        PaperDataset::PortoTaxi,
        PaperDataset::Ionosphere3d,
    ] {
        out.push(fig5_eps_sweep(scale, d));
    }
    for d in [
        PaperDataset::RoadNetwork,
        PaperDataset::PortoTaxi,
        PaperDataset::Ionosphere3d,
    ] {
        out.push(fig6_size_sweep(scale, d));
    }
    out.push(fig7_scalability(scale));
    out.push(table1_porto(scale));
    out.push(table2_ngsim_eps(scale));
    out.push(table3_ngsim_size(scale));
    for d in [
        PaperDataset::PortoTaxi,
        PaperDataset::RoadNetwork,
        PaperDataset::Ngsim,
    ] {
        out.push(fig9_early_exit(scale, d));
    }
    out.push(breakdown_analysis(scale));
    out.push(tiny_dataset_crossover(scale));
    out.push(ablation_triangles(scale));
    out.push(ablation_builders_and_compaction(scale));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_helpers() {
        let full = ExperimentScale::full();
        assert_eq!(full.size(1_000_000), 1_000_000);
        assert_eq!(full.min_pts(100), 100);
        let std = ExperimentScale::standard();
        assert_eq!(std.size(1_000_000), 125_000);
        assert_eq!(std.min_pts(100), 13);
        let smoke = ExperimentScale::smoke();
        assert_eq!(smoke.size(16_000), 512); // floor
        assert_eq!(smoke.min_pts(100), 2);
    }

    #[test]
    fn default_scale_is_standard() {
        let d = ExperimentScale::default();
        assert!((d.factor - 0.125).abs() < 1e-12);
    }
}

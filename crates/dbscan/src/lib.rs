//! RT-DBSCAN: DBSCAN accelerated by (simulated) ray-tracing hardware, plus
//! the GPU baselines it is evaluated against.
//!
//! This crate reproduces the algorithmic contribution of *RT-DBSCAN:
//! Accelerating DBSCAN using Ray Tracing Hardware* (Nagarajan & Kulkarni,
//! IPDPS 2023) on top of the `rtcore` software RT pipeline:
//!
//! * [`RtDbscan`] — the paper's algorithm: fixed-radius neighbour searches
//!   expressed as ray–sphere intersection queries over a device-built BVH,
//!   with a two-stage Union-Find clustering (Algorithm 3).
//! * [`Fdbscan`] — the FDBSCAN / ArborX baseline (BVH + Union-Find on the
//!   shader cores), with an optional early-exit traversal.
//! * [`GDbscan`] — the ε-graph + BFS baseline.
//! * [`CudaDclustPlus`] — the grid-index + chain-expansion baseline.
//! * [`ClassicDbscan`] — the sequential reference implementation used as the
//!   correctness oracle.
//!
//! All implementations expose the same [`DbscanAlgorithm`] interface and
//! report per-phase wall-clock timings, work counters and simulated device
//! memory, which is what the `rtdbscan-bench` crate uses to regenerate every
//! table and figure of the paper.
//!
//! Since the API redesign, two orthogonal axes compose through one surface:
//! the *algorithm* ([`engine::Algo`]) and the *neighbour-search backend*
//! ([`engine::IndexKind`], the `rtcore::index::NeighborIndex` trait).  The
//! [`engine::ClusterEngine`] builder façade is the recommended entry point;
//! the per-algorithm structs remain for direct use, and every one of them
//! now also runs over an arbitrary backend via its `run_on` method.
//!
//! # Quickstart
//!
//! ```
//! use rtcore::geometry::Point3;
//! use rtdbscan::prelude::*;
//!
//! // Two tight groups of points and one straggler.
//! let mut points: Vec<Point3> = (0..20).map(|i| Point3::new_2d(0.1 * i as f32, 0.0)).collect();
//! points.extend((0..20).map(|i| Point3::new_2d(100.0 + 0.1 * i as f32, 0.0)));
//! points.push(Point3::new_2d(50.0, 50.0));
//!
//! let engine = ClusterEngine::builder()
//!     .algorithm(Algo::Rt)
//!     .index(IndexKind::WideBatched)
//!     .eps(0.5)
//!     .min_pts(3)
//!     .build()
//!     .unwrap();
//! let result = engine.run(&points).unwrap();
//! assert_eq!(result.clustering.num_clusters(), 2);
//! assert_eq!(result.clustering.noise_count(), 1);
//! ```

#![warn(missing_docs)]

pub mod classic;
pub mod dclust;
pub mod disjoint_set;
pub mod engine;
pub mod fdbscan;
pub mod gdbscan;
pub mod labels;
pub mod metrics;
pub mod params;
pub mod rt_dbscan;
pub mod runner;
pub(crate) mod stages;

pub use classic::ClassicDbscan;
pub use dclust::CudaDclustPlus;
pub use engine::{Algo, ClusterEngine, ClusterEngineBuilder, ClusterSession, ConfigError};
pub use fdbscan::Fdbscan;
pub use gdbscan::GDbscan;
pub use labels::{Clustering, NOISE};
pub use params::DbscanParams;
pub use rt_dbscan::RtDbscan;
pub use runner::{
    DbscanAlgorithm, Phase, PhaseCounters, PhaseTimings, RunResult, SimulatedBreakdown,
};

/// Flat convenience re-exports: `use rtdbscan::prelude::*;` brings in the
/// engine façade, the backend layer, the parameter types and the result
/// types in one line.
pub mod prelude {
    pub use crate::engine::{
        Algo, ClusterEngine, ClusterEngineBuilder, ClusterSession, ConfigError, IndexKind,
        TelemetryConfig,
    };
    pub use crate::labels::{Clustering, NOISE};
    pub use crate::params::DbscanParams;
    pub use crate::runner::{DbscanAlgorithm, Phase, PhaseCounters, PhaseTimings, RunResult};
    pub use crate::{ClassicDbscan, CudaDclustPlus, Fdbscan, GDbscan, RtDbscan};
    pub use rtcore::fault::{CancelScope, CancelToken, Deadline, FaultPlan, MemoryBudget};
    pub use rtcore::index::{
        CsrNeighbors, IndexCapabilities, Neighbor, NeighborFlow, NeighborIndex,
        NeighborIndexBuilder,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcore::geometry::Point3;

    /// The re-exported quickstart types compose as documented.
    #[test]
    fn public_api_smoke_test() {
        let points: Vec<Point3> = (0..30)
            .map(|i| Point3::new_2d(0.2 * i as f32, 0.0))
            .collect();
        let params = DbscanParams::new(0.5, 2).unwrap();
        let algorithms: Vec<Box<dyn DbscanAlgorithm>> = vec![
            Box::new(RtDbscan::default()),
            Box::new(Fdbscan::default()),
            Box::new(GDbscan::default()),
            Box::new(CudaDclustPlus::default()),
            Box::new(ClassicDbscan),
        ];
        for algo in &algorithms {
            let r = algo.run(&points, params).unwrap();
            assert_eq!(r.clustering.num_clusters(), 1, "{}", algo.name());
            assert_eq!(r.clustering.noise_count(), 0, "{}", algo.name());
        }
    }
}

//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The generator behind [`rngs::StdRng`] is a splitmix64 chain — not
//! cryptographic, but statistically plenty for the synthetic dataset
//! generators here, deterministic per seed, and dependency-free.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a type with a standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self;
}

impl Standard for u64 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<G: RngCore>(rng: &mut G) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<G: RngCore>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> f32 {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a value uniformly from `self`.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_sample_range!(i64, i32, i16, i8, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: a splitmix64 chain.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that small seeds do not start in a low-entropy
            // regime.
            let mut rng = StdRng { state: seed };
            rng.next_u64();
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..10).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y = rng.gen_range(2..=3usize);
            assert!((2..=3).contains(&y));
            let z = rng.gen_range(0..7u64);
            assert!(z < 7);
            let w: f64 = rng.gen();
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_probability_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn uniformity_smoke_test() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            buckets[(x * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "{buckets:?}");
        }
    }
}

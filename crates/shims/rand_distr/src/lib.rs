//! Offline stand-in for the parts of `rand_distr` this workspace uses:
//! the [`Normal`] distribution (sampled with the Box-Muller transform) and
//! the [`Distribution`] trait.

use rand::{Rng, RngCore, Standard};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one value using `rng` as the source of randomness.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// Float types [`Normal`] can produce (`f32` and `f64`).
pub trait NormalFloat: Copy {
    /// Widen to `f64` for the internal Box-Muller math.
    fn to_f64(self) -> f64;
    /// Narrow back from `f64`.
    fn from_f64(v: f64) -> Self;
}

impl NormalFloat for f32 {
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
}

impl NormalFloat for f64 {
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(v: f64) -> f64 {
        v
    }
}

/// Normal (Gaussian) distribution with the given mean and standard
/// deviation.
#[derive(Debug, Clone, Copy)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl<F: NormalFloat> Normal<F> {
    /// Create a normal distribution; fails if `std_dev` is negative or
    /// non-finite.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        let sd = std_dev.to_f64();
        if !sd.is_finite() || sd < 0.0 {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl<F: NormalFloat> Distribution<F> for Normal<F> {
    fn sample<R: RngCore>(&self, rng: &mut R) -> F {
        // Box-Muller in f64 for accuracy, cast down at the end.
        let mut u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2: f64 = f64::sample_standard(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_std_dev() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(0.0f32, f32::NAN).is_err());
        assert!(Normal::new(0.0f32, 1.0).is_ok());
    }

    #[test]
    fn sample_statistics_are_plausible() {
        let normal = Normal::new(5.0f64, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }
}

//! Bounding Volume Hierarchies.
//!
//! The RT cores "intelligently build a Bounding Volume Hierarchy"
//! (Section II-B1 of the paper); this module provides the software
//! equivalents used by the simulator:
//!
//! * [`LbvhBuilder`] — the GPU-style fast builder: primitives are sorted
//!   along a Morton curve and the hierarchy is emitted from the sorted
//!   order.  This is what the baseline FDBSCAN-style traversal uses.
//! * [`SahBuilder`] — a binned Surface Area Heuristic builder, the
//!   "high-quality" builder used for the RT device path (OptiX builds its
//!   acceleration structure with quality heuristics the user cannot see).
//! * [`MedianSplitBuilder`] — simple longest-axis median split, kept as an
//!   easy-to-reason-about reference for tests.
//! * [`compact_coincident`] — the primitive-compaction pass the RT path applies before
//!   building: exactly coincident sphere centres are merged into a single
//!   primitive with a multiplicity count.
//! * [`wide`] — the BVH4 layout real RT cores traverse: any binary tree from
//!   the builders above collapses into SoA wide nodes
//!   ([`WideBvh::from_binary`]) consumed by the batched traversal engine in
//!   [`crate::traversal::batch`].
//! * [`tlas`] — two-level scenes: Morton-range shard planning plus the
//!   top-level BVH whose leaves are shard instances, each owning a
//!   bottom-level BVH built by the machinery above.
//!
//! All builders produce the same flat [`Bvh`] representation and report the
//! work they performed through [`crate::hardware::WorkCounters`].

pub(crate) mod build;
mod compact;
mod node;
pub mod refit;
pub mod tlas;
mod validate;
pub mod wide;

pub use build::{
    BuildParallelism, BuilderKind, BvhBuilder, LbvhBuilder, MedianSplitBuilder, SahBuilder,
};
pub use compact::{compact_coincident, CompactionResult};
pub use node::{Bvh, BvhNode, NodeKind};
pub use refit::{remove_points, tree_health, update_spheres, RefitPolicy, RefitStats, TreeHealth};
pub use tlas::{
    plan_shards, plan_shards_with, ShardPlan, ShardingConfig, Tlas, TlasNode, TlasNodeKind,
};
pub use validate::{validate, BvhInvariantError};
pub use wide::{
    validate_wide, CompactWideNode, CompactWideNodes, PrimLanes, WideBvh, WideChild,
    WideInvariantError, WideLayout, WideNode, WIDE_BRANCHING,
};

use crate::error::Result;
use crate::geometry::{Point3, Sphere};

/// Convenience: wrap every point in an ε-sphere primitive (the input
/// transformation of Section III-B) without compaction.
pub fn spheres_from_points(points: &[Point3], radius: f32) -> Vec<Sphere> {
    points
        .iter()
        .enumerate()
        .map(|(i, &p)| Sphere::new(p, radius, i as u32))
        .collect()
}

/// Build a BVH over raw points using the given builder.
///
/// This is the common entry point used by the query layer and by the DBSCAN
/// implementations: it performs the sphere expansion and delegates to the
/// builder.
pub fn build_over_points<B: BvhBuilder + ?Sized>(
    builder: &B,
    points: &[Point3],
    radius: f32,
) -> Result<Bvh> {
    builder.build(spheres_from_points(points, radius))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spheres_from_points_preserves_indices_and_radius() {
        let pts = vec![Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 2.0, 3.0)];
        let spheres = spheres_from_points(&pts, 0.5);
        assert_eq!(spheres.len(), 2);
        assert_eq!(spheres[0].point_index, 0);
        assert_eq!(spheres[1].point_index, 1);
        assert!(spheres.iter().all(|s| s.radius == 0.5));
        assert!(spheres.iter().all(|s| s.multiplicity == 1));
        assert_eq!(spheres[1].center, pts[1]);
    }

    #[test]
    fn build_over_points_produces_valid_tree() {
        let pts: Vec<Point3> = (0..100)
            .map(|i| Point3::new(i as f32 * 0.3, (i % 7) as f32, 0.0))
            .collect();
        let bvh = build_over_points(&LbvhBuilder::default(), &pts, 0.2).unwrap();
        validate(&bvh).unwrap();
        assert_eq!(bvh.primitives.len(), 100);
    }
}

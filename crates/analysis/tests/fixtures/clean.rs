//! Fixture: a fully clean file — justified atomics, SAFETY comments, no
//! allocation in scope, nothing to report.

use std::sync::atomic::{AtomicU64, Ordering};

/// A tally cell.
#[derive(Debug, Default)]
pub struct Cell(AtomicU64);

impl Cell {
    // ordering: pure tally — the caller's join publishes the total; the
    // cell itself guards no other data.
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    // ordering: see bump — reads happen after the parallel phase joins.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: fixture pointer always comes from a live reference.
    unsafe { *p }
}

//! Disjoint-set (Union-Find) structures.
//!
//! RT-DBSCAN and FDBSCAN both form clusters by merging points into a
//! disjoint-set forest (Hopcroft & Ullman, cited as \[19\] in the paper).  Two
//! implementations are provided:
//!
//! * [`SequentialDisjointSet`] — classic union-by-rank with full path
//!   compression, used by the sequential reference algorithms and as the
//!   oracle in tests;
//! * [`ConcurrentDisjointSet`] — a lock-free version over atomics that many
//!   rayon workers can update concurrently, standing in for the GPU-side
//!   parallel Union-Find of FDBSCAN/RT-DBSCAN (including the "critical
//!   section" union of Algorithm 3, line 14, which is expressed here as a
//!   compare-and-swap claim);
//! * [`EpochDisjointSet`] — union-by-rank with O(1) whole-structure reset
//!   via epoch stamping, used by the streaming clusterer to re-form
//!   clusters across sliding-window snapshots without reallocating.
//!
//! Both structures count the union/find work they perform so the device
//! cost model can charge it.

mod concurrent;
mod epoch;
mod sequential;

pub use concurrent::ConcurrentDisjointSet;
pub use epoch::EpochDisjointSet;
pub use sequential::SequentialDisjointSet;

#[cfg(test)]
mod tests {
    use super::*;

    /// The two implementations must agree on the final partition for any
    /// sequence of unions.
    #[test]
    fn sequential_and_concurrent_agree() {
        let n = 500;
        let unions: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| {
                // A mix of chains and stars.
                let mut v = vec![];
                if i % 3 == 0 && i + 1 < n {
                    v.push((i, i + 1));
                }
                if i % 7 == 0 {
                    v.push((i, (i * 13 + 5) % n));
                }
                v
            })
            .collect();

        let mut seq = SequentialDisjointSet::new(n);
        let conc = ConcurrentDisjointSet::new(n);
        for &(a, b) in &unions {
            seq.union(a, b);
            conc.union(a, b);
        }
        for i in 0..n {
            for j in 0..n.min(50) {
                assert_eq!(
                    seq.same_set(i, j),
                    conc.same_set(i, j),
                    "disagreement on ({i}, {j})"
                );
            }
        }
    }
}

//! Wide (BVH4) batched traversal vs binary traversal on the fig-6 size
//! sweep — the acceptance-criterion bench for the batched engine.
//!
//! Before the wall-clock groups run, a counter report is printed for each
//! size: rays / distance computations / primitive tests (which must match
//! exactly between the two engines — proof that both answered identical
//! queries), the node-visit counters, and the simulated-device node-visit
//! charge under the RT-core cost profile.  At every size — including
//! n ≥ 100 000 — the wide batched engine must report a strictly smaller
//! simulated node-visit charge than the binary engine; the process aborts
//! with a panic otherwise, so regressions cannot print a plausible-looking
//! table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtcore::hardware::{CostProfile, WorkCounters};
use rtdbscan::{DbscanAlgorithm, DbscanParams, RtDbscan};
use rtdbscan_datasets::{generate, PaperDataset};
use std::hint::black_box;
use std::time::Duration;

fn node_visit_charge_ns(profile: &CostProfile, c: &WorkCounters) -> f64 {
    c.node_visits as f64 * profile.node_visit_ns
        + c.wide_node_visits as f64 * profile.wide_visit_ns()
}

/// Counter + simulated-charge comparison at one size; panics unless the
/// wide engine charges strictly less while answering identical queries.
fn report_and_assert(n: usize, points: &[rtcore::geometry::Point3], params: DbscanParams) {
    let wide = RtDbscan::default().run(points, params).unwrap();
    let binary = RtDbscan::with_binary_traversal()
        .run(points, params)
        .unwrap();

    let w = wide.counters.core_identification + wide.counters.cluster_formation;
    let b = binary.counters.core_identification + binary.counters.cluster_formation;
    assert_eq!(w.rays, b.rays, "n={n}: engines launched different queries");
    assert_eq!(
        w.dist_comps, b.dist_comps,
        "n={n}: engines filtered different candidates"
    );
    assert_eq!(
        w.prim_tests, b.prim_tests,
        "n={n}: engines tested different primitives"
    );
    assert_eq!(
        wide.clustering.core, binary.clustering.core,
        "n={n}: engines disagreed on core points"
    );

    let profile = CostProfile::rt_core();
    let wide_ns = node_visit_charge_ns(&profile, &w);
    let binary_ns = node_visit_charge_ns(&profile, &b);
    println!(
        "n={n:>7}  rays={} dist_comps={} (identical on both engines)\n\
         \tbinary: node_visits={:>10}  charge={:>12.0} ns\n\
         \twide:   wide_visits={:>10}  charge={:>12.0} ns  ({} batched launches, {:.2}x cheaper)",
        w.rays,
        w.dist_comps,
        b.node_visits,
        binary_ns,
        w.wide_node_visits,
        wide_ns,
        w.batched_launches,
        binary_ns / wide_ns.max(1.0),
    );
    assert!(
        wide_ns < binary_ns,
        "n={n}: wide engine must charge fewer simulated node-visit ns \
         (wide {wide_ns} vs binary {binary_ns})"
    );
}

fn bench_wide_vs_binary(c: &mut Criterion) {
    let params = DbscanParams::new(0.4, 10).unwrap();

    // Counter proof across the sweep, including the n ≥ 100k acceptance
    // point (counter collection is one run per engine, not a timing loop).
    for n in [15_000usize, 60_000, 120_000] {
        let points = generate(PaperDataset::PortoTaxi, n, 42);
        report_and_assert(n, &points, params);
    }

    // Wall-clock comparison at the sizes criterion can sample quickly.
    let mut group = c.benchmark_group("fig6_wide_vs_binary");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for n in [15_000usize, 60_000] {
        let points = generate(PaperDataset::PortoTaxi, n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("wide_batched", n), &n, |b, _| {
            b.iter(|| RtDbscan::default().run(black_box(&points), params).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("binary", n), &n, |b, _| {
            b.iter(|| {
                RtDbscan::with_binary_traversal()
                    .run(black_box(&points), params)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wide_vs_binary);
criterion_main!(benches);

//! Criterion wall-clock benchmark behind Figure 9: the impact of FDBSCAN's
//! early traversal termination, compared against RT-DBSCAN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtdbscan::{DbscanAlgorithm, DbscanParams, Fdbscan, RtDbscan};
use rtdbscan_datasets::{generate, PaperDataset};

fn bench_early_exit(c: &mut Criterion) {
    let configs = [
        (PaperDataset::PortoTaxi, 0.5f32, 13usize),
        (PaperDataset::RoadNetwork, 0.05f32, 13usize),
        (PaperDataset::Ngsim, 0.0005f32, 100usize),
    ];
    for (dataset, eps, min_pts) in configs {
        let points = generate(dataset, 40_000, 42);
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let mut group = c.benchmark_group(format!("fig9_{}", dataset.name()));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(3));
        let variants: Vec<(&str, Box<dyn DbscanAlgorithm>)> = vec![
            ("fdbscan", Box::new(Fdbscan::default())),
            ("fdbscan_early_exit", Box::new(Fdbscan::with_early_exit())),
            ("rt_dbscan", Box::new(RtDbscan::default())),
        ];
        for (name, algo) in &variants {
            group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
                b.iter(|| algo.run(std::hint::black_box(&points), params).unwrap())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_early_exit);
criterion_main!(benches);

//! Fixture: lexer edge cases that must produce no findings even when the
//! file is analyzed as a hot, lint-scoped module.

pub fn strings() -> usize {
    let a = "calls .unwrap() and Ordering::SeqCst in a string";
    let b = r#"raw with "quotes", vec![1] and Vec::new()"#;
    let c = br##"byte raw: .expect("x") unsafe { } .to_vec()"##;
    let d = 'u'; // a char literal, not a lifetime
    let _lt: &'static str = "lifetime, not a char";
    let r#type = 1usize; // raw identifier
    let e = 2.5_f32 as usize; // float literal
    let f = 1.min(2); // method call on an int literal: `1` `.` `min`
    a.len() + b.len() + c.len() + d as usize + r#type + e + f
}

/* block comment mentioning .unwrap() and
   /* a nested comment */ Ordering::Relaxed and Box::new */
pub fn after_comment() -> u32 {
    0
}

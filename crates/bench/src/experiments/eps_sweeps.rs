//! ε-sweep experiments: Fig 4 and Fig 5.

use super::{dataset, ExperimentScale};
use crate::measure::measure;
use crate::table::ExperimentTable;
use rtdbscan::{CudaDclustPlus, DbscanAlgorithm, DbscanParams, Fdbscan, GDbscan, RtDbscan};
use rtdbscan_datasets::PaperDataset;

/// ε values swept for each dataset (paper x-axes are unlabeled; these spans
/// cover the "many small clusters" → "few large clusters" range for the
/// synthetic analogues, matching the qualitative description in §V-B).
pub fn eps_sweep_values(dataset: PaperDataset) -> Vec<f32> {
    match dataset {
        PaperDataset::RoadNetwork => vec![0.01, 0.025, 0.05, 0.1, 0.25],
        PaperDataset::PortoTaxi => vec![0.1, 0.25, 0.5, 0.75, 1.0],
        PaperDataset::Ionosphere3d => vec![0.05, 0.1, 0.25, 0.5, 1.0],
        PaperDataset::Ngsim => vec![0.0001, 0.00025, 0.0005, 0.00075, 0.001],
    }
}

/// **Figure 4** — speedup over CUDA-DClust+ for a 16 K-point 3DRoad sample,
/// minPts = 100, varying ε.  All four implementations run.
pub fn fig4_small_dataset(scale: &ExperimentScale) -> ExperimentTable {
    let points = dataset(scale, PaperDataset::RoadNetwork, 16_000);
    let min_pts = scale.min_pts(100);
    let mut table = ExperimentTable::new(
        format!(
            "Figure 4: speedup over CUDA-DClust+ (3DRoad, {} points, minPts={})",
            points.len(),
            min_pts
        ),
        "eps",
        vec![
            "RT-DBSCAN".to_string(),
            "FDBSCAN".to_string(),
            "G-DBSCAN".to_string(),
            "CUDA-DClust+".to_string(),
        ],
    );

    for eps in eps_sweep_values(PaperDataset::RoadNetwork) {
        let params = DbscanParams::new(eps, min_pts).expect("valid params");
        let baseline = measure(&CudaDclustPlus::default(), &points, params);
        let runs: Vec<_> = vec![
            measure(&RtDbscan::default(), &points, params),
            measure(&Fdbscan::default(), &points, params),
            measure(&GDbscan::default(), &points, params),
            baseline.clone(),
        ];
        let values = runs
            .iter()
            .map(|r| {
                if r.failed() || baseline.failed() {
                    None
                } else {
                    Some(baseline.simulated_seconds() / r.simulated_seconds())
                }
            })
            .collect();
        table.push_row(format!("{eps}"), values);
    }
    table.push_note(
        "Paper observation: RT-DBSCAN fastest in most cases, FDBSCAN close behind; \
         G-DBSCAN and CUDA-DClust+ limited by adjacency-list traversal and index construction."
            .to_string(),
    );
    table
}

/// **Figure 5 (a/b/c)** — speedup of RT-DBSCAN over FDBSCAN while varying ε,
/// with the dataset size fixed at (scaled) 1 M points and minPts = 100.
pub fn fig5_eps_sweep(scale: &ExperimentScale, which: PaperDataset) -> ExperimentTable {
    let sub = match which {
        PaperDataset::RoadNetwork => "5a",
        PaperDataset::PortoTaxi => "5b",
        PaperDataset::Ionosphere3d => "5c",
        PaperDataset::Ngsim => "8a",
    };
    let paper_n = match which {
        // 3DRoad only has ~435 K points; the paper uses all of them elsewhere
        // and 1 M for the other datasets.
        PaperDataset::RoadNetwork => 400_000,
        _ => 1_000_000,
    };
    let points = dataset(scale, which, paper_n);
    let min_pts = scale.min_pts(100);
    let mut table = ExperimentTable::new(
        format!(
            "Figure {sub}: RT-DBSCAN speedup over FDBSCAN vs eps ({}, {} points, minPts={})",
            which.name(),
            points.len(),
            min_pts
        ),
        "eps",
        vec![
            "speedup".to_string(),
            "FDBSCAN sim (s)".to_string(),
            "RT-DBSCAN sim (s)".to_string(),
            "clusters".to_string(),
        ],
    );

    for eps in eps_sweep_values(which) {
        let params = DbscanParams::new(eps, min_pts).expect("valid params");
        let fd = measure(&Fdbscan::default(), &points, params);
        let rt = measure(&RtDbscan::default(), &points, params);
        table.push_row(
            format!("{eps}"),
            vec![
                Some(fd.simulated_seconds() / rt.simulated_seconds()),
                Some(fd.simulated_seconds()),
                Some(rt.simulated_seconds()),
                Some(rt.clusters() as f64),
            ],
        );
    }
    table.push_note(match which {
        PaperDataset::RoadNetwork => {
            "Paper: max speedup 1.5x; small dataset + small eps keep BVH build dominant."
                .to_string()
        }
        PaperDataset::PortoTaxi => "Paper: max speedup 2.3x, increasing with eps.".to_string(),
        PaperDataset::Ionosphere3d => {
            "Paper: max speedup 3.6x; larger eps means more traversal work for RT cores to win on."
                .to_string()
        }
        PaperDataset::Ngsim => "See Table II.".to_string(),
    });
    table
}

/// Convenience used by tests and the Criterion benches: one (dataset, eps)
/// pair measured for both RT-DBSCAN and FDBSCAN, returning
/// (fdbscan_seconds, rtdbscan_seconds).
pub fn measure_pair(points: &[rtcore::geometry::Point3], eps: f32, min_pts: usize) -> (f64, f64) {
    let params = DbscanParams::new(eps, min_pts).expect("valid params");
    let fd = measure(&Fdbscan::default(), points, params);
    let rt = measure(&RtDbscan::default(), points, params);
    (fd.simulated_seconds(), rt.simulated_seconds())
}

/// Check that an algorithm produces the same clustering as FDBSCAN on a
/// scaled dataset — used by the integration tests to guard the experiments
/// against producing speedups from wrong answers.
pub fn agrees_with_fdbscan(
    algo: &dyn DbscanAlgorithm,
    points: &[rtcore::geometry::Point3],
    params: DbscanParams,
) -> bool {
    let fd = Fdbscan::default().run(points, params);
    let other = algo.run(points, params);
    match (fd, other) {
        (Ok(a), Ok(b)) => {
            rtdbscan::metrics::same_clustering(&a.clustering, &b.clustering, points, params)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eps_values_are_positive_and_increasing() {
        for d in PaperDataset::ALL {
            let v = eps_sweep_values(d);
            assert!(!v.is_empty());
            assert!(v.windows(2).all(|w| w[0] < w[1]));
            assert!(v.iter().all(|&e| e > 0.0));
        }
    }

    #[test]
    fn fig5_smoke_run_produces_full_table() {
        let scale = ExperimentScale::smoke();
        let t = fig5_eps_sweep(&scale, PaperDataset::Ionosphere3d);
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.columns.len(), 4);
        // All cells populated, all simulated times positive.
        for row in 0..t.rows.len() {
            for col in 1..3 {
                let v = t.value(row, col).expect("no OOM expected");
                assert!(v > 0.0);
            }
        }
    }

    #[test]
    fn fig4_smoke_run_has_baseline_speedup_of_one() {
        let scale = ExperimentScale::smoke();
        let t = fig4_small_dataset(&scale);
        let baseline_col = t.column_index("CUDA-DClust+").unwrap();
        for v in t.column_values(baseline_col) {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn measure_pair_returns_finite_times() {
        let pts = rtdbscan_datasets::generate(PaperDataset::RoadNetwork, 2000, 1);
        let (fd, rt) = measure_pair(&pts, 0.05, 5);
        assert!(fd.is_finite() && fd > 0.0);
        assert!(rt.is_finite() && rt > 0.0);
    }
}

//! Fault injection, cooperative cancellation, memory budgets and retry
//! policies — the robustness substrate the long-lived serving path is made
//! of.
//!
//! Four cooperating pieces live here, all following the same
//! zero-cost-when-off discipline as [`crate::telemetry::TelemetryConfig`]:
//!
//! * **Deterministic failpoints** — a [`FaultPlan`] is a seeded schedule of
//!   injectable faults.  Code threads a [`FaultInjector`] handle (an
//!   `Option<Arc<..>>` exactly like the telemetry handle) to the sites named
//!   by [`FaultSite`] and asks it through the [`crate::fail_point!`] macro.  The
//!   firing machinery only compiles in under the `fault-inject` cargo
//!   feature; without it every probe is an inlined `false` and the error arm
//!   is dead code the optimiser removes, so default builds carry nothing.
//!   With the feature, whether a given hit of a given site fires is a pure
//!   function of `(seed, site, hit ordinal)` — schedules replay exactly.
//! * **Query deadlines & cooperative cancellation** — a [`CancelScope`]
//!   couples an optional wall-clock [`Deadline`] with an optional
//!   [`CancelToken`] behind one shared tripped flag.  Launch engines poll it
//!   at packet and wide-node-frontier granularity; once tripped, a launch
//!   winds down and surfaces [`crate::Error::DeadlineExceeded`] carrying the
//!   work performed so far.  Partial neighbour output is discarded by the
//!   caller — a cancelled launch never produces a wrong answer, only a
//!   structured error.
//! * **Memory budgets** — a [`MemoryBudget`] is checked against the
//!   `device_bytes()` accounting every index already exposes; on pressure
//!   the engines degrade in documented order (drop the quantized bake,
//!   evict the coldest shard BLAS to rebuild-on-demand, refuse inserts with
//!   [`crate::Error::OverBudget`]).
//! * **Bounded retry** — a [`RetryPolicy`] with deterministic (tick-based,
//!   never wall-clock) exponential backoff, shared by the quarantine
//!   recovery path and the streaming rebuild path.
//!
//! # Examples
//!
//! ```
//! use rtcore::fault::{CancelScope, CancelToken, FaultPlan, MemoryBudget, RetryPolicy};
//!
//! // The default plan is off and the default scope is inert: probes cost
//! // nothing and launches run to completion.
//! assert_eq!(FaultPlan::default(), FaultPlan::Off);
//! let scope = CancelScope::none();
//! assert!(!scope.is_active());
//! assert!(!scope.should_stop());
//!
//! // A token trips every scope that carries it.
//! let token = CancelToken::new();
//! let scope = CancelScope::with_token(&token);
//! assert!(!scope.should_stop());
//! token.cancel();
//! assert!(scope.should_stop());
//!
//! // Budgets and retry backoff are plain data.
//! assert!(MemoryBudget::Unlimited.allows(u64::MAX));
//! assert!(!MemoryBudget::Bytes(100).allows(101));
//! assert_eq!(RetryPolicy::default().backoff_ticks(2), 4);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Marker string present in binaries only when the `fault-inject` feature
/// is compiled in; CI greps release artifacts for it to prove default
/// builds carry no injection machinery.
#[cfg(feature = "fault-inject")]
pub const ARMED_MARKER: &str = "RTDBSCAN_FAULT_INJECT_ARMED";

// ---------------------------------------------------------------------------
// Failpoints
// ---------------------------------------------------------------------------

/// A seeded schedule of injectable faults.  [`FaultPlan::Off`] (the
/// default) arms nothing; [`FaultPlan::Seeded`] makes roughly one in
/// `one_in` hits of every [`FaultSite`] fire, decided deterministically
/// from `(seed, site, hit ordinal)` so a schedule replays bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPlan {
    /// No faults are armed.  Probes compile to nothing (without the
    /// `fault-inject` feature) or to an inlined `false` (with it).
    #[default]
    Off,
    /// Arm every site with a deterministic seeded schedule.
    Seeded {
        /// Seed mixed into every firing decision.
        seed: u64,
        /// Approximate firing rate: a hit fires when its mixed hash is
        /// `0 (mod one_in)`.  `one_in == 1` fires on every hit; `0` is
        /// treated as never.
        one_in: u32,
    },
}

/// The fixed set of injectable fault sites threaded through the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Allocation pressure while growing traversal scratch / arena state.
    ScratchGrow,
    /// Simulated failure mid-HLBVH (LBVH encode/sort/emit) construction.
    HlbvhBuild,
    /// Simulated failure in the BVH4 collapse pass.
    Bvh4Collapse,
    /// Simulated failure in the quantized node bake.
    QuantizedBake,
    /// A shard's bottom-level scene comes up poisoned (the shard starts
    /// quarantined and must be recovered).
    ShardBlasPoison,
    /// A launch is delayed past its deadline (trips the active
    /// [`CancelScope`] instead of producing output).
    LaunchDelay,
}

impl FaultSite {
    /// Every site, in pipeline order.
    pub const ALL: [FaultSite; 6] = [
        FaultSite::ScratchGrow,
        FaultSite::HlbvhBuild,
        FaultSite::Bvh4Collapse,
        FaultSite::QuantizedBake,
        FaultSite::ShardBlasPoison,
        FaultSite::LaunchDelay,
    ];

    /// Stable snake_case site name, used in [`crate::Error::FaultInjected`].
    pub fn name(&self) -> &'static str {
        match self {
            FaultSite::ScratchGrow => "scratch_grow",
            FaultSite::HlbvhBuild => "hlbvh_build",
            FaultSite::Bvh4Collapse => "bvh4_collapse",
            FaultSite::QuantizedBake => "quantized_bake",
            FaultSite::ShardBlasPoison => "shard_blas_poison",
            FaultSite::LaunchDelay => "launch_delay",
        }
    }

    fn ordinal(&self) -> usize {
        match self {
            FaultSite::ScratchGrow => 0,
            FaultSite::HlbvhBuild => 1,
            FaultSite::Bvh4Collapse => 2,
            FaultSite::QuantizedBake => 3,
            FaultSite::ShardBlasPoison => 4,
            FaultSite::LaunchDelay => 5,
        }
    }
}

#[derive(Debug)]
struct InjectorInner {
    // The schedule fields are only read by `fire`, whose real body exists
    // under the `fault-inject` feature; keep them unconditionally so the
    // plan round-trips through `Debug` either way.
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    seed: u64,
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    one_in: u32,
    /// Per-site hit ordinals.  Atomic because injectors are probed from
    /// parallel launches; the count only feeds the deterministic hash, and
    /// per-site totals are read after the work joins.
    hits: [AtomicU64; FaultSite::ALL.len()],
}

/// The probe handle code threads to its fault sites.  Mirrors
/// [`crate::telemetry::Telemetry`]: a disarmed handle is a `None` and every
/// probe on it is a null check.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<InjectorInner>>,
}

/// SplitMix64 finalizer — the deterministic per-hit decision hash.
#[cfg(feature = "fault-inject")]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultInjector {
    /// Build the handle for a plan.  [`FaultPlan::Off`] yields a disarmed
    /// handle that allocates nothing.
    pub fn new(plan: FaultPlan) -> Self {
        match plan {
            FaultPlan::Off => FaultInjector { inner: None },
            FaultPlan::Seeded { seed, one_in } => FaultInjector {
                inner: Some(Arc::new(InjectorInner {
                    seed,
                    one_in,
                    hits: Default::default(),
                })),
            },
        }
    }

    /// True when a seeded plan is armed (always false without the
    /// `fault-inject` feature — the schedule exists but nothing probes it).
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// How many times `site` has been probed so far (0 when disarmed).
    pub fn hit_count(&self, site: FaultSite) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            // ordering: Relaxed — a pure probe tally read after (or racily
            // during) the probed work; no other state is published through
            // it.
            inner.hits[site.ordinal()].load(Ordering::Relaxed)
        })
    }

    /// Probe a fault site.  Only compiled with the `fault-inject` feature;
    /// the [`crate::fail_point!`] macro is the intended caller.
    #[cfg(feature = "fault-inject")]
    pub fn fire(&self, site: FaultSite) -> bool {
        let _ = std::hint::black_box(ARMED_MARKER);
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.one_in == 0 {
            return false;
        }
        // ordering: Relaxed — the ordinal is a per-site counter feeding a
        // deterministic hash; schedule determinism needs each hit to get a
        // unique ordinal (fetch_add guarantees that), not any cross-site
        // ordering.
        let ordinal = inner.hits[site.ordinal()].fetch_add(1, Ordering::Relaxed);
        let h = mix64(
            inner
                .seed
                .wrapping_add((site.ordinal() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add(ordinal.wrapping_mul(0xd605_0dd3_2c5a_b9ef)),
        );
        h.is_multiple_of(inner.one_in as u64)
    }

    /// Without the feature the probe is an inlined constant `false`: the
    /// branch and its error arm are removed entirely by the optimiser.
    #[cfg(not(feature = "fault-inject"))]
    #[inline(always)]
    pub fn fire(&self, _site: FaultSite) -> bool {
        false
    }
}

/// Probe a fault site and return [`crate::Error::FaultInjected`] from the
/// enclosing `Result` function when it fires.
///
/// ```
/// use rtcore::fault::{FaultInjector, FaultPlan, FaultSite};
/// use rtcore::{fail_point, Result};
///
/// fn build_step(injector: &FaultInjector) -> Result<u32> {
///     fail_point!(injector, FaultSite::HlbvhBuild);
///     Ok(42)
/// }
/// assert_eq!(build_step(&FaultInjector::new(FaultPlan::Off)).unwrap(), 42);
/// ```
#[macro_export]
macro_rules! fail_point {
    ($injector:expr, $site:expr) => {
        if $injector.fire($site) {
            return Err($crate::error::Error::FaultInjected { site: $site.name() });
        }
    };
}

// ---------------------------------------------------------------------------
// Deadlines & cooperative cancellation
// ---------------------------------------------------------------------------

/// A wall-clock deadline for a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.  A zero budget is already expired —
    /// the deterministic way tests exercise the deadline path.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(at: Instant) -> Self {
        Deadline { at }
    }

    /// True once the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }
}

/// A shareable cancellation flag: every [`CancelScope`] carrying a clone of
/// the token trips when [`CancelToken::cancel`] is called.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation of every scope carrying this token.
    pub fn cancel(&self) {
        // ordering: Relaxed — a monotonic one-way flag; cancelled launches
        // discard their output, so no data is published through the store,
        // and the launch join provides the edge for post-join readers.
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        // ordering: Relaxed — see `cancel`.
        self.flag.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct ScopeInner {
    deadline: Option<Deadline>,
    token: Option<CancelToken>,
    /// Latched once either source trips, so parallel workers stop on one
    /// cheap flag load instead of each re-reading the clock.
    tripped: AtomicBool,
}

/// The cancellation context a launch runs under: an optional [`Deadline`],
/// an optional [`CancelToken`], and one shared tripped latch.
///
/// [`CancelScope::none`] (the default) is inert — every poll is a null
/// check and engines behave bit-identically to the pre-deadline code.
/// Engines poll [`CancelScope::tripped`] at fine granularity (a flag load)
/// and [`CancelScope::should_stop`] at coarse granularity (reads the
/// clock); once tripped a launch winds down and its driver returns
/// [`crate::Error::DeadlineExceeded`] with the counters of the work
/// performed, discarding partial neighbour output.
#[derive(Debug, Clone, Default)]
pub struct CancelScope {
    inner: Option<Arc<ScopeInner>>,
}

impl CancelScope {
    /// The inert scope: no deadline, no token, never trips.
    pub fn none() -> Self {
        CancelScope::default()
    }

    /// A scope that trips once `budget` has elapsed.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelScope::with(Some(Deadline::after(budget)), None)
    }

    /// A scope that trips when `token` is cancelled.
    pub fn with_token(token: &CancelToken) -> Self {
        CancelScope::with(None, Some(token.clone()))
    }

    /// A scope with both a deadline and a token.
    pub fn with(deadline: Option<Deadline>, token: Option<CancelToken>) -> Self {
        if deadline.is_none() && token.is_none() {
            return CancelScope::none();
        }
        CancelScope {
            inner: Some(Arc::new(ScopeInner {
                deadline,
                token,
                tripped: AtomicBool::new(false),
            })),
        }
    }

    /// True when the scope can trip at all (a deadline or token is set).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Fine-granularity poll: one flag load, no clock read.  Engines call
    /// this on every wide-node frontier pop.
    #[inline]
    pub fn tripped(&self) -> bool {
        match &self.inner {
            None => false,
            // ordering: Relaxed — the latch is monotonic and the work a
            // tripped launch performed is discarded; the launch join
            // publishes the final state to post-join readers.
            Some(inner) => inner.tripped.load(Ordering::Relaxed),
        }
    }

    /// Coarse-granularity poll: checks the latch, the token, and the
    /// wall clock, latching the trip so subsequent [`CancelScope::tripped`]
    /// polls see it.  Engines call this per packet (and every few dozen
    /// frontier pops to amortise the clock read).
    pub fn should_stop(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        // ordering: Relaxed — see `tripped`.
        if inner.tripped.load(Ordering::Relaxed) {
            return true;
        }
        let hit = inner.token.as_ref().is_some_and(CancelToken::is_cancelled)
            || inner.deadline.as_ref().is_some_and(Deadline::expired);
        if hit {
            // ordering: Relaxed — monotonic latch, no data published.
            inner.tripped.store(true, Ordering::Relaxed);
        }
        hit
    }

    /// Force the scope into the tripped state (the [`FaultSite::LaunchDelay`]
    /// fault uses this to simulate a launch blowing its deadline).
    pub fn trip(&self) {
        if let Some(inner) = &self.inner {
            // ordering: Relaxed — monotonic latch, no data published.
            inner.tripped.store(true, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Memory budgets
// ---------------------------------------------------------------------------

/// A simulated device-memory budget checked against `device_bytes()`
/// accounting.  On pressure the engines degrade in documented order: drop
/// the quantized bake, evict the coldest shard BLAS to rebuild-on-demand,
/// then refuse further growth with [`crate::Error::OverBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryBudget {
    /// No budget: nothing ever degrades.
    #[default]
    Unlimited,
    /// At most this many bytes of index structure.
    Bytes(u64),
}

impl MemoryBudget {
    /// True when `bytes` fits the budget.
    pub fn allows(&self, bytes: u64) -> bool {
        match self {
            MemoryBudget::Unlimited => true,
            MemoryBudget::Bytes(limit) => bytes <= *limit,
        }
    }

    /// The byte limit, when one is set.
    pub fn limit(&self) -> Option<u64> {
        match self {
            MemoryBudget::Unlimited => None,
            MemoryBudget::Bytes(limit) => Some(*limit),
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded retry with deterministic backoff
// ---------------------------------------------------------------------------

/// Bounded retry with deterministic exponential backoff, measured in
/// abstract *ticks* (recovery attempts, maintenance rounds) rather than
/// wall-clock time so schedules replay exactly in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Give up (and stay degraded) after this many failed attempts.
    pub max_attempts: u32,
    /// Base of the exponential backoff: attempt `k` waits
    /// `backoff_base << k` ticks before the next try.
    pub backoff_base: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: 1,
        }
    }
}

impl RetryPolicy {
    /// Ticks to wait after the `attempt`-th failure (0-based), saturating.
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        (self.backoff_base as u64).saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
    }

    /// True while another attempt is allowed.
    pub fn allows_attempt(&self, attempts_so_far: u32) -> bool {
        attempts_so_far < self.max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_is_disarmed_and_free() {
        let injector = FaultInjector::new(FaultPlan::Off);
        assert!(!injector.is_armed());
        assert!(!injector.fire(FaultSite::HlbvhBuild));
        assert_eq!(injector.hit_count(FaultSite::HlbvhBuild), 0);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn seeded_schedules_replay_deterministically() {
        let plan = FaultPlan::Seeded { seed: 7, one_in: 3 };
        let a: Vec<bool> = {
            let injector = FaultInjector::new(plan);
            (0..64)
                .map(|_| injector.fire(FaultSite::HlbvhBuild))
                .collect()
        };
        let b: Vec<bool> = {
            let injector = FaultInjector::new(plan);
            (0..64)
                .map(|_| injector.fire(FaultSite::HlbvhBuild))
                .collect()
        };
        assert_eq!(a, b, "same (seed, site, ordinal) must fire identically");
        assert!(a.iter().any(|&f| f), "one_in=3 over 64 hits must fire");
        assert!(!a.iter().all(|&f| f), "one_in=3 must not fire every hit");

        // Sites are decorrelated: a different site sees a different pattern.
        let injector = FaultInjector::new(plan);
        let c: Vec<bool> = (0..64)
            .map(|_| injector.fire(FaultSite::QuantizedBake))
            .collect();
        assert_ne!(a, c);
        assert_eq!(injector.hit_count(FaultSite::QuantizedBake), 64);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn one_in_one_always_fires_and_zero_never_does() {
        let always = FaultInjector::new(FaultPlan::Seeded { seed: 1, one_in: 1 });
        assert!((0..16).all(|_| always.fire(FaultSite::ScratchGrow)));
        let never = FaultInjector::new(FaultPlan::Seeded { seed: 1, one_in: 0 });
        assert!((0..16).all(|_| !never.fire(FaultSite::ScratchGrow)));
    }

    #[test]
    fn fail_point_returns_structured_error() {
        use crate::error::Error;
        fn step(injector: &FaultInjector) -> crate::Result<()> {
            fail_point!(injector, FaultSite::Bvh4Collapse);
            Ok(())
        }
        assert!(step(&FaultInjector::new(FaultPlan::Off)).is_ok());
        #[cfg(feature = "fault-inject")]
        {
            let injector = FaultInjector::new(FaultPlan::Seeded { seed: 0, one_in: 1 });
            assert_eq!(
                step(&injector),
                Err(Error::FaultInjected {
                    site: "bvh4_collapse"
                })
            );
        }
        let _ = Error::MissingGeometry; // silence unused import without the feature
    }

    #[test]
    fn inert_scope_never_trips() {
        let scope = CancelScope::none();
        assert!(!scope.is_active());
        assert!(!scope.tripped());
        assert!(!scope.should_stop());
        scope.trip(); // no-op on the inert scope
        assert!(!scope.tripped());
    }

    #[test]
    fn expired_deadline_trips_and_latches() {
        let scope = CancelScope::with_deadline(Duration::ZERO);
        assert!(scope.is_active());
        assert!(!scope.tripped(), "fine poll alone never reads the clock");
        assert!(scope.should_stop(), "zero budget is already expired");
        assert!(scope.tripped(), "the coarse poll latches the trip");
    }

    #[test]
    fn token_cancellation_reaches_every_clone() {
        let token = CancelToken::new();
        let scope = CancelScope::with_token(&token);
        let clone = scope.clone();
        assert!(!clone.should_stop());
        token.cancel();
        assert!(token.is_cancelled());
        assert!(scope.should_stop());
        assert!(clone.tripped(), "clones share the latch");
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let scope = CancelScope::with_deadline(Duration::from_secs(3600));
        assert!(!scope.should_stop());
        assert!(!scope.tripped());
    }

    #[test]
    fn manual_trip_is_visible_to_fine_polls() {
        let scope = CancelScope::with_token(&CancelToken::new());
        scope.trip();
        assert!(scope.tripped());
    }

    #[test]
    fn budget_allows_and_limits() {
        assert!(MemoryBudget::Unlimited.allows(u64::MAX));
        assert_eq!(MemoryBudget::Unlimited.limit(), None);
        let b = MemoryBudget::Bytes(64);
        assert!(b.allows(64));
        assert!(!b.allows(65));
        assert_eq!(b.limit(), Some(64));
    }

    #[test]
    fn retry_backoff_is_exponential_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_base: 2,
        };
        assert_eq!(policy.backoff_ticks(0), 2);
        assert_eq!(policy.backoff_ticks(1), 4);
        assert_eq!(policy.backoff_ticks(2), 8);
        assert_eq!(policy.backoff_ticks(63), u64::MAX.saturating_mul(2));
        assert!(policy.allows_attempt(0));
        assert!(policy.allows_attempt(2));
        assert!(!policy.allows_attempt(3));
    }

    #[test]
    fn site_names_are_unique_and_stable() {
        let names: Vec<&str> = FaultSite::ALL.iter().map(FaultSite::name).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), FaultSite::ALL.len());
        assert!(names.contains(&"shard_blas_poison"));
    }
}

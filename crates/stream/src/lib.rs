//! Streaming RT-DBSCAN: incremental density clustering over sliding
//! windows.
//!
//! The batch pipeline in `rtdbscan` rebuilds the world from scratch on
//! every run: input transformation, acceleration-structure build, stage-1
//! neighbour counting, stage-2 cluster formation.  That is the right shape
//! for the paper's experiments and exactly the wrong shape for a production
//! system clustering live trajectory or geospatial feeds, where points
//! arrive continuously and old ones age out.  This crate adds the streaming
//! shape on top of the same substrate:
//!
//! * [`StreamingClusterer`] — batched ingestion into a sliding time/count
//!   window ([`WindowPolicy`]).  The ε-sphere scene is kept alive across
//!   batches: expiring points are *refitted* out of the BVH in place
//!   (`rtcore::bvh::refit`), newly arrived points accumulate in a pending
//!   overlay that queries scan exactly, and a quality heuristic
//!   ([`rtcore::bvh::RefitPolicy`] plus a pending-fraction bound) decides
//!   when the degraded tree is worth a full LBVH rebuild.
//! * Incremental cluster maintenance — per-point ε-neighbour counts are
//!   maintained exactly under insertion and deletion, so core flags never
//!   need a stage-1 re-run.  Core merges go into an
//!   [`rtdbscan::disjoint_set::EpochDisjointSet`]; insert-only slides
//!   extend the partition in place, and slides that retire core points mark
//!   the partition dirty, to be re-formed lazily by the next
//!   [`StreamingClusterer::snapshot`] with a stage-2-only pass (the O(1)
//!   epoch reset makes that re-formation allocation-free).
//! * [`ShardedWindow`] — streaming eviction over a two-level (TLAS over
//!   sharded BLAS) scene: aging out a region of space empties its shard and
//!   drops the whole bottom-level BVH, so no rebuild debt accumulates where
//!   the window has moved on.
//! * [`StreamingSnapshotAlgorithm`] — a [`rtdbscan::DbscanAlgorithm`]
//!   adapter that replays a batch input through the streaming path, so the
//!   oracle and metrics machinery (`same_clustering`, ARI/NMI, the bench
//!   harness) applies to the streaming subsystem unchanged.
//!
//! Every piece of work — traversals, pending scans, refits, rebuilds,
//! union/find traffic — is recorded in `rtcore::hardware::WorkCounters`,
//! with refit and rebuild decisions visible as `refits` / `rebuilds`, so
//! the simulated-device cost model prices streaming updates the same way
//! it prices the batch pipeline.

#![warn(missing_docs)]

mod adapter;
mod clusterer;
mod engine_ext;
mod sharded_window;
mod window;

pub use adapter::StreamingSnapshotAlgorithm;
pub use clusterer::{IngestReport, StreamingClusterer, StreamingStats};
pub use engine_ext::EngineStreamExt;
pub use sharded_window::{ShardedWindow, ShardedWindowStats};
pub use window::{StreamingConfig, WindowPolicy};

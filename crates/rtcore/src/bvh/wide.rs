//! Wide (BVH4) acceleration structures.
//!
//! Real RT cores do not walk binary trees: their node format packs several
//! child bounding boxes into one cache line and the box unit tests a ray
//! against all of them in lockstep.  This module provides the software
//! analogue — a 4-wide BVH obtained by *collapsing* any binary [`Bvh`]
//! produced by the builders in [`crate::bvh`]:
//!
//! # Collapse rules
//!
//! Starting from a binary node, its two children form the initial child set;
//! while the set holds fewer than four entries, the internal member whose
//! AABB has the largest surface area is replaced by its own two children
//! (expanding the fattest box first minimises the area the packed node
//! exposes to rays).  Leaves are never expanded — they become leaf slots
//! whose ranges index a *copy* of the source tree's re-ordered primitive
//! array (identical layout, so a collapse cannot reorder hits; the copy is
//! what lets the wide scene live independently of the binary one, and
//! [`WideBvh::device_bytes`] charges it honestly).
//! A set that still has fewer than four members is padded with
//! [`WideChild::Empty`] slots whose lanes hold the empty AABB (rejected by
//! every overlap test for free).
//!
//! # Node layout
//!
//! [`WideNode`] stores the four child AABBs in structure-of-arrays form:
//! six lanes of `[f32; 4]` (min x/y/z, max x/y/z).  A point-in-box test
//! against all four children is then four compares per lane over contiguous
//! memory — the exact shape SIMD units and RT-core box testers consume.
//! Child references are packed `u32` payloads tagged by [`WideChild`].
//!
//! # Cost model
//!
//! Traversal over a `WideBvh` counts one
//! [`crate::hardware::WorkCounters::wide_node_visits`] per node visit
//! (instead of the binary `node_visits`); the device model charges a wide
//! visit at a configurable fraction of the four binary visits it replaces
//! ([`crate::hardware::CostProfile::wide_visit_fraction`]), which is what
//! lets benches demonstrate the simulated-device win of wide nodes.

use crate::bvh::{Bvh, NodeKind};
use crate::geometry::{Aabb, Point3, Sphere};
use crate::hardware::WorkCounters;

/// Branching factor of the wide format.
pub const WIDE_BRANCHING: usize = 4;

/// One slot of a wide node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WideChild {
    /// An interior child: index into [`WideBvh::nodes`].
    Node(u32),
    /// A leaf child owning a contiguous primitive range.
    Leaf {
        /// Index of the first primitive.
        first_prim: u32,
        /// Number of primitives.
        prim_count: u32,
    },
    /// An unused slot (the node has fewer than four real children).
    Empty,
}

/// A 4-wide BVH node: four child AABBs in SoA lanes plus packed child
/// references.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WideNode {
    /// Minimum corners of the four child AABBs, one lane per axis.
    pub min_lanes: [[f32; 4]; 3],
    /// Maximum corners of the four child AABBs, one lane per axis.
    pub max_lanes: [[f32; 4]; 3],
    /// The four child references.
    pub children: [WideChild; 4],
}

impl WideNode {
    /// A node with every slot empty.
    pub const EMPTY: WideNode = WideNode {
        min_lanes: [[f32::INFINITY; 4]; 3],
        max_lanes: [[f32::NEG_INFINITY; 4]; 3],
        children: [WideChild::Empty; 4],
    };

    /// Store `bounds` into child slot `slot`.
    fn set_bounds(&mut self, slot: usize, bounds: &Aabb) {
        self.min_lanes[0][slot] = bounds.min.x;
        self.min_lanes[1][slot] = bounds.min.y;
        self.min_lanes[2][slot] = bounds.min.z;
        self.max_lanes[0][slot] = bounds.max.x;
        self.max_lanes[1][slot] = bounds.max.y;
        self.max_lanes[2][slot] = bounds.max.z;
    }

    /// Reconstruct the AABB of child slot `slot`.
    pub fn child_bounds(&self, slot: usize) -> Aabb {
        Aabb {
            min: Point3::new(
                self.min_lanes[0][slot],
                self.min_lanes[1][slot],
                self.min_lanes[2][slot],
            ),
            max: Point3::new(
                self.max_lanes[0][slot],
                self.max_lanes[1][slot],
                self.max_lanes[2][slot],
            ),
        }
    }

    /// Test a query point against all four child boxes at once, returning a
    /// 4-bit hit mask (bit `i` set ⇔ `p` inside child `i`'s box).  Empty
    /// slots hold inverted boxes and can never set their bit.
    ///
    /// This is the software stand-in for the lockstep box test an RT core's
    /// wide node unit performs; it compiles to branch-free lane compares.
    #[inline]
    pub fn point_hit_mask(&self, p: Point3) -> u8 {
        self.point_hit_mask_xyz(p.x, p.y, p.z)
    }

    /// [`WideNode::point_hit_mask`] over already-unpacked coordinates — the
    /// form the batched engine feeds from its SoA-staged query lanes, so
    /// the compare chain reads nothing but contiguous `f32` arrays.
    #[inline]
    pub fn point_hit_mask_xyz(&self, x: f32, y: f32, z: f32) -> u8 {
        let mut mask = 0u8;
        for slot in 0..WIDE_BRANCHING {
            // Bitwise (non-short-circuit) combine: all six lane compares
            // run branch-free so the 4-slot loop vectorises.
            let inside = (x >= self.min_lanes[0][slot])
                & (x <= self.max_lanes[0][slot])
                & (y >= self.min_lanes[1][slot])
                & (y <= self.max_lanes[1][slot])
                & (z >= self.min_lanes[2][slot])
                & (z <= self.max_lanes[2][slot]);
            mask |= (inside as u8) << slot;
        }
        mask
    }
}

/// A collapsed 4-wide BVH.
///
/// Node 0 is the root.  `primitives` is the same re-ordered array the source
/// binary tree produced, so leaf ranges mean exactly what they meant there.
#[derive(Debug, Clone)]
pub struct WideBvh {
    /// Flat wide-node storage; index 0 is the root.
    pub nodes: Vec<WideNode>,
    /// Bounds of the whole scene (the source tree's root bounds).
    pub scene_bounds: Aabb,
    /// Primitives, re-ordered so leaf ranges are contiguous (shared layout
    /// with the source binary tree).
    pub primitives: Vec<Sphere>,
    /// Work the collapse performed (node emissions), for the cost model.
    pub collapse_counters: WorkCounters,
}

impl WideBvh {
    /// Collapse a binary BVH into the 4-wide format.
    ///
    /// An empty source tree yields an empty wide tree.  A source whose root
    /// is a single leaf yields one wide node with one leaf slot.
    pub fn from_binary(bvh: &Bvh) -> WideBvh {
        let mut counters = WorkCounters::ZERO;
        if bvh.nodes.is_empty() {
            return WideBvh {
                nodes: Vec::new(),
                scene_bounds: Aabb::EMPTY,
                primitives: Vec::new(),
                collapse_counters: counters,
            };
        }
        let mut nodes: Vec<WideNode> = Vec::with_capacity(bvh.nodes.len() / 2 + 1);
        // Worklist of (binary node to collapse, wide node slot to fill).
        nodes.push(WideNode::EMPTY);
        counters.build_node_ops += 1;
        let mut work: Vec<(u32, u32)> = vec![(0, 0)];
        while let Some((bin_idx, wide_idx)) = work.pop() {
            let members = collapse_members(bvh, bin_idx);
            let mut node = WideNode::EMPTY;
            for (slot, &member) in members.iter().enumerate() {
                let m = &bvh.nodes[member as usize];
                node.set_bounds(slot, &m.bounds);
                match m.kind {
                    NodeKind::Leaf {
                        first_prim,
                        prim_count,
                    } => {
                        node.children[slot] = WideChild::Leaf {
                            first_prim,
                            prim_count,
                        };
                    }
                    NodeKind::Internal { .. } => {
                        let child_wide = nodes.len() as u32;
                        nodes.push(WideNode::EMPTY);
                        counters.build_node_ops += 1;
                        node.children[slot] = WideChild::Node(child_wide);
                        work.push((member, child_wide));
                    }
                }
            }
            nodes[wide_idx as usize] = node;
        }
        WideBvh {
            nodes,
            scene_bounds: bvh.nodes[0].bounds,
            primitives: bvh.primitives.clone(),
            collapse_counters: counters,
        }
    }

    /// Number of wide nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primitives.
    pub fn primitive_count(&self) -> usize {
        self.primitives.len()
    }

    /// Estimated device-memory footprint in bytes (wide nodes + primitives).
    pub fn device_bytes(&self) -> u64 {
        std::mem::size_of::<WideNode>() as u64 * self.nodes.len() as u64
            + std::mem::size_of::<Sphere>() as u64 * self.primitives.len() as u64
    }
}

/// The collapse rule: expand internal members fattest-first until the set
/// holds up to four children of `bin_idx`.
///
/// The returned members are binary-node indices; at most [`WIDE_BRANCHING`]
/// of them, each either a leaf or an internal node that becomes a nested
/// wide node.  A leaf root is returned as the single member.
fn collapse_members(bvh: &Bvh, bin_idx: u32) -> Vec<u32> {
    let node = &bvh.nodes[bin_idx as usize];
    let mut members: Vec<u32> = match node.kind {
        NodeKind::Leaf { .. } => return vec![bin_idx],
        NodeKind::Internal { left, right } => vec![left, right],
    };
    loop {
        if members.len() >= WIDE_BRANCHING {
            break;
        }
        // Expand the internal member with the largest surface area.
        let expandable = members
            .iter()
            .enumerate()
            .filter(|(_, &m)| !bvh.nodes[m as usize].is_leaf())
            .max_by(|(_, &a), (_, &b)| {
                let sa = bvh.nodes[a as usize].bounds.surface_area();
                let sb = bvh.nodes[b as usize].bounds.surface_area();
                sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i);
        let Some(pos) = expandable else {
            break; // all members are leaves
        };
        let victim = members.swap_remove(pos);
        if let NodeKind::Internal { left, right } = bvh.nodes[victim as usize].kind {
            members.push(left);
            members.push(right);
        }
    }
    members
}

/// A violated wide-BVH invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WideInvariantError {
    /// The tree has no nodes but claims primitives (or vice versa).
    EmptyTreeWithPrimitives,
    /// A child node index was out of range.
    NodeIndexOutOfRange {
        /// Offending child index.
        index: u32,
    },
    /// A wide node was reachable through two different parents.
    NodeVisitedTwice {
        /// Offending node index.
        index: u32,
    },
    /// Some wide node was never reached from the root.
    UnreachableNodes {
        /// Number of unreachable nodes.
        count: usize,
    },
    /// A leaf slot's primitive range exceeded the primitive array.
    PrimRangeOutOfRange {
        /// First primitive of the offending slot.
        first: u32,
        /// Count of the offending slot.
        count: u32,
    },
    /// A primitive was not covered by exactly one leaf slot.
    PrimitiveCoverage {
        /// Primitive index.
        index: u32,
        /// Number of leaf slots that claimed it.
        times: usize,
    },
    /// A slot's stored lane bounds did not contain what the slot references
    /// (a nested node's own slot bounds, or a leaf slot's primitives).
    SlotBoundsTooSmall {
        /// Wide node index.
        node: u32,
        /// Slot index within the node.
        slot: usize,
    },
    /// A non-empty slot stored an empty/inverted AABB, or an empty slot
    /// stored a real one (empty slots must be rejected by the lane test).
    SlotBoundsTagMismatch {
        /// Wide node index.
        node: u32,
        /// Slot index within the node.
        slot: usize,
    },
}

impl std::fmt::Display for WideInvariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WideInvariantError::EmptyTreeWithPrimitives => {
                write!(f, "wide node/primitive arrays disagree about emptiness")
            }
            WideInvariantError::NodeIndexOutOfRange { index } => {
                write!(f, "wide child index {index} out of range")
            }
            WideInvariantError::NodeVisitedTwice { index } => {
                write!(f, "wide node {index} reachable through two parents")
            }
            WideInvariantError::UnreachableNodes { count } => {
                write!(f, "{count} wide nodes unreachable from the root")
            }
            WideInvariantError::PrimRangeOutOfRange { first, count } => {
                write!(
                    f,
                    "leaf slot primitive range [{first}, {first}+{count}) out of range"
                )
            }
            WideInvariantError::PrimitiveCoverage { index, times } => {
                write!(
                    f,
                    "primitive {index} covered by {times} leaf slots (expected 1)"
                )
            }
            WideInvariantError::SlotBoundsTooSmall { node, slot } => {
                write!(
                    f,
                    "slot {slot} of wide node {node} does not contain its subtree"
                )
            }
            WideInvariantError::SlotBoundsTagMismatch { node, slot } => {
                write!(
                    f,
                    "slot {slot} of wide node {node} has bounds inconsistent with its tag"
                )
            }
        }
    }
}

impl std::error::Error for WideInvariantError {}

/// Check every structural invariant of a collapsed wide BVH:
///
/// 1. every wide node is reachable from the root exactly once;
/// 2. non-empty slots store real AABBs, empty slots store the inverted box;
/// 3. leaf-slot primitive ranges are in-bounds and every primitive is
///    covered by exactly one leaf slot;
/// 4. a slot's lane bounds contain its subtree — a nested node's own slot
///    boxes for interior slots, the owned primitives' bounds for leaf slots.
pub fn validate_wide(wide: &WideBvh) -> Result<(), WideInvariantError> {
    if wide.nodes.is_empty() {
        if wide.primitives.is_empty() {
            return Ok(());
        }
        return Err(WideInvariantError::EmptyTreeWithPrimitives);
    }

    let n_nodes = wide.nodes.len();
    let n_prims = wide.primitives.len();
    let mut visited = vec![false; n_nodes];
    let mut prim_cover = vec![0usize; n_prims];
    let mut stack: Vec<u32> = vec![0];
    visited[0] = true;

    while let Some(idx) = stack.pop() {
        let node = &wide.nodes[idx as usize];
        for slot in 0..WIDE_BRANCHING {
            let bounds = node.child_bounds(slot);
            match node.children[slot] {
                WideChild::Empty => {
                    if !bounds.is_empty() {
                        return Err(WideInvariantError::SlotBoundsTagMismatch { node: idx, slot });
                    }
                }
                WideChild::Node(child) => {
                    if bounds.is_empty() {
                        return Err(WideInvariantError::SlotBoundsTagMismatch { node: idx, slot });
                    }
                    if child as usize >= n_nodes {
                        return Err(WideInvariantError::NodeIndexOutOfRange { index: child });
                    }
                    if visited[child as usize] {
                        return Err(WideInvariantError::NodeVisitedTwice { index: child });
                    }
                    visited[child as usize] = true;
                    // The nested node's own slot boxes must fit in this slot.
                    let nested = &wide.nodes[child as usize];
                    for nested_slot in 0..WIDE_BRANCHING {
                        let nb = nested.child_bounds(nested_slot);
                        if !bounds.contains_aabb(&nb) {
                            return Err(WideInvariantError::SlotBoundsTooSmall { node: idx, slot });
                        }
                    }
                    stack.push(child);
                }
                WideChild::Leaf {
                    first_prim,
                    prim_count,
                } => {
                    if bounds.is_empty() && prim_count > 0 {
                        return Err(WideInvariantError::SlotBoundsTagMismatch { node: idx, slot });
                    }
                    let first = first_prim as usize;
                    let count = prim_count as usize;
                    if first + count > n_prims {
                        return Err(WideInvariantError::PrimRangeOutOfRange {
                            first: first_prim,
                            count: prim_count,
                        });
                    }
                    for (offset, prim) in wide.primitives[first..first + count].iter().enumerate() {
                        prim_cover[first + offset] += 1;
                        if !bounds.contains_aabb(&prim.bounds()) {
                            return Err(WideInvariantError::SlotBoundsTooSmall { node: idx, slot });
                        }
                    }
                }
            }
        }
    }

    let unreachable = visited.iter().filter(|v| !**v).count();
    if unreachable > 0 {
        return Err(WideInvariantError::UnreachableNodes { count: unreachable });
    }
    for (i, &times) in prim_cover.iter().enumerate() {
        if times != 1 {
            return Err(WideInvariantError::PrimitiveCoverage {
                index: i as u32,
                times,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bvh::{
        spheres_from_points, BvhBuilder, LbvhBuilder, MedianSplitBuilder, SahBuilder,
    };
    use crate::geometry::Point3;

    fn grid(n_side: usize, spacing: f32) -> Vec<Point3> {
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                pts.push(Point3::new(i as f32 * spacing, j as f32 * spacing, 0.0));
            }
        }
        pts
    }

    #[test]
    fn collapse_of_every_builder_is_valid() {
        let pts = grid(17, 0.6);
        let builders: Vec<Box<dyn BvhBuilder>> = vec![
            Box::new(LbvhBuilder::default()),
            Box::new(SahBuilder::default()),
            Box::new(MedianSplitBuilder::default()),
        ];
        for b in builders {
            let bvh = b.build(spheres_from_points(&pts, 0.4)).unwrap();
            let wide = WideBvh::from_binary(&bvh);
            validate_wide(&wide).unwrap_or_else(|e| panic!("{:?}: {e}", b.kind()));
            assert_eq!(wide.primitive_count(), pts.len());
            // Collapsing 2 levels into 1 must not grow the node count.
            assert!(wide.node_count() <= bvh.node_count());
            assert!(wide.collapse_counters.build_node_ops > 0);
            assert_eq!(wide.scene_bounds, bvh.scene_bounds());
        }
    }

    #[test]
    fn collapse_roughly_halves_node_count_on_big_trees() {
        let pts = grid(40, 0.5);
        let bvh = LbvhBuilder::default()
            .build(spheres_from_points(&pts, 0.3))
            .unwrap();
        let wide = WideBvh::from_binary(&bvh);
        validate_wide(&wide).unwrap();
        // A full binary tree of internal nodes collapses ~3:1; real trees
        // land somewhere between 2:1 and 3:1.
        assert!(
            wide.node_count() * 2 < bvh.node_count(),
            "wide {} vs binary {}",
            wide.node_count(),
            bvh.node_count()
        );
    }

    #[test]
    fn single_leaf_and_empty_trees() {
        let bvh = LbvhBuilder::default()
            .build(vec![Sphere::new(Point3::ORIGIN, 1.0, 0)])
            .unwrap();
        let wide = WideBvh::from_binary(&bvh);
        validate_wide(&wide).unwrap();
        assert_eq!(wide.node_count(), 1);
        assert!(matches!(
            wide.nodes[0].children[0],
            WideChild::Leaf { prim_count: 1, .. }
        ));
        assert_eq!(wide.nodes[0].children[1], WideChild::Empty);

        let empty = Bvh {
            nodes: vec![],
            primitives: vec![],
            builder: crate::bvh::BuilderKind::Lbvh,
            build_counters: WorkCounters::ZERO,
        };
        let wide = WideBvh::from_binary(&empty);
        validate_wide(&wide).unwrap();
        assert_eq!(wide.node_count(), 0);
        assert!(wide.scene_bounds.is_empty());
    }

    #[test]
    fn point_hit_mask_matches_scalar_tests() {
        let pts = grid(9, 1.0);
        let bvh = SahBuilder::default()
            .build(spheres_from_points(&pts, 0.5))
            .unwrap();
        let wide = WideBvh::from_binary(&bvh);
        for node in &wide.nodes {
            for q in [
                Point3::new(0.0, 0.0, 0.0),
                Point3::new(4.2, 3.9, 0.0),
                Point3::new(8.0, 8.0, 0.0),
                Point3::new(-3.0, 100.0, 0.0),
            ] {
                let mask = node.point_hit_mask(q);
                for slot in 0..WIDE_BRANCHING {
                    let expected = node.child_bounds(slot).contains_point(q);
                    assert_eq!(mask & (1 << slot) != 0, expected, "slot {slot} at {q:?}");
                }
            }
        }
    }

    #[test]
    fn validator_catches_corruption() {
        let pts = grid(8, 0.7);
        let bvh = LbvhBuilder::default()
            .build(spheres_from_points(&pts, 0.4))
            .unwrap();
        let wide = WideBvh::from_binary(&bvh);

        // Shrink a slot's box so its subtree sticks out.
        let mut bad = wide.clone();
        bad.nodes[0].set_bounds(0, &Aabb::from_sphere(Point3::ORIGIN, 1e-3));
        assert!(matches!(
            validate_wide(&bad).unwrap_err(),
            WideInvariantError::SlotBoundsTooSmall { .. }
        ));

        // Point a slot at an out-of-range node.
        let mut bad = wide.clone();
        for slot in 0..WIDE_BRANCHING {
            if matches!(bad.nodes[0].children[slot], WideChild::Node(_)) {
                bad.nodes[0].children[slot] = WideChild::Node(10_000);
                break;
            }
        }
        assert!(matches!(
            validate_wide(&bad).unwrap_err(),
            WideInvariantError::NodeIndexOutOfRange { index: 10_000 }
        ));

        // Give an empty slot real bounds.
        let mut bad = wide.clone();
        let last = bad.nodes.len() - 1;
        bad.nodes[last].set_bounds(3, &Aabb::from_sphere(Point3::ORIGIN, 1.0));
        let corrupted = bad.nodes[last].children[3] == WideChild::Empty;
        if corrupted {
            assert!(matches!(
                validate_wide(&bad).unwrap_err(),
                WideInvariantError::SlotBoundsTagMismatch { .. }
            ));
        }

        // Claim primitives without any nodes.
        let bad = WideBvh {
            nodes: vec![],
            scene_bounds: Aabb::EMPTY,
            primitives: vec![Sphere::new(Point3::ORIGIN, 1.0, 0)],
            collapse_counters: WorkCounters::ZERO,
        };
        assert_eq!(
            validate_wide(&bad).unwrap_err(),
            WideInvariantError::EmptyTreeWithPrimitives
        );
    }

    #[test]
    fn duplicated_points_collapse_cleanly() {
        let pts: Vec<Point3> = (0..500).map(|_| Point3::new(3.0, 3.0, 0.0)).collect();
        let bvh = LbvhBuilder::default()
            .build(spheres_from_points(&pts, 0.2))
            .unwrap();
        let wide = WideBvh::from_binary(&bvh);
        validate_wide(&wide).unwrap();
        assert_eq!(wide.primitive_count(), 500);
    }

    #[test]
    fn device_bytes_are_positive_and_error_display_informative() {
        let pts = grid(5, 1.0);
        let bvh = LbvhBuilder::default()
            .build(spheres_from_points(&pts, 0.4))
            .unwrap();
        let wide = WideBvh::from_binary(&bvh);
        assert!(wide.device_bytes() > 0);
        let e = WideInvariantError::SlotBoundsTooSmall { node: 3, slot: 2 };
        assert!(e.to_string().contains("slot 2"));
        assert!(e.to_string().contains("node 3"));
    }
}

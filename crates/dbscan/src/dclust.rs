//! CUDA-DClust+ baseline (Poudel & Gowanlock, "CUDA-DClust+: revisiting
//! early GPU-accelerated DBSCAN clustering designs").
//!
//! CUDA-DClust+ indexes the points with a regular grid whose cell side equals
//! ε and grows many clusters in parallel as *chains*: each chain owns a seed
//! list of bounded size, expands points by scanning the 3×3(×3) neighbouring
//! grid cells, and records collisions between chains in a collision matrix
//! that a final pass resolves.  Compared with CUDA-DClust it builds the index
//! on the GPU, but the index construction remains a significant fraction of
//! the runtime and the chain bookkeeping (seed lists + collision matrix)
//! consumes device memory that grows with the dataset, which is why the paper
//! observed out-of-memory failures and result variability above ~100 K points
//! on a 6 GB card.
//!
//! Since the `NeighborIndex` redesign the grid itself lives in
//! [`rtcore::index::UniformGridIndex`] (any backend can stand in through
//! [`CudaDclustPlus::run_on`]); this file keeps what is genuinely
//! CUDA-DClust+: bounded chain seed lists, the collision matrix, and the
//! final collision resolution through a union-find — while producing exact
//! DBSCAN results.

use crate::disjoint_set::SequentialDisjointSet;
use crate::labels::{Clustering, NOISE, UNASSIGNED};
use crate::params::DbscanParams;
use crate::runner::{timed, DbscanAlgorithm, PhaseCounters, PhaseTimings, RunResult};
use rtcore::geometry::Point3;
use rtcore::hardware::sat_bump;
use rtcore::hardware::{ExecutionPath, MemoryTracker, WorkCounters};
use rtcore::index::{IndexKind, NeighborFlow, NeighborIndex, NeighborIndexBuilder};
use rtcore::Result;

/// Configuration of the CUDA-DClust+ analogue.
#[derive(Debug, Clone, Copy)]
pub struct CudaDclustPlus {
    /// Simulated device-memory budget (defaults to the RTX 2060's 6 GB).
    pub device_memory_bytes: u64,
    /// Maximum number of points a chain may hold in its seed list before it
    /// spills (the original uses a fixed-size seed list per chain).
    pub max_seeds_per_chain: usize,
    /// Number of chains grown in parallel.  The original scales this with
    /// the dataset; the default matches its published configuration ratio.
    pub chains_per_million_points: usize,
}

impl Default for CudaDclustPlus {
    fn default() -> Self {
        CudaDclustPlus {
            device_memory_bytes: 6 * 1024 * 1024 * 1024,
            max_seeds_per_chain: 1024,
            chains_per_million_points: 250_000,
        }
    }
}

impl CudaDclustPlus {
    /// The neighbour-index configuration this baseline builds by default:
    /// the regular grid with cell side ε.
    pub fn index_builder(&self) -> NeighborIndexBuilder {
        NeighborIndexBuilder::new(IndexKind::UniformGrid)
    }

    /// Run chain expansion over an already-built neighbour index.
    pub fn run_on(
        &self,
        index: &dyn NeighborIndex,
        points: &[Point3],
        params: DbscanParams,
    ) -> Result<RunResult> {
        params.validate()?;
        if index.capabilities().compacting {
            return Err(rtcore::Error::InvalidConfig(format!(
                "{} tracks individual point ids and cannot run over a compacting index",
                self.name()
            )));
        }
        let n = points.len();
        if n == 0 {
            return Ok(RunResult {
                clustering: Clustering::new(vec![], vec![]),
                timings: PhaseTimings::default(),
                counters: PhaseCounters::default(),
                path: ExecutionPath::ShaderCore,
                device_bytes: 0,
            });
        }
        let eps = params.eps;
        let mut build_counters = index.build_counters();

        // Simulated device footprint: points + the index structure + chain
        // seed lists + chain collision matrix.
        let chains =
            ((n as u64 * self.chains_per_million_points as u64) / 1_000_000).clamp(64, 1 << 20);
        let seed_list_bytes = chains * self.max_seeds_per_chain as u64 * 4;
        let collision_matrix_bytes = chains * chains / 8; // bit matrix
        let device_bytes = std::mem::size_of_val(points) as u64
            + index.device_bytes()
            + seed_list_bytes
            + collision_matrix_bytes;
        let mut tracker = MemoryTracker::new(self.device_memory_bytes);
        tracker.allocate(device_bytes)?;
        sat_bump(&mut build_counters.misc_ops, chains); // chain initialisation

        // Helper: the exact ε-neighbourhood of point `p` through the index.
        let neighbors_of = |p: usize, counters: &mut WorkCounters| -> Vec<u32> {
            let mut out = Vec::new();
            index.for_each_neighbor(points[p], eps, Some(p as u32), counters, &mut |nb, _| {
                out.push(nb.index);
                NeighborFlow::Continue
            });
            out
        };

        // ------------------------------------------------------------------
        // Stage 1: core identification via index scans.
        // ------------------------------------------------------------------
        let ((core, stage1_counters), stage1_time) = timed(|| {
            let mut counters = WorkCounters::ZERO;
            let mut core = vec![false; n];
            for (p, is_core) in core.iter_mut().enumerate() {
                sat_bump(&mut counters.misc_ops, 1);
                let neigh = neighbors_of(p, &mut counters);
                *is_core = neigh.len() >= params.min_pts;
            }
            (core, counters)
        });

        // ------------------------------------------------------------------
        // Stage 2: chain expansion.  Chains start from unvisited core points,
        // expand through core neighbours with a bounded seed list, absorb
        // border points, and record collisions with other chains; collisions
        // are resolved with a union-find at the end.
        // ------------------------------------------------------------------
        let ((labels, stage2_counters), stage2_time) = timed(|| {
            let mut counters = WorkCounters::ZERO;
            let mut chain_of = vec![UNASSIGNED; n]; // chain id per point
            let mut chain_dsu = SequentialDisjointSet::new(0);
            let mut chain_count = 0usize;
            let mut seeds: Vec<u32> = Vec::with_capacity(self.max_seeds_per_chain);
            let mut overflow: Vec<u32> = Vec::new();

            for start in 0..n {
                if !core[start] || chain_of[start] != UNASSIGNED {
                    continue;
                }
                let chain = chain_count as i64;
                chain_count += 1;
                chain_dsu = grow_dsu(chain_dsu, chain_count);
                chain_of[start] = chain;
                seeds.clear();
                overflow.clear();
                seeds.push(start as u32);

                while let Some(v) = seeds.pop().or_else(|| overflow.pop()) {
                    sat_bump(&mut counters.misc_ops, 1);
                    let v = v as usize;
                    for q in neighbors_of(v, &mut counters) {
                        sat_bump(&mut counters.list_ops, 1);
                        let q = q as usize;
                        match chain_of[q] {
                            UNASSIGNED | NOISE => {
                                chain_of[q] = chain;
                                if core[q] {
                                    if seeds.len() < self.max_seeds_per_chain {
                                        seeds.push(q as u32);
                                    } else {
                                        // Seed-list overflow spills to a
                                        // secondary queue (the "+" redesign).
                                        overflow.push(q as u32);
                                    }
                                }
                            }
                            other if other != chain && core[q] => {
                                // Collision between two chains through a core
                                // point: record it for the resolution pass.
                                sat_bump(&mut counters.union_ops, 1);
                                chain_dsu.union(chain as usize, other as usize);
                            }
                            _ => {}
                        }
                    }
                }
            }

            // Collision resolution: merge chains, then materialise labels.
            let labels: Vec<i64> = (0..n)
                .map(|i| {
                    sat_bump(&mut counters.find_ops, 1);
                    match chain_of[i] {
                        UNASSIGNED | NOISE => NOISE,
                        chain => chain_dsu.find(chain as usize) as i64,
                    }
                })
                .collect();
            let (finds, merges) = chain_dsu.op_counts();
            sat_bump(&mut counters.find_ops, finds);
            sat_bump(&mut counters.union_ops, merges);
            (labels, counters)
        });

        Ok(RunResult {
            clustering: Clustering::new(labels, core),
            timings: PhaseTimings {
                build: std::time::Duration::ZERO,
                core_identification: stage1_time,
                cluster_formation: stage2_time,
            },
            counters: PhaseCounters {
                build: build_counters,
                core_identification: stage1_counters,
                cluster_formation: stage2_counters,
            },
            path: ExecutionPath::ShaderCore,
            device_bytes,
        })
    }
}

impl DbscanAlgorithm for CudaDclustPlus {
    fn name(&self) -> &'static str {
        "CUDA-DClust+"
    }

    fn run(&self, points: &[Point3], params: DbscanParams) -> Result<RunResult> {
        params.validate()?;
        let (index, build_time) = timed(|| self.index_builder().build(points, params.eps));
        let mut result = self.run_on(index?.as_ref(), points, params)?;
        result.timings.build += build_time;
        Ok(result)
    }
}

/// The number of chains is not known up front; grow the chain union-find as
/// new chains are created while preserving existing state.
fn grow_dsu(old: SequentialDisjointSet, new_len: usize) -> SequentialDisjointSet {
    if old.len() >= new_len {
        return old;
    }
    let mut grown = SequentialDisjointSet::new(new_len);
    // Replay the old structure's relations (roots only — sufficient because
    // union-find state is fully described by the partition).
    let mut old = old;
    for i in 0..old.len() {
        let root = old.find(i);
        if root != i {
            grown.union(i, root);
        }
    }
    grown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::ClassicDbscan;
    use crate::metrics::same_clustering;
    use rtcore::Error;

    fn three_blobs() -> Vec<Point3> {
        let mut pts = Vec::new();
        for c in 0..3 {
            let cx = c as f32 * 12.0;
            for i in 0..70 {
                let a = i as f32 * 0.09;
                let r = 1.0 * ((i % 9) as f32 / 9.0);
                pts.push(Point3::new_2d(cx + r * a.cos(), r * a.sin()));
            }
        }
        pts.push(Point3::new_2d(6.0, 20.0));
        pts.push(Point3::new_2d(18.0, -20.0));
        pts
    }

    #[test]
    fn matches_classic_dbscan() {
        let pts = three_blobs();
        for (eps, min_pts) in [(0.6, 4), (1.2, 8)] {
            let params = DbscanParams::new(eps, min_pts).unwrap();
            let reference = ClassicDbscan::cluster(&pts, params).unwrap();
            let d = CudaDclustPlus::default()
                .run(&pts, params)
                .unwrap()
                .clustering;
            assert_eq!(reference.core, d.core, "eps={eps}");
            assert!(same_clustering(&reference, &d, &pts, params), "eps={eps}");
        }
    }

    #[test]
    fn chain_seed_overflow_still_produces_correct_clusters() {
        let pts = three_blobs();
        let params = DbscanParams::new(1.0, 4).unwrap();
        let tiny_seeds = CudaDclustPlus {
            max_seeds_per_chain: 2,
            ..CudaDclustPlus::default()
        };
        let reference = ClassicDbscan::cluster(&pts, params).unwrap();
        let d = tiny_seeds.run(&pts, params).unwrap().clustering;
        assert_eq!(reference.core, d.core);
        assert!(same_clustering(&reference, &d, &pts, params));
    }

    #[test]
    fn collision_matrix_memory_can_exhaust_the_device() {
        let pts = three_blobs();
        let params = DbscanParams::new(0.6, 4).unwrap();
        let constrained = CudaDclustPlus {
            device_memory_bytes: 10_000,
            ..CudaDclustPlus::default()
        };
        match constrained.run(&pts, params) {
            Err(Error::OutOfDeviceMemory { .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn index_build_work_is_charged() {
        let pts = three_blobs();
        let params = DbscanParams::new(0.6, 4).unwrap();
        let r = CudaDclustPlus::default().run(&pts, params).unwrap();
        assert_eq!(r.counters.build.build_prims as usize, pts.len());
        assert!(r.counters.build.build_node_ops > 0);
        assert!(r.counters.core_identification.dist_comps > 0);
        assert!(r.device_bytes > 0);
        assert_eq!(r.path, ExecutionPath::ShaderCore);
    }

    #[test]
    fn empty_and_all_noise_inputs() {
        let params = DbscanParams::new(1.0, 3).unwrap();
        assert!(CudaDclustPlus::default()
            .run(&[], params)
            .unwrap()
            .clustering
            .is_empty());
        let sparse: Vec<Point3> = (0..30)
            .map(|i| Point3::new_2d(i as f32 * 50.0, 0.0))
            .collect();
        let r = CudaDclustPlus::default().run(&sparse, params).unwrap();
        assert_eq!(r.clustering.num_clusters(), 0);
        assert_eq!(r.clustering.noise_count(), 30);
    }

    #[test]
    fn chain_expansion_runs_on_a_bvh_backend_too() {
        let pts = three_blobs();
        let params = DbscanParams::new(0.8, 4).unwrap();
        let index = NeighborIndexBuilder::new(IndexKind::WideBatched)
            .build(&pts, params.eps)
            .unwrap();
        let via_bvh = CudaDclustPlus::default()
            .run_on(index.as_ref(), &pts, params)
            .unwrap();
        let reference = ClassicDbscan::cluster(&pts, params).unwrap();
        assert_eq!(reference.core, via_bvh.clustering.core);
        assert!(same_clustering(
            &reference,
            &via_bvh.clustering,
            &pts,
            params
        ));
        assert!(via_bvh.counters.core_identification.rays > 0);
    }
}

//! Fixture: a fault-handling module where a bare `panic!` is a violation
//! (fault-tolerant callers must never see one), `unreachable!` documents an
//! impossible branch, and test-region panics stay exempt.

pub fn bad(v: u32) -> u32 {
    if v == 0 {
        panic!("zero not allowed");
    }
    v
}

pub fn waived(v: u32) -> u32 {
    if v == 0 {
        // analyze-allow: lib-unwrap -- fixture: every caller screens out zero
        panic!("zero not allowed");
    }
    v
}

pub fn impossible(v: u32) -> u32 {
    match v % 2 {
        0 | 1 => v,
        _ => unreachable!("v % 2 is always 0 or 1"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn panic_in_tests_is_fine() {
        panic!("fixture test panic");
    }
}

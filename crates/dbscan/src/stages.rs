//! The two-stage DBSCAN formulation (Algorithm 3 of the paper) expressed
//! over any [`NeighborIndex`] backend.
//!
//! Stage 1 counts every point's ε-neighbours in one batched launch; stage 2
//! launches one query per core point and merges clusters through a parallel
//! union-find, claiming border points atomically.  Both RT-DBSCAN and the
//! FDBSCAN baseline are thin configurations of these two functions — the
//! substrate (binary BVH vs BVH4 packets vs grid vs brute force) is whatever
//! backend the caller hands in, which is the point of the redesign.

use crate::disjoint_set::ConcurrentDisjointSet;
use crate::labels::NOISE;
use rtcore::geometry::Point3;
use rtcore::hardware::WorkCounters;
use rtcore::index::{NeighborFlow, NeighborIndex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Stage 1: every point's exact ε-neighbour count (self excluded), answered
/// by one batched launch over the backend's **count output mode**.
///
/// Compacting backends report representatives with multiplicities; the
/// query point's own group contributes `multiplicity - 1` (the point itself
/// does not count), which is exactly the Intersection-program logic of the
/// original RT path.  With `early_exit_min_pts` set, a query stops as soon
/// as its count reaches the threshold (the FDBSCAN-EarlyExit optimisation).
/// The count mode lets batched backends flush one count per query per
/// packet instead of paying a per-neighbour sink call; counted work is
/// identical either way.
pub(crate) fn count_all_neighbors(
    index: &dyn NeighborIndex,
    points: &[Point3],
    eps: f32,
    early_exit_min_pts: Option<usize>,
) -> (Vec<u64>, WorkCounters) {
    let counts: Vec<AtomicU64> = (0..points.len()).map(|_| AtomicU64::new(0)).collect();
    let mut counters = WorkCounters::ZERO;
    index.batch_neighbor_counts(
        points,
        eps,
        true,
        early_exit_min_pts.map(|m| m as u64),
        &mut counters,
        &counts,
    );
    (
        counts.into_iter().map(AtomicU64::into_inner).collect(),
        counters,
    )
}

/// Stage 2: one query per core point; core neighbours merge through the
/// concurrent union-find and border points are claimed atomically (the
/// paper's critical section, Algorithm 3 line 14).  Returns the final
/// labels (noise = [`NOISE`]) and the stage's counted work, including the
/// union-find traffic and the duplicate fix-up pass for compacting
/// backends.
pub(crate) fn form_clusters(
    index: &dyn NeighborIndex,
    points: &[Point3],
    core: &[bool],
    eps: f32,
) -> (Vec<i64>, WorkCounters) {
    let n = points.len();
    let core_indices: Vec<u32> = (0..n as u32).filter(|&i| core[i as usize]).collect();
    let queries: Vec<Point3> = core_indices.iter().map(|&i| points[i as usize]).collect();
    let dsu = ConcurrentDisjointSet::new(n);
    let claimed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();

    let mut counters = WorkCounters::ZERO;
    index.batch_neighbors(&queries, eps, &mut counters, &|ordinal, neighbor, _| {
        let p = core_indices[ordinal] as usize;
        let q = neighbor.index as usize;
        if q != p {
            if core[q] {
                dsu.union(p, q);
            } else if claimed[q]
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // A border point may be reachable from several clusters but
                // must join exactly one.
                dsu.union(p, q);
            }
        }
        NeighborFlow::Continue
    });
    let (find_ops, union_ops) = dsu.op_counts();
    counters.find_ops += find_ops;
    counters.union_ops += union_ops;

    // Materialise labels.  Coincident duplicates merged away by a
    // compacting backend inherit their representative's assignment (they
    // have identical neighbourhoods, so this is always a valid DBSCAN
    // assignment).
    let mut labels: Vec<i64> = (0..n)
        .map(|i| {
            if core[i] || claimed[i].load(Ordering::Relaxed) {
                dsu.find(i) as i64
            } else {
                NOISE
            }
        })
        .collect();
    let mut dup_fixups = 0u64;
    for i in 0..n {
        let rep = index.representative_of(i as u32) as usize;
        if rep != i && labels[i] == NOISE && labels[rep] >= 0 {
            labels[i] = labels[rep];
            dup_fixups += 1;
        }
    }
    counters.misc_ops += dup_fixups;

    (labels, counters)
}

//! Fixture: lib-unwrap violations, a reasoned waiver, and a reasonless one.

pub fn bad(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn waived(v: Option<u32>) -> u32 {
    // analyze-allow: lib-unwrap -- fixture: the invariant lives here
    v.expect("fixture invariant")
}

pub fn reasonless(v: Option<u32>) -> u32 {
    // analyze-allow: lib-unwrap
    v.unwrap()
}

pub fn unwrap_or_is_fine(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}

//! Parameter exploration — the "typical DBSCAN use case" of Section VI-B.
//!
//! ```text
//! cargo run --release -p rtdbscan --example parameter_sweep
//! ```
//!
//! The paper argues that in practice users run DBSCAN many times with
//! different (ε, minPts) values while exploring a dataset, which is why it
//! favours recording full neighbour counts over the early-exit optimisation.
//! This example performs such an exploration on a road-network dataset and
//! prints how the clustering changes across the grid, along with the
//! accumulated simulated cost of the whole sweep for RT-DBSCAN vs FDBSCAN.

use rtdbscan::{DbscanAlgorithm, DbscanParams, Fdbscan, RtDbscan};
use rtdbscan_datasets::{generate, PaperDataset};

fn main() {
    let points = generate(PaperDataset::RoadNetwork, 40_000, 42);
    println!("3DRoad-like dataset: {} points", points.len());
    println!();
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>10}",
        "eps", "minPts", "clusters", "noise", "largest"
    );

    let device = rtcore::hardware::DeviceModel::rtx2060();
    let mut rt_total = 0.0f64;
    let mut fd_total = 0.0f64;

    for &eps in &[0.01f32, 0.02, 0.05, 0.1] {
        for &min_pts in &[5usize, 20, 50] {
            let params = DbscanParams::new(eps, min_pts).expect("valid parameters");
            let rt_run = RtDbscan::default().run(&points, params).expect("RT-DBSCAN");
            let fd_run = Fdbscan::default().run(&points, params).expect("FDBSCAN");
            rt_total += rt_run.simulate_on(&device).total().as_secs_f64();
            fd_total += fd_run.simulate_on(&device).total().as_secs_f64();

            let c = &rt_run.clustering;
            println!(
                "{:>8} {:>8} {:>10} {:>10} {:>10}",
                eps,
                min_pts,
                c.num_clusters(),
                c.noise_count(),
                c.cluster_sizes().first().copied().unwrap_or(0)
            );
        }
    }

    println!();
    println!(
        "whole sweep, simulated RTX 2060: RT-DBSCAN {rt_total:.4} s vs FDBSCAN {fd_total:.4} s \
         ({:.2}x saved by the RT cores across the exploration)",
        fd_total / rt_total
    );
}

//! Simulated device-memory accounting.
//!
//! The paper repeatedly runs into the 6 GB limit of the RTX 2060: G-DBSCAN
//! and CUDA-DClust+ go out of memory above ~100 K points (Section V-B1).
//! Algorithms in this reproduction register the device-resident structures
//! they would allocate on a real GPU with a [`MemoryTracker`], which enforces
//! the budget and records the peak footprint for reports.

use crate::error::{Error, Result};

/// Tracks simulated device-memory allocations against a fixed budget.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    budget: u64,
    in_use: u64,
    peak: u64,
}

impl MemoryTracker {
    /// Create a tracker with the given budget in bytes.
    pub fn new(budget_bytes: u64) -> Self {
        MemoryTracker {
            budget: budget_bytes,
            in_use: 0,
            peak: 0,
        }
    }

    /// Create a tracker with an effectively unlimited budget (useful in unit
    /// tests that do not care about memory).
    pub fn unlimited() -> Self {
        MemoryTracker::new(u64::MAX)
    }

    /// Total budget in bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Peak bytes ever allocated at once.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.budget.saturating_sub(self.in_use)
    }

    /// Record an allocation of `bytes`, failing with
    /// [`Error::OutOfDeviceMemory`] if it does not fit.
    pub fn allocate(&mut self, bytes: u64) -> Result<()> {
        if bytes > self.available() {
            return Err(Error::OutOfDeviceMemory {
                requested: bytes,
                available: self.available(),
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Record a deallocation of `bytes` (saturating at zero).
    pub fn free(&mut self, bytes: u64) {
        self.in_use = self.in_use.saturating_sub(bytes);
    }

    /// Release everything currently allocated (peak is retained).
    pub fn free_all(&mut self) {
        self.in_use = 0;
    }
}

impl Default for MemoryTracker {
    /// Defaults to the 6 GB budget of the paper's RTX 2060.
    fn default() -> Self {
        MemoryTracker::new(6 * 1024 * 1024 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_within_budget() {
        let mut t = MemoryTracker::new(1000);
        assert!(t.allocate(600).is_ok());
        assert_eq!(t.in_use(), 600);
        assert_eq!(t.available(), 400);
        assert_eq!(t.peak(), 600);
    }

    #[test]
    fn allocate_over_budget_fails() {
        let mut t = MemoryTracker::new(1000);
        t.allocate(900).unwrap();
        let err = t.allocate(200).unwrap_err();
        match err {
            Error::OutOfDeviceMemory {
                requested,
                available,
            } => {
                assert_eq!(requested, 200);
                assert_eq!(available, 100);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The failed allocation must not change accounting.
        assert_eq!(t.in_use(), 900);
    }

    #[test]
    fn free_and_peak_tracking() {
        let mut t = MemoryTracker::new(1000);
        t.allocate(500).unwrap();
        t.allocate(300).unwrap();
        assert_eq!(t.peak(), 800);
        t.free(600);
        assert_eq!(t.in_use(), 200);
        assert_eq!(t.peak(), 800);
        t.allocate(100).unwrap();
        assert_eq!(t.peak(), 800);
        t.free_all();
        assert_eq!(t.in_use(), 0);
        assert_eq!(t.peak(), 800);
    }

    #[test]
    fn free_saturates_at_zero() {
        let mut t = MemoryTracker::new(100);
        t.free(50);
        assert_eq!(t.in_use(), 0);
    }

    #[test]
    fn default_is_6gb() {
        let t = MemoryTracker::default();
        assert_eq!(t.budget(), 6 * 1024 * 1024 * 1024);
    }

    #[test]
    fn unlimited_never_fails() {
        let mut t = MemoryTracker::unlimited();
        assert!(t.allocate(u64::MAX / 2).is_ok());
    }
}

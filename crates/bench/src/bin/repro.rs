//! `repro` — regenerate every table and figure of the RT-DBSCAN paper.
//!
//! ```text
//! cargo run -p rtdbscan-bench --release --bin repro -- all
//! cargo run -p rtdbscan-bench --release --bin repro -- fig5 --full
//! cargo run -p rtdbscan-bench --release --bin repro -- table2 --scale 0.25
//! cargo run -p rtdbscan-bench --release --bin repro -- all --markdown > results.md
//! ```
//!
//! Without `--full`, workloads are scaled to 1/8 of the paper sizes so the
//! whole suite finishes in minutes on a CPU-only machine; the reported
//! numbers are simulated RTX 2060 device times derived from measured work
//! counters (see DESIGN.md §1 and `rtcore::hardware`).

use rtdbscan_bench::experiments::{self, ExperimentScale};
use rtdbscan_bench::table::ExperimentTable;
use rtdbscan_datasets::PaperDataset;
use std::process::ExitCode;

const USAGE: &str = "\
repro — regenerate the RT-DBSCAN paper's tables and figures

USAGE:
    repro <EXPERIMENT> [--full | --scale <factor>] [--seed <n>] [--markdown]

EXPERIMENTS:
    all          every experiment, in paper order
    fig4         speedup over CUDA-DClust+ (16K 3DRoad, eps sweep)
    fig5         speedup over FDBSCAN vs eps (3DRoad, Porto, 3DIono)
    fig6         speedup over FDBSCAN vs dataset size (3DRoad, Porto, 3DIono)
    fig7         execution-time scalability on 3DIono
    table1       Porto raw execution times vs dataset size
    table2       NGSIM eps sweep (= Fig 8a)
    table3       NGSIM size sweep (= Fig 8b)
    fig9         early traversal termination study (Porto, 3DRoad, NGSIM)
    breakdown    Section V-D build/clustering breakdown
    tiny         Section V-B1 small-dataset crossover
    ablation-triangles    Section VI-C sphere vs triangle geometry
    ablations    builder / compaction ablations

OPTIONS:
    --full           run the paper-sized workloads (slow)
    --scale <f>      scale factor for dataset sizes (default 0.125)
    --seed <n>       dataset generator seed (default 42)
    --markdown       emit GitHub-flavoured markdown instead of plain text
";

struct Options {
    experiment: String,
    scale: ExperimentScale,
    markdown: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    if args.is_empty() {
        return Err("missing experiment name".into());
    }
    let experiment = args[0].clone();
    let mut scale = ExperimentScale::standard();
    let mut markdown = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => scale.factor = 1.0,
            "--markdown" => markdown = true,
            "--scale" => {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or("--scale requires a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --scale value: {e}"))?;
                if !(v > 0.0 && v <= 1.0) {
                    return Err("--scale must be in (0, 1]".into());
                }
                scale.factor = v;
            }
            "--seed" => {
                i += 1;
                scale.seed = args
                    .get(i)
                    .ok_or("--seed requires a value")?
                    .parse::<u64>()
                    .map_err(|e| format!("bad --seed value: {e}"))?;
            }
            other => return Err(format!("unknown option: {other}")),
        }
        i += 1;
    }
    Ok(Options {
        experiment,
        scale,
        markdown,
    })
}

fn run_experiment(name: &str, scale: &ExperimentScale) -> Result<Vec<ExperimentTable>, String> {
    let tables = match name {
        "all" => experiments::run_all(scale),
        "fig4" => vec![experiments::fig4_small_dataset(scale)],
        "fig5" => vec![
            experiments::fig5_eps_sweep(scale, PaperDataset::RoadNetwork),
            experiments::fig5_eps_sweep(scale, PaperDataset::PortoTaxi),
            experiments::fig5_eps_sweep(scale, PaperDataset::Ionosphere3d),
        ],
        "fig6" => vec![
            experiments::fig6_size_sweep(scale, PaperDataset::RoadNetwork),
            experiments::fig6_size_sweep(scale, PaperDataset::PortoTaxi),
            experiments::fig6_size_sweep(scale, PaperDataset::Ionosphere3d),
        ],
        "fig7" => vec![experiments::fig7_scalability(scale)],
        "table1" => vec![experiments::table1_porto(scale)],
        "table2" | "fig8a" => vec![experiments::table2_ngsim_eps(scale)],
        "table3" | "fig8b" => vec![experiments::table3_ngsim_size(scale)],
        "fig9" => vec![
            experiments::fig9_early_exit(scale, PaperDataset::PortoTaxi),
            experiments::fig9_early_exit(scale, PaperDataset::RoadNetwork),
            experiments::fig9_early_exit(scale, PaperDataset::Ngsim),
        ],
        "breakdown" => vec![experiments::breakdown_analysis(scale)],
        "tiny" => vec![experiments::tiny_dataset_crossover(scale)],
        "ablation-triangles" => vec![experiments::ablation_triangles(scale)],
        "ablations" => vec![experiments::ablation_builders_and_compaction(scale)],
        other => return Err(format!("unknown experiment '{other}'\n\n{USAGE}")),
    };
    Ok(tables)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# repro: experiment={} scale={} seed={} (simulated RTX 2060 device times)",
        options.experiment, options.scale.factor, options.scale.seed
    );
    let started = std::time::Instant::now();
    match run_experiment(&options.experiment, &options.scale) {
        Ok(tables) => {
            for t in &tables {
                if options.markdown {
                    println!("{}", t.to_markdown());
                } else {
                    println!("{t}");
                }
            }
            eprintln!(
                "# repro: {} table(s) in {:.1}s wall-clock",
                tables.len(),
                started.elapsed().as_secs_f64()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let o = parse_args(&["fig5".into()]).unwrap();
        assert_eq!(o.experiment, "fig5");
        assert!((o.scale.factor - 0.125).abs() < 1e-12);
        assert!(!o.markdown);
    }

    #[test]
    fn parse_full_and_seed_and_markdown() {
        let o = parse_args(&[
            "all".into(),
            "--full".into(),
            "--seed".into(),
            "7".into(),
            "--markdown".into(),
        ])
        .unwrap();
        assert_eq!(o.scale.factor, 1.0);
        assert_eq!(o.scale.seed, 7);
        assert!(o.markdown);
    }

    #[test]
    fn parse_scale_bounds() {
        assert!(parse_args(&["all".into(), "--scale".into(), "0.5".into()]).is_ok());
        assert!(parse_args(&["all".into(), "--scale".into(), "0".into()]).is_err());
        assert!(parse_args(&["all".into(), "--scale".into(), "2".into()]).is_err());
        assert!(parse_args(&["all".into(), "--bogus".into()]).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        let scale = ExperimentScale::smoke();
        assert!(run_experiment("not-a-thing", &scale).is_err());
    }

    #[test]
    fn tiny_experiment_runs_end_to_end() {
        let scale = ExperimentScale::smoke();
        let tables = run_experiment("breakdown", &scale).unwrap();
        assert_eq!(tables.len(), 1);
        assert!(!tables[0].rows.is_empty());
    }
}

//! In-place BVH refit: the cheap branch of a streaming update policy.
//!
//! Production ray tracers rarely rebuild an acceleration structure from
//! scratch on every scene change; they *refit* — patch primitives in place
//! and recompute node bounds bottom-up — and only fall back to a full
//! rebuild when the refitted tree has degraded enough that traversal
//! quality suffers.  OptiX exposes exactly this pair of operations
//! (`OPTIX_BUILD_OPERATION_UPDATE` vs a fresh build); this module provides
//! the software equivalent for the sphere scenes used by the RT-DBSCAN
//! reproduction:
//!
//! * [`remove_points`] — delete primitives (points sliding out of a
//!   streaming window) by compacting leaf ranges in place, then refitting
//!   bounds bottom-up.  No sorting, no partitioning, no node allocation.
//! * [`update_spheres`] — mutate primitives in place (moving centres,
//!   changing ε) and refit bounds bottom-up.
//! * [`TreeHealth`] / [`RefitPolicy`] — the quality heuristic: a refitted
//!   tree keeps its topology, so after enough deletions (or enough motion)
//!   its per-primitive node overhead and leaf-bound slack grow past what a
//!   fresh build would produce; the policy says when to stop refitting and
//!   rebuild.
//!
//! All work is counted: node AABB recomputations are charged to
//! [`WorkCounters::refit_node_ops`] and each pass increments
//! [`WorkCounters::refits`], so refit/rebuild decisions are visible in the
//! same counter stream the device cost model consumes (a refit never pays
//! the fixed build-setup cost — that is precisely its advantage).

use crate::bvh::{Bvh, NodeKind};
use crate::geometry::{Aabb, Sphere};
use crate::hardware::sat_bump;
use crate::hardware::WorkCounters;

/// What one refit pass did to the tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefitStats {
    /// Nodes whose bounds were recomputed.
    pub nodes_refit: u64,
    /// Primitives physically removed from the primitive array.
    pub prims_removed: u64,
}

/// Bottom-up bounds refit.
///
/// Children are always emitted after their parent by every builder in this
/// crate, so a reverse index scan sees children before parents and a single
/// pass suffices: leaves recompute their bounds from their primitives,
/// internal nodes take the union of their (already refitted) children.
fn refit_bounds(bvh: &mut Bvh, counters: &mut WorkCounters) -> u64 {
    let mut nodes_refit = 0u64;
    for i in (0..bvh.nodes.len()).rev() {
        let bounds = match bvh.nodes[i].kind {
            NodeKind::Leaf {
                first_prim,
                prim_count,
            } => {
                let first = first_prim as usize;
                let count = prim_count as usize;
                bvh.primitives[first..first + count]
                    .iter()
                    .fold(Aabb::EMPTY, |acc, s| acc.union(&s.bounds()))
            }
            NodeKind::Internal { left, right } => bvh.nodes[left as usize]
                .bounds
                .union(&bvh.nodes[right as usize].bounds),
        };
        bvh.nodes[i].bounds = bounds;
        nodes_refit += 1;
    }
    sat_bump(&mut counters.refit_node_ops, nodes_refit);
    nodes_refit
}

/// Remove every primitive whose `point_index` satisfies `should_remove`,
/// compacting the primitive array and leaf ranges in place, then refit all
/// node bounds bottom-up.
///
/// The tree topology (node array, parent/child links) is untouched; leaves
/// that lose all primitives stay in the tree with empty bounds, which the
/// traversal's AABB test rejects for free.  Structural invariants
/// ([`crate::bvh::validate`]) are preserved.
///
/// Cost: one pass over the nodes plus one pass over the primitives — no
/// Morton sort, no SAH sweeps, no allocation beyond the compacted primitive
/// array.
pub fn remove_points<F>(bvh: &mut Bvh, should_remove: F, counters: &mut WorkCounters) -> RefitStats
where
    F: Fn(u32) -> bool,
{
    let before = bvh.primitives.len();
    // Compact primitives leaf-range by leaf-range.  Leaf ranges partition
    // the primitive array, so rewriting each leaf's survivors to a write
    // cursor in ascending first_prim order keeps ranges contiguous and
    // non-overlapping.
    let mut leaves: Vec<usize> = (0..bvh.nodes.len())
        .filter(|&i| bvh.nodes[i].is_leaf())
        .collect();
    leaves.sort_by_key(|&i| match bvh.nodes[i].kind {
        NodeKind::Leaf { first_prim, .. } => first_prim,
        NodeKind::Internal { .. } => unreachable!(),
    });

    let mut write = 0usize;
    for &leaf in &leaves {
        let (first, count) = match bvh.nodes[leaf].kind {
            NodeKind::Leaf {
                first_prim,
                prim_count,
            } => (first_prim as usize, prim_count as usize),
            NodeKind::Internal { .. } => unreachable!(),
        };
        let new_first = write;
        for read in first..first + count {
            if !should_remove(bvh.primitives[read].point_index) {
                bvh.primitives[write] = bvh.primitives[read];
                write += 1;
            }
        }
        bvh.nodes[leaf].kind = NodeKind::Leaf {
            first_prim: new_first as u32,
            prim_count: (write - new_first) as u32,
        };
    }
    bvh.primitives.truncate(write);

    let stats = RefitStats {
        nodes_refit: refit_bounds(bvh, counters),
        prims_removed: (before - write) as u64,
    };
    sat_bump(&mut counters.refits, 1);
    sat_bump(&mut counters.misc_ops, before as u64); // per-primitive liveness test
    stats
}

/// Apply `update` to every primitive in place, then refit all node bounds
/// bottom-up.
///
/// This is the classic animation-style refit: sphere centres and radii may
/// change arbitrarily, the tree topology stays.  Bounds remain correct
/// (every leaf recomputes them), but the *quality* of the partition decays
/// with motion — measure it with [`tree_health`] and consult a
/// [`RefitPolicy`] to decide when a rebuild pays for itself.
pub fn update_spheres<F>(bvh: &mut Bvh, mut update: F, counters: &mut WorkCounters) -> RefitStats
where
    F: FnMut(&mut Sphere),
{
    for sphere in &mut bvh.primitives {
        update(sphere);
    }
    sat_bump(&mut counters.misc_ops, bvh.primitives.len() as u64);
    let stats = RefitStats {
        nodes_refit: refit_bounds(bvh, counters),
        prims_removed: 0,
    };
    sat_bump(&mut counters.refits, 1);
    stats
}

/// A snapshot of refit-relevant tree quality metrics.
///
/// Captured once right after a full build and again after refits; the pair
/// feeds [`RefitPolicy::should_rebuild`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeHealth {
    /// Primitives currently in the tree.
    pub live_prims: usize,
    /// Total nodes (fixed at build time; refits never restructure).
    pub node_count: usize,
    /// Leaves that have lost all their primitives.
    pub empty_leaves: usize,
    /// Total leaves.
    pub leaf_count: usize,
    /// Sum of leaf surface areas — the SAH-style proxy for expected
    /// traversal cost.  Grows as refitted leaves inflate (motion) and stays
    /// roughly constant under deletion.
    pub leaf_sa_sum: f32,
    /// Surface area of the root bounds.
    pub root_sa: f32,
}

impl TreeHealth {
    /// Nodes per live primitive — the deletion-degradation axis.  A freshly
    /// built tree sits near `2 / max_leaf_size`; heavy deletion inflates it
    /// because the topology keeps paying for primitives that left.
    pub fn nodes_per_prim(&self) -> f32 {
        self.node_count as f32 / self.live_prims.max(1) as f32
    }

    /// Leaf surface area normalised by root area — the motion-degradation
    /// axis.  Invariant to uniform scene growth, grows when leaves start
    /// overlapping after refits.
    pub fn leaf_sa_ratio(&self) -> f32 {
        if self.root_sa <= 0.0 {
            return 0.0;
        }
        self.leaf_sa_sum / self.root_sa
    }
}

/// Measure the current [`TreeHealth`] of a BVH.
pub fn tree_health(bvh: &Bvh) -> TreeHealth {
    let mut empty_leaves = 0usize;
    let mut leaf_count = 0usize;
    let mut leaf_sa_sum = 0.0f32;
    for node in &bvh.nodes {
        if let NodeKind::Leaf { prim_count, .. } = node.kind {
            leaf_count += 1;
            if prim_count == 0 {
                empty_leaves += 1;
            } else {
                leaf_sa_sum += node.bounds.surface_area();
            }
        }
    }
    TreeHealth {
        live_prims: bvh.primitives.len(),
        node_count: bvh.nodes.len(),
        empty_leaves,
        leaf_count,
        leaf_sa_sum,
        root_sa: bvh.scene_bounds().surface_area(),
    }
}

/// When to stop refitting and rebuild from scratch.
///
/// Mirrors the heuristics production RT engines use: refit while cheap,
/// rebuild when the refitted tree's expected traversal cost drifts too far
/// from what a fresh build would give.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefitPolicy {
    /// Rebuild when `nodes_per_prim` has inflated by more than this factor
    /// relative to the tree as built (deletions shrink `live_prims` while
    /// `node_count` stays fixed).
    pub max_node_inflation: f32,
    /// Rebuild when the leaf-surface-area ratio has inflated by more than
    /// this factor relative to the tree as built (leaf AABBs degraded past
    /// the threshold — motion/update workloads).
    pub max_leaf_sa_inflation: f32,
    /// Below this many live primitives, always rebuild — tiny trees rebuild
    /// faster than any bookkeeping can pay for.
    pub min_prims_for_refit: usize,
}

impl Default for RefitPolicy {
    fn default() -> Self {
        RefitPolicy {
            // A fresh build at max_leaf_size 4 sits near 0.5 nodes/prim;
            // letting it double roughly corresponds to half the window
            // having been deleted.
            max_node_inflation: 2.0,
            max_leaf_sa_inflation: 2.0,
            min_prims_for_refit: 64,
        }
    }
}

impl RefitPolicy {
    /// Decide whether a tree measured `now` has degraded past this policy's
    /// thresholds relative to its health `at_build` time.
    pub fn should_rebuild(&self, at_build: &TreeHealth, now: &TreeHealth) -> bool {
        if now.live_prims < self.min_prims_for_refit {
            return true;
        }
        if now.nodes_per_prim() > at_build.nodes_per_prim() * self.max_node_inflation {
            return true;
        }
        let built_ratio = at_build.leaf_sa_ratio();
        if built_ratio > 0.0 && now.leaf_sa_ratio() > built_ratio * self.max_leaf_sa_inflation {
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bvh::{spheres_from_points, validate, BvhBuilder, LbvhBuilder, SahBuilder};
    use crate::geometry::{Point3, Ray};
    use crate::traversal::collect_sphere_hits;

    fn grid_points(n_side: usize) -> Vec<Point3> {
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                pts.push(Point3::new(i as f32, j as f32, 0.0));
            }
        }
        pts
    }

    fn brute_force(points: &[(u32, Point3)], q: Point3, radius: f32) -> Vec<u32> {
        let mut out: Vec<u32> = points
            .iter()
            .filter(|&&(_, p)| p.distance_squared(q) <= radius * radius)
            .map(|&(i, _)| i)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn removal_keeps_tree_valid_and_queries_exact() {
        let pts = grid_points(20);
        let radius = 1.5;
        for builder_kind in ["lbvh", "sah"] {
            let prims = spheres_from_points(&pts, radius);
            let mut bvh = match builder_kind {
                "lbvh" => LbvhBuilder::default().build(prims).unwrap(),
                _ => SahBuilder::default().build(prims).unwrap(),
            };
            let mut counters = WorkCounters::ZERO;
            // Remove every third point.
            let stats = remove_points(&mut bvh, |i| i % 3 == 0, &mut counters);
            assert_eq!(stats.prims_removed as usize, pts.len().div_ceil(3));
            assert!(stats.nodes_refit > 0);
            assert_eq!(counters.refits, 1);
            assert!(counters.refit_node_ops > 0);
            validate(&bvh).unwrap_or_else(|e| panic!("{builder_kind}: {e}"));

            // Queries over the refitted tree must exactly match brute force
            // over the survivors.
            let survivors: Vec<(u32, Point3)> = pts
                .iter()
                .enumerate()
                .filter(|&(i, _)| i % 3 != 0)
                .map(|(i, &p)| (i as u32, p))
                .collect();
            for q in [Point3::new(3.2, 4.1, 0.0), Point3::new(10.0, 10.0, 0.0)] {
                let mut c = WorkCounters::ZERO;
                let mut hits = collect_sphere_hits(&bvh, &Ray::epsilon_ray(q), None, &mut c);
                hits.sort_unstable();
                assert_eq!(hits, brute_force(&survivors, q, radius), "{builder_kind}");
            }
        }
    }

    #[test]
    fn removing_everything_leaves_an_empty_valid_tree() {
        let pts = grid_points(8);
        let mut bvh = LbvhBuilder::default()
            .build(spheres_from_points(&pts, 0.5))
            .unwrap();
        let mut counters = WorkCounters::ZERO;
        let stats = remove_points(&mut bvh, |_| true, &mut counters);
        assert_eq!(stats.prims_removed as usize, pts.len());
        assert_eq!(bvh.primitives.len(), 0);
        validate(&bvh).unwrap();
        // A query against the emptied tree touches nothing.
        let mut c = WorkCounters::ZERO;
        let hits = collect_sphere_hits(
            &bvh,
            &Ray::epsilon_ray(Point3::new(1.0, 1.0, 0.0)),
            None,
            &mut c,
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn update_refit_tracks_moving_spheres() {
        let pts = grid_points(10);
        let radius = 0.75;
        let mut bvh = SahBuilder::default()
            .build(spheres_from_points(&pts, radius))
            .unwrap();
        let mut counters = WorkCounters::ZERO;
        // Shift every sphere by a fixed offset: bounds must follow.
        let offset = Point3::new(100.0, -3.0, 0.0);
        update_spheres(
            &mut bvh,
            |s| {
                s.center = Point3::new(
                    s.center.x + offset.x,
                    s.center.y + offset.y,
                    s.center.z + offset.z,
                );
            },
            &mut counters,
        );
        validate(&bvh).unwrap();
        let moved: Vec<(u32, Point3)> = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                (
                    i as u32,
                    Point3::new(p.x + offset.x, p.y + offset.y, p.z + offset.z),
                )
            })
            .collect();
        let q = Point3::new(102.0, -1.0, 0.0);
        let mut c = WorkCounters::ZERO;
        let mut hits = collect_sphere_hits(&bvh, &Ray::epsilon_ray(q), None, &mut c);
        hits.sort_unstable();
        assert_eq!(hits, brute_force(&moved, q, radius));
    }

    #[test]
    fn health_degrades_under_deletion_and_policy_fires() {
        let pts = grid_points(24);
        let mut bvh = LbvhBuilder::default()
            .build(spheres_from_points(&pts, 0.5))
            .unwrap();
        let at_build = tree_health(&bvh);
        let policy = RefitPolicy::default();
        assert!(!policy.should_rebuild(&at_build, &at_build));

        // Remove 75% of the points: nodes/prim inflates 4x > threshold 2x.
        let mut counters = WorkCounters::ZERO;
        remove_points(&mut bvh, |i| i % 4 != 0, &mut counters);
        let now = tree_health(&bvh);
        assert!(now.live_prims < at_build.live_prims);
        assert_eq!(now.node_count, at_build.node_count);
        assert!(now.nodes_per_prim() > at_build.nodes_per_prim() * 3.0);
        assert!(policy.should_rebuild(&at_build, &now));
    }

    #[test]
    fn health_degrades_under_motion_and_policy_fires() {
        // Start from a tight grid, then scatter the points far apart with a
        // deterministic hash: leaf AABBs inflate enormously.
        let pts = grid_points(16);
        let mut bvh = SahBuilder::default()
            .build(spheres_from_points(&pts, 0.5))
            .unwrap();
        let at_build = tree_health(&bvh);
        let mut counters = WorkCounters::ZERO;
        update_spheres(
            &mut bvh,
            |s| {
                let h = (s.point_index as u64).wrapping_mul(0x9E3779B97F4A7C15);
                s.center = Point3::new(
                    ((h >> 16) & 0xffff) as f32,
                    ((h >> 32) & 0xffff) as f32,
                    0.0,
                );
            },
            &mut counters,
        );
        let now = tree_health(&bvh);
        assert!(
            RefitPolicy::default().should_rebuild(&at_build, &now),
            "leaf SA ratio {} vs built {}",
            now.leaf_sa_ratio(),
            at_build.leaf_sa_ratio()
        );
    }

    #[test]
    fn tiny_trees_always_rebuild() {
        let pts = grid_points(4);
        let bvh = LbvhBuilder::default()
            .build(spheres_from_points(&pts, 0.5))
            .unwrap();
        let h = tree_health(&bvh);
        assert!(RefitPolicy::default().should_rebuild(&h, &h));
    }

    #[test]
    fn refit_is_much_cheaper_than_rebuild_in_counted_work() {
        let pts = grid_points(40); // 1600 points
        let prims = spheres_from_points(&pts, 0.5);
        let bvh_fresh = LbvhBuilder::default().build(prims.clone()).unwrap();
        let rebuild_ops = bvh_fresh.build_counters.build_ops();

        let mut bvh = LbvhBuilder::default().build(prims).unwrap();
        let mut counters = WorkCounters::ZERO;
        remove_points(&mut bvh, |i| i % 10 == 0, &mut counters);
        assert!(
            counters.refit_ops() * 2 < rebuild_ops,
            "refit {} vs rebuild {}",
            counters.refit_ops(),
            rebuild_ops
        );
        // And in simulated device time, where the rebuild also pays the
        // fixed setup cost.
        use crate::hardware::{DeviceModel, ExecutionPath};
        let device = DeviceModel::default();
        let refit_time = device
            .build_time(&counters, ExecutionPath::RtCore)
            .as_secs_f64();
        let rebuild_time = device
            .build_time(&bvh_fresh.build_counters, ExecutionPath::RtCore)
            .as_secs_f64();
        assert!(
            refit_time * 5.0 < rebuild_time,
            "refit {refit_time}s vs rebuild {rebuild_time}s"
        );
    }
}

//! Integration tests of the dataset generators against the clustering stack:
//! the synthetic datasets must exhibit the density structure the paper's
//! experiments depend on, and they must survive a CSV round trip unchanged.

use rtdbscan::{ClassicDbscan, DbscanAlgorithm, DbscanParams, RtDbscan};
use rtdbscan_datasets::{generate, load_csv, save_csv, PaperDataset};
use std::collections::HashMap;

#[test]
fn road_network_produces_many_small_clusters_then_few_large_ones() {
    // Sweeping eps on the road network must move the clustering from
    // "many small clusters" to "few large clusters" (Section V-B).
    let points = generate(PaperDataset::RoadNetwork, 8_000, 21);
    let small = RtDbscan::default()
        .run(&points, DbscanParams::new(0.004, 3).unwrap())
        .unwrap()
        .clustering;
    let large = RtDbscan::default()
        .run(&points, DbscanParams::new(0.08, 3).unwrap())
        .unwrap()
        .clustering;
    assert!(
        small.num_clusters() > large.num_clusters(),
        "smaller eps should fragment the road network ({} vs {})",
        small.num_clusters(),
        large.num_clusters()
    );
    assert!(large.num_clusters() >= 1);
    let largest_small = small.cluster_sizes().first().copied().unwrap_or(0);
    let largest_large = large.cluster_sizes().first().copied().unwrap_or(0);
    assert!(largest_large > largest_small);
}

#[test]
fn porto_hotspots_are_recovered_as_clusters() {
    let points = generate(PaperDataset::PortoTaxi, 12_000, 33);
    // eps / minPts chosen so hotspot cores qualify but the thinner
    // trajectory corridors between them do not, which keeps the hotspots
    // from being bridged into one giant cluster.
    let clustering = RtDbscan::default()
        .run(&points, DbscanParams::new(0.3, 60).unwrap())
        .unwrap()
        .clustering;
    // The generator places six hotspots; a sensible eps should recover
    // several of them as distinct dense clusters and leave sparse
    // trajectory / noise points unclustered.
    assert!(
        clustering.num_clusters() >= 2,
        "expected several hotspots, got {}",
        clustering.num_clusters()
    );
    assert!(clustering.noise_count() > 0);
    assert!(clustering.noise_count() < points.len());
}

#[test]
fn ngsim_duplication_and_zero_cluster_property() {
    let points = generate(PaperDataset::Ngsim, 40_000, 9);
    let mut unique: HashMap<(u32, u32), u32> = HashMap::new();
    for p in &points {
        *unique.entry((p.x.to_bits(), p.y.to_bits())).or_default() += 1;
    }
    let duplication = points.len() as f64 / unique.len() as f64;
    assert!(duplication > 2.0, "duplication ratio {duplication:.1}");
    let max_per_location = unique.values().copied().max().unwrap();
    assert!(
        (max_per_location as usize) < 100,
        "no location may reach minPts=100 ({max_per_location})"
    );

    let clustering = RtDbscan::default()
        .run(&points, DbscanParams::new(0.0005, 100).unwrap())
        .unwrap()
        .clustering;
    assert_eq!(clustering.num_clusters(), 0);
    assert_eq!(clustering.noise_count(), points.len());
}

#[test]
fn ionosphere_forms_clusters_in_3d() {
    let points = generate(PaperDataset::Ionosphere3d, 10_000, 13);
    assert!(
        points.iter().any(|p| p.z != 0.0),
        "3DIono must be genuinely 3-D"
    );
    let clustering = RtDbscan::default()
        .run(&points, DbscanParams::new(0.5, 5).unwrap())
        .unwrap()
        .clustering;
    assert!(clustering.num_clusters() > 0);
    assert!(clustering.core_count() > 0);
}

#[test]
fn csv_round_trip_preserves_clustering() {
    let points = generate(PaperDataset::Ionosphere3d, 2_000, 4);
    let mut path = std::env::temp_dir();
    path.push(format!("rtdbscan_integration_{}.csv", std::process::id()));
    save_csv(&path, &points).unwrap();
    let reloaded = load_csv(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(points, reloaded);

    let params = DbscanParams::new(0.6, 5).unwrap();
    let a = ClassicDbscan::cluster(&points, params).unwrap();
    let b = ClassicDbscan::cluster(&reloaded, params).unwrap();
    assert_eq!(a, b);
}

#[test]
fn scaled_subsets_preserve_the_density_regime() {
    // The experiment harness scales dataset sizes down; the generator must
    // keep the same spatial extent (density per area drops proportionally),
    // which is why the harness scales minPts alongside.
    for dataset in PaperDataset::ALL {
        let small = generate(dataset, 2_000, 2);
        let large = generate(dataset, 20_000, 2);
        let extent = |pts: &[rtcore::geometry::Point3]| {
            let mut min = pts[0];
            let mut max = pts[0];
            for p in pts {
                min = min.min(*p);
                max = max.max(*p);
            }
            (max.x - min.x) * (max.y - min.y)
        };
        let ratio = extent(&large) / extent(&small).max(f32::MIN_POSITIVE);
        assert!(
            (0.3..6.0).contains(&ratio),
            "{}: spatial extent should not scale with n (ratio {ratio})",
            dataset.name()
        );
    }
}

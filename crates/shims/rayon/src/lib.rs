//! A minimal, API-compatible stand-in for the parts of `rayon` this
//! workspace uses, implemented on `std::thread::scope`.
//!
//! The build environment has no access to crates.io, so the real rayon
//! cannot be vendored.  This shim keeps the call sites untouched
//! (`into_par_iter().map(..).collect()`, `par_iter().for_each(..)`,
//! `filter(..).map(..).sum()`) and still executes them in parallel: the
//! index space of the base producer (a range or a slice) is split into one
//! contiguous chunk per available core and each chunk runs on its own
//! scoped thread.
//!
//! Only *indexed* producers are supported, which is all the workspace
//! needs; adapters (`map`, `filter`) compose by index delegation, so
//! ordered `collect` stays deterministic: chunk results are concatenated
//! in chunk order, which for 1:1 adapters reproduces the sequential order
//! exactly.

use std::ops::Range;

pub mod prelude {
    //! The rayon prelude: the traits call sites import with `use
    //! rayon::prelude::*`.
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `produce` for every index in `[0, n)`, split across scoped threads,
/// collecting per-chunk buffers in chunk order.
fn collect_chunks<I: ParallelIterator>(it: &I) -> Vec<Vec<I::Item>> {
    let n = it.base_len();
    if n == 0 {
        return Vec::new();
    }
    let threads = max_threads().min(n);
    if threads <= 1 {
        let mut local = Vec::with_capacity(n);
        for i in 0..n {
            it.produce(i, &mut |x| local.push(x));
        }
        return vec![local];
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || {
                    let mut local = Vec::with_capacity(hi - lo);
                    for i in lo..hi {
                        it.produce(i, &mut |x| local.push(x));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// The subset of rayon's `ParallelIterator` this workspace uses.
///
/// `base_len` / `produce` are the plumbing: every iterator is driven by the
/// index space of its base producer, and adapters forward `produce` calls,
/// emitting zero or more items per index into the sink.
pub trait ParallelIterator: Sized + Send + Sync {
    /// Item type produced by this iterator.
    type Item: Send;

    /// Length of the *base* index space (pre-`filter`).
    fn base_len(&self) -> usize;

    /// Produce the item(s) for base index `index` into `sink`.
    fn produce(&self, index: usize, sink: &mut dyn FnMut(Self::Item));

    /// Map every item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map { inner: self, f }
    }

    /// Keep only items satisfying `pred`.
    fn filter<P>(self, pred: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Send + Sync,
    {
        Filter { inner: self, pred }
    }

    /// Run `f` on every item in parallel (unordered).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let n = self.base_len();
        if n == 0 {
            return;
        }
        let threads = max_threads().min(n);
        if threads <= 1 {
            for i in 0..n {
                self.produce(i, &mut |x| f(x));
            }
            return;
        }
        let chunk = n.div_ceil(threads);
        let it = &self;
        let f = &f;
        std::thread::scope(|s| {
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || {
                    for i in lo..hi {
                        it.produce(i, &mut |x| f(x));
                    }
                });
            }
        });
    }

    /// Sum all items (chunk-local sums combined with a final sum).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        collect_chunks(&self)
            .into_iter()
            .map(|chunk| chunk.into_iter().sum::<S>())
            .sum()
    }

    /// Collect into a container; for `Vec` this preserves base-index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Conversion into a parallel iterator (rayon's entry-point trait).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on collections, yielding shared references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a shared reference).
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Collection types constructible from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Build the collection by draining `it`.
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self {
        collect_chunks(&it).into_iter().flatten().collect()
    }
}

// ---------------------------------------------------------------------------
// Base producers
// ---------------------------------------------------------------------------

/// Parallel iterator over an integer range.
pub struct RangeParIter<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangeParIter<$t>;
            fn into_par_iter(self) -> RangeParIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeParIter { start: self.start, len }
            }
        }
        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;
            fn base_len(&self) -> usize {
                self.len
            }
            fn produce(&self, index: usize, sink: &mut dyn FnMut($t)) {
                sink(self.start + index as $t);
            }
        }
    )*};
}

impl_range_par_iter!(usize, u32, u64, i32, i64);

/// Parallel iterator over a slice.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    fn base_len(&self) -> usize {
        self.slice.len()
    }
    fn produce(&self, index: usize, sink: &mut dyn FnMut(&'a T)) {
        sink(&self.slice[index]);
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

/// Parallel iterator over an owned `Vec` (items are cloned out by index; the
/// workspace only uses this with `Copy`-like data).
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send + Sync + Clone> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl<T: Send + Sync + Clone> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn base_len(&self) -> usize {
        self.items.len()
    }
    fn produce(&self, index: usize, sink: &mut dyn FnMut(T)) {
        sink(self.items[index].clone());
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// `map` adapter.
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Send + Sync,
{
    type Item = R;
    fn base_len(&self) -> usize {
        self.inner.base_len()
    }
    fn produce(&self, index: usize, sink: &mut dyn FnMut(R)) {
        self.inner.produce(index, &mut |x| sink((self.f)(x)));
    }
}

/// `filter` adapter.
pub struct Filter<I, P> {
    inner: I,
    pred: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Send + Sync,
{
    type Item = I::Item;
    fn base_len(&self) -> usize {
        self.inner.base_len()
    }
    fn produce(&self, index: usize, sink: &mut dyn FnMut(I::Item)) {
        self.inner.produce(index, &mut |x| {
            if (self.pred)(&x) {
                sink(x)
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn filter_map_sum() {
        let s: usize = (0..1000usize)
            .into_par_iter()
            .filter(|&i| i % 2 == 0)
            .map(|i| i)
            .sum();
        assert_eq!(s, (0..1000).filter(|i| i % 2 == 0).sum::<usize>());
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        (0..5000usize).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 5000);
    }

    #[test]
    fn par_iter_over_slices() {
        let pairs: Vec<(usize, usize)> = (0..100).map(|i| (i, i + 1)).collect();
        use std::sync::atomic::{AtomicUsize, Ordering};
        let total = AtomicUsize::new(0);
        pairs.par_iter().for_each(|&(a, b)| {
            total.fetch_add(a + b, Ordering::Relaxed);
        });
        assert_eq!(
            total.load(Ordering::Relaxed),
            (0..100).map(|i| 2 * i + 1).sum()
        );
    }

    #[test]
    fn empty_range_is_fine() {
        let v: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }
}

//! Micro-benchmarks of the disjoint-set structures used by the cluster
//! formation stage: sequential vs lock-free concurrent union-find.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rayon::prelude::*;
use rtdbscan::disjoint_set::{ConcurrentDisjointSet, SequentialDisjointSet};

/// Deterministic pseudo-random union pairs resembling DBSCAN's stage 2:
/// mostly local merges plus occasional long-range ones.
fn union_pairs(n: usize) -> Vec<(usize, usize)> {
    (0..n)
        .flat_map(|i| {
            let far = (i.wrapping_mul(2654435761)) % n;
            [(i, (i + 1) % n), (i, far)]
        })
        .collect()
}

fn bench_union_find(c: &mut Criterion) {
    let n = 200_000;
    let pairs = union_pairs(n);
    let mut group = c.benchmark_group("union_find_200k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(pairs.len() as u64));

    group.bench_with_input(BenchmarkId::from_parameter("sequential"), &n, |b, _| {
        b.iter(|| {
            let mut dsu = SequentialDisjointSet::new(n);
            for &(a, bb) in &pairs {
                dsu.union(a, bb);
            }
            std::hint::black_box(dsu.set_count())
        })
    });

    group.bench_with_input(
        BenchmarkId::from_parameter("concurrent_serial_driver"),
        &n,
        |b, _| {
            b.iter(|| {
                let dsu = ConcurrentDisjointSet::new(n);
                for &(a, bb) in &pairs {
                    dsu.union(a, bb);
                }
                std::hint::black_box(dsu.find(0))
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::from_parameter("concurrent_parallel_driver"),
        &n,
        |b, _| {
            b.iter(|| {
                let dsu = ConcurrentDisjointSet::new(n);
                pairs.par_iter().for_each(|&(a, bb)| {
                    dsu.union(a, bb);
                });
                std::hint::black_box(dsu.find(0))
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_union_find);
criterion_main!(benches);

//! `ClusterEngine`: one ergonomic builder façade over every clustering
//! algorithm and every neighbour-search backend in the workspace.
//!
//! Before the redesign each algorithm privately constructed its substrate;
//! the engine decouples the two axes — *which algorithm* ([`Algo`]) and
//! *which backend* ([`IndexKind`]) — validates the combination eagerly with
//! structured [`ConfigError`]s, and exposes three run modes:
//!
//! * [`ClusterEngine::run`] — one-shot clustering;
//! * [`ClusterEngine::session`] — reusable index plus recorded stage-1
//!   neighbour counts, for repeated `minPts` exploration (Section VI-B);
//! * streaming — `ClusterEngine::stream(window_policy)` via the
//!   `EngineStreamExt` extension trait in the `rtdbscan-stream` crate, which
//!   turns the same configuration into a `StreamingClusterer`.
//!
//! # Examples
//!
//! ```
//! use rtcore::geometry::Point3;
//! use rtdbscan::engine::{Algo, ClusterEngine, IndexKind};
//!
//! let points: Vec<Point3> = (0..40).map(|i| Point3::new_2d(0.2 * i as f32, 0.0)).collect();
//!
//! // RT-DBSCAN on the wide batched BVH4 backend (the defaults), eps = 0.5,
//! // minPts = 2.
//! let engine = ClusterEngine::builder()
//!     .algorithm(Algo::Rt)
//!     .index(IndexKind::WideBatched)
//!     .eps(0.5)
//!     .min_pts(2)
//!     .build()
//!     .unwrap();
//! let run = engine.run(&points).unwrap();
//! assert_eq!(run.clustering.num_clusters(), 1);
//!
//! // The same clustering through the grid backend of the CUDA-DClust+
//! // baseline — only the substrate changes.
//! let grid = ClusterEngine::builder()
//!     .algorithm(Algo::Rt)
//!     .index(IndexKind::UniformGrid)
//!     .eps(0.5)
//!     .min_pts(2)
//!     .build()
//!     .unwrap();
//! assert_eq!(grid.run(&points).unwrap().clustering.num_clusters(), 1);
//!
//! // Misconfigurations fail eagerly, naming the offending field.
//! let err = ClusterEngine::builder().eps(0.5).min_pts(2).batch_size(0).build();
//! assert_eq!(err.unwrap_err().field, "batch_size");
//! ```

use crate::classic::ClassicDbscan;
use crate::dclust::CudaDclustPlus;
use crate::fdbscan::Fdbscan;
use crate::labels::Clustering;
use crate::params::DbscanParams;
use crate::rt_dbscan::RtDbscan;
use crate::runner::{
    timed, DbscanAlgorithm, PhaseCounters, PhaseTimings, RunResult, SimulatedBreakdown,
};
use crate::stages;
use crate::GDbscan;
use rtcore::bvh::BuilderKind;
use rtcore::fault::CancelScope;
use rtcore::geometry::Point3;
use rtcore::hardware::{DeviceModel, ExecutionPath, WorkCounters};
use rtcore::index::{NeighborIndex, NeighborIndexBuilder, ShardingConfig};
use rtcore::pipeline::GeometryKind;
use rtcore::telemetry::PhaseKind;
use rtcore::Result;
use std::time::Duration;

pub use rtcore::fault::{CancelToken, Deadline, FaultPlan, MemoryBudget};
pub use rtcore::index::{IndexKind, QueryOrder, SimdPolicy, WideLayout};
pub use rtcore::telemetry::TelemetryConfig;

/// Which clustering algorithm the engine runs.  Every variant executes over
/// any [`IndexKind`]; the default backend is the algorithm's native
/// substrate (the one its original implementation privately owned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// RT-DBSCAN (the paper's algorithm): two batched stages over the RT
    /// substrate.  Native backend: [`IndexKind::WideBatched`] with
    /// compaction.
    Rt,
    /// FDBSCAN / ArborX baseline: the same two stages on the shader cores.
    /// Native backend: [`IndexKind::BinaryBvh`] with an LBVH builder.
    Fdbscan,
    /// FDBSCAN with the stage-1 early-exit optimisation (Fig 9).
    FdbscanEarlyExit,
    /// G-DBSCAN baseline: materialised ε-graph + BFS.  Native backend:
    /// [`IndexKind::BruteForce`] (the original has no spatial index).
    GDbscan,
    /// CUDA-DClust+ baseline: chain expansion over a grid.  Native backend:
    /// [`IndexKind::UniformGrid`].
    DclustPlus,
    /// The sequential reference implementation (the correctness oracle).
    /// Native backend: [`IndexKind::BinaryBvh`].
    Classic,
}

impl Algo {
    /// Every algorithm, reference last.
    pub const ALL: [Algo; 6] = [
        Algo::Rt,
        Algo::Fdbscan,
        Algo::FdbscanEarlyExit,
        Algo::GDbscan,
        Algo::DclustPlus,
        Algo::Classic,
    ];

    /// The algorithm's report name (matches the pre-redesign entry points).
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Rt => "RT-DBSCAN",
            Algo::Fdbscan => "FDBSCAN",
            Algo::FdbscanEarlyExit => "FDBSCAN-EarlyExit",
            Algo::GDbscan => "G-DBSCAN",
            Algo::DclustPlus => "CUDA-DClust+",
            Algo::Classic => "Classic-DBSCAN",
        }
    }

    /// The backend the algorithm's original implementation owned.
    fn native_index(&self) -> NeighborIndexBuilder {
        match self {
            Algo::Rt => RtDbscan::default().index_builder(),
            Algo::Fdbscan | Algo::FdbscanEarlyExit => Fdbscan::default().index_builder(),
            Algo::GDbscan => GDbscan::default().index_builder(),
            Algo::DclustPlus => CudaDclustPlus::default().index_builder(),
            Algo::Classic => ClassicDbscan.index_builder(),
        }
    }

    /// True for the algorithms expressed as the shared two-stage launch
    /// (the only ones a compacting index is meaningful for).
    fn two_stage(&self) -> bool {
        matches!(self, Algo::Rt | Algo::Fdbscan | Algo::FdbscanEarlyExit)
    }
}

/// A structured, eagerly-raised configuration error: the offending field,
/// the value it held, why it was rejected, and (for cross-field conflicts)
/// the field it clashed with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The builder field that was rejected.
    pub field: &'static str,
    /// The rejected value, rendered.
    pub value: String,
    /// Why the value was rejected.
    pub reason: String,
    /// The other field this one conflicts with, for cross-field rules.
    pub conflicts_with: Option<&'static str>,
}

impl ConfigError {
    fn invalid(
        field: &'static str,
        value: impl std::fmt::Display,
        reason: impl Into<String>,
    ) -> Self {
        ConfigError {
            field,
            value: value.to_string(),
            reason: reason.into(),
            conflicts_with: None,
        }
    }

    fn conflict(
        field: &'static str,
        value: impl std::fmt::Display,
        conflicts_with: &'static str,
        reason: impl Into<String>,
    ) -> Self {
        ConfigError {
            field,
            value: value.to_string(),
            reason: reason.into(),
            conflicts_with: Some(conflicts_with),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} = {}: {}", self.field, self.value, self.reason)?;
        if let Some(other) = self.conflicts_with {
            write!(f, " (conflicts with {other})")?;
        }
        Ok(())
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for rtcore::Error {
    fn from(e: ConfigError) -> Self {
        rtcore::Error::InvalidConfig(e.to_string())
    }
}

/// Typed builder for a [`ClusterEngine`].  Every knob that used to be
/// scattered across the algorithm structs — `min_parallel_launch`,
/// `batch_size`, the BVH builder, compaction, geometry, the device-memory
/// budget, `wide_visit_fraction` — lives here, cross-validated by
/// [`ClusterEngineBuilder::build`].
///
/// # Examples
///
/// ```
/// use rtdbscan::engine::{Algo, ClusterEngine, IndexKind};
/// use rtdbscan::DbscanParams;
///
/// let engine = ClusterEngine::builder()
///     .algorithm(Algo::Rt)
///     .index(IndexKind::WideBatched)
///     .params(DbscanParams::new(0.4, 8).unwrap())
///     .batch_size(256)
///     .wide_visit_fraction(0.3)
///     .build()
///     .unwrap();
/// assert_eq!(engine.algo().name(), "RT-DBSCAN");
///
/// // Cross-field validation names the offending field precisely.
/// let err = ClusterEngine::builder()
///     .algorithm(Algo::Classic)
///     .index(IndexKind::BruteForce)
///     .eps(0.4)
///     .min_pts(8)
///     .batch_size(64) // batching is a wide-backend concept
///     .build()
///     .unwrap_err();
/// assert_eq!(err.field, "batch_size");
/// assert_eq!(err.conflicts_with, Some("index"));
/// ```
#[derive(Debug, Clone)]
pub struct ClusterEngineBuilder {
    algo: Algo,
    eps: Option<f32>,
    min_pts: Option<usize>,
    index: Option<IndexKind>,
    bvh_builder: Option<BuilderKind>,
    max_leaf_size: Option<usize>,
    compaction: Option<bool>,
    geometry: Option<GeometryKind>,
    batch_size: Option<usize>,
    min_parallel_launch: Option<usize>,
    query_order: Option<QueryOrder>,
    wide_layout: Option<WideLayout>,
    simd: Option<SimdPolicy>,
    shard_size: Option<usize>,
    device_memory_bytes: Option<u64>,
    wide_visit_fraction: Option<f64>,
    telemetry: Option<TelemetryConfig>,
    memory_budget: Option<MemoryBudget>,
    fault: Option<FaultPlan>,
    device: DeviceModel,
}

impl Default for ClusterEngineBuilder {
    fn default() -> Self {
        ClusterEngineBuilder {
            algo: Algo::Rt,
            eps: None,
            min_pts: None,
            index: None,
            bvh_builder: None,
            max_leaf_size: None,
            compaction: None,
            geometry: None,
            batch_size: None,
            min_parallel_launch: None,
            query_order: None,
            wide_layout: None,
            simd: None,
            shard_size: None,
            device_memory_bytes: None,
            wide_visit_fraction: None,
            telemetry: None,
            memory_budget: None,
            fault: None,
            device: DeviceModel::default(),
        }
    }
}

impl ClusterEngineBuilder {
    /// Which algorithm to run (default [`Algo::Rt`]).
    pub fn algorithm(mut self, algo: Algo) -> Self {
        self.algo = algo;
        self
    }

    /// Which neighbour-index backend to run it over (default: the
    /// algorithm's native substrate).
    pub fn index(mut self, kind: IndexKind) -> Self {
        self.index = Some(kind);
        self
    }

    /// The DBSCAN search radius ε.
    pub fn eps(mut self, eps: f32) -> Self {
        self.eps = Some(eps);
        self
    }

    /// The DBSCAN density threshold (count of *other* points within ε).
    pub fn min_pts(mut self, min_pts: usize) -> Self {
        self.min_pts = Some(min_pts);
        self
    }

    /// Both DBSCAN parameters at once.
    pub fn params(mut self, params: DbscanParams) -> Self {
        self.eps = Some(params.eps);
        self.min_pts = Some(params.min_pts);
        self
    }

    /// BVH construction algorithm (BVH backends only).
    pub fn bvh_builder(mut self, builder: BuilderKind) -> Self {
        self.bvh_builder = Some(builder);
        self
    }

    /// Maximum primitives per BVH leaf (BVH backends only).
    pub fn max_leaf_size(mut self, max_leaf_size: usize) -> Self {
        self.max_leaf_size = Some(max_leaf_size);
        self
    }

    /// Device-side primitive compaction (BVH backends, two-stage algorithms
    /// only).
    pub fn compaction(mut self, compaction: bool) -> Self {
        self.compaction = Some(compaction);
        self
    }

    /// How ε-spheres are presented to the traversal (BVH backends only).
    pub fn geometry(mut self, geometry: GeometryKind) -> Self {
        self.geometry = Some(geometry);
        self
    }

    /// Rays per packet for the wide batched backend.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = Some(batch_size);
        self
    }

    /// Launches smaller than this run sequentially.
    pub fn min_parallel_launch(mut self, min_parallel_launch: usize) -> Self {
        self.min_parallel_launch = Some(min_parallel_launch);
        self
    }

    /// In what order batched launches feed queries into ray packets.
    /// [`QueryOrder::Morton`] sorts query origins along the Z-order curve
    /// before packets are cut and restores caller order on every output;
    /// per-query backends have no packets and simply ignore the knob.
    pub fn query_order(mut self, order: QueryOrder) -> Self {
        self.query_order = Some(order);
        self
    }

    /// Which node representation the wide-batched traversal reads
    /// ([`IndexKind::WideBatched`] only); see [`WideLayout`].
    pub fn wide_layout(mut self, layout: WideLayout) -> Self {
        self.wide_layout = Some(layout);
        self
    }

    /// SIMD policy for the wide-batched traversal kernels
    /// ([`IndexKind::WideBatched`] only), resolved once per index build;
    /// see [`SimdPolicy`].
    pub fn simd(mut self, simd: SimdPolicy) -> Self {
        self.simd = Some(simd);
        self
    }

    /// Build a **two-level scene**: the Morton-sorted primitives are cut
    /// into shards of at most `shard_size` points, each shard owns a
    /// bottom-level BVH4 scene built in parallel, and a top-level BVH
    /// (TLAS) routes every query to the shards it overlaps.  Stage 2 then
    /// stitches clusters across shard boundaries through the epoch
    /// union-find, producing the same clustering as the flat scene.
    /// Wide-batched backend only.
    ///
    /// ```
    /// use rtdbscan::prelude::*;
    /// use rtcore::geometry::Point3;
    ///
    /// let points: Vec<Point3> = (0..600)
    ///     .map(|i| Point3::new_2d((i % 40) as f32 * 0.3, (i / 40) as f32 * 0.3))
    ///     .collect();
    /// let sharded = ClusterEngine::builder()
    ///     .algorithm(Algo::Rt)
    ///     .index(IndexKind::WideBatched)
    ///     .shard_size(128)
    ///     .eps(0.5)
    ///     .min_pts(4)
    ///     .build()
    ///     .unwrap();
    /// let flat = ClusterEngine::builder()
    ///     .algorithm(Algo::Rt)
    ///     .index(IndexKind::WideBatched)
    ///     .eps(0.5)
    ///     .min_pts(4)
    ///     .build()
    ///     .unwrap();
    /// let a = sharded.run(&points).unwrap();
    /// let b = flat.run(&points).unwrap();
    /// assert_eq!(a.clustering.core, b.clustering.core);
    /// ```
    pub fn shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = Some(shard_size);
        self
    }

    /// Simulated device-memory budget for the memory-hungry baselines
    /// (G-DBSCAN's graph, CUDA-DClust+'s chain state).
    pub fn device_memory_bytes(mut self, bytes: u64) -> Self {
        self.device_memory_bytes = Some(bytes);
        self
    }

    /// Simulated-cost knob: what fraction of four binary node visits one
    /// wide (BVH4) visit costs, applied to both execution paths of the
    /// engine's device model.  Must lie in `(0, 1]`.
    pub fn wide_visit_fraction(mut self, fraction: f64) -> Self {
        self.wide_visit_fraction = Some(fraction);
        self
    }

    /// The full device cost model used by [`ClusterEngine::simulate`]
    /// (default: the paper's RTX 2060).
    pub fn cost_profile(mut self, device: DeviceModel) -> Self {
        self.device = device;
        self
    }

    /// Telemetry recording level for every index this engine builds
    /// (default [`TelemetryConfig::Off`], which adds no recorder and keeps
    /// the hot paths bit-identical to a telemetry-free build).
    /// [`TelemetryConfig::Spans`] records phase-scoped spans (build,
    /// collapse, stage launches) plus launch metrics;
    /// [`TelemetryConfig::Profile`] additionally accumulates the per-node
    /// visit heatmap, which requires a BVH backend.
    ///
    /// Inspect the recordings through a session, which keeps the index
    /// (and its recorder) alive after clustering:
    ///
    /// ```
    /// use rtdbscan::prelude::*;
    /// use rtcore::geometry::Point3;
    ///
    /// let points = vec![Point3::new_2d(0.0, 0.0); 32];
    /// let engine = ClusterEngine::builder()
    ///     .algorithm(Algo::Rt)
    ///     .index(IndexKind::WideBatched)
    ///     .eps(0.5)
    ///     .min_pts(4)
    ///     .telemetry(TelemetryConfig::Profile)
    ///     .build()
    ///     .unwrap();
    /// let session = engine.session(&points).unwrap(); // build + stage-1 spans
    /// let _result = session.cluster(4).unwrap();      // the stage-2 span
    /// let telemetry = session.index().telemetry().unwrap();
    /// assert!(telemetry.chrome_trace_json().contains("\"stage1_launch\""));
    /// let heatmap = session.index().heatmap().unwrap(); // Profile only
    /// assert!(heatmap.total_visits() > 0);
    /// ```
    pub fn telemetry(mut self, level: TelemetryConfig) -> Self {
        self.telemetry = Some(level);
        self
    }

    /// Hard ceiling on the bytes the built index may hold resident
    /// (default [`MemoryBudget::Unlimited`]).  An over-budget build
    /// degrades gracefully in a fixed order — drop the quantized node bake,
    /// then evict the coldest shard BLASes to rebuild-on-demand — and only
    /// refuses with [`rtcore::Error::OverBudget`] once fully degraded.
    pub fn memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.memory_budget = Some(budget);
        self
    }

    /// Deterministic fault-injection schedule threaded into every index
    /// this engine builds (default [`FaultPlan::Off`]).  Only a build
    /// compiled with the `fault-inject` feature ever arms a plan; without
    /// the feature every plan behaves as `Off` at zero cost.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Validate the whole configuration and produce the engine.
    ///
    /// Every rejection is a [`ConfigError`] naming the offending field; a
    /// cross-field clash also names the field it conflicts with.
    pub fn build(self) -> std::result::Result<ClusterEngine, ConfigError> {
        let eps = self
            .eps
            .ok_or_else(|| ConfigError::invalid("eps", "<unset>", "eps is required"))?;
        if !eps.is_finite() || eps <= 0.0 {
            return Err(ConfigError::invalid(
                "eps",
                eps,
                "must be positive and finite",
            ));
        }
        let min_pts = self
            .min_pts
            .ok_or_else(|| ConfigError::invalid("min_pts", "<unset>", "min_pts is required"))?;
        if min_pts == 0 {
            return Err(ConfigError::invalid("min_pts", 0, "must be at least 1"));
        }
        let params = DbscanParams { eps, min_pts };

        let mut index = self.algo.native_index();
        let kind = self.index.unwrap_or(index.kind);
        index.kind = kind;
        if !kind.is_bvh() {
            // BVH-only passes silently turn off when the user merely changed
            // the backend; explicitly requesting them below still errors.
            index.compaction = false;
        }
        if let Some(b) = self.bvh_builder {
            if !kind.is_bvh() {
                return Err(ConfigError::conflict(
                    "bvh_builder",
                    format!("{b:?}"),
                    "index",
                    format!("the {} backend builds no BVH", kind.name()),
                ));
            }
            index.bvh_builder = b;
        }
        if let Some(m) = self.max_leaf_size {
            if m == 0 {
                return Err(ConfigError::invalid(
                    "max_leaf_size",
                    0,
                    "must be at least 1",
                ));
            }
            if !kind.is_bvh() {
                return Err(ConfigError::conflict(
                    "max_leaf_size",
                    m,
                    "index",
                    format!("the {} backend builds no BVH", kind.name()),
                ));
            }
            index.max_leaf_size = m;
        }
        if let Some(c) = self.compaction {
            if c && !kind.is_bvh() {
                return Err(ConfigError::conflict(
                    "compaction",
                    c,
                    "index",
                    format!(
                        "compaction is a BVH device-builder pass; the {} backend cannot apply it",
                        kind.name()
                    ),
                ));
            }
            if c && !self.algo.two_stage() {
                return Err(ConfigError::conflict(
                    "compaction",
                    c,
                    "algorithm",
                    format!(
                        "{} tracks individual point ids and cannot run over merged primitives",
                        self.algo.name()
                    ),
                ));
            }
            index.compaction = c;
        }
        if let Some(g) = self.geometry {
            match g {
                GeometryKind::TriangleSpheres {
                    triangles_per_sphere,
                } => {
                    if triangles_per_sphere == 0 {
                        return Err(ConfigError::invalid(
                            "geometry",
                            "TriangleSpheres { triangles_per_sphere: 0 }",
                            "triangles_per_sphere must be at least 1",
                        ));
                    }
                    if !kind.is_bvh() {
                        return Err(ConfigError::conflict(
                            "geometry",
                            "TriangleSpheres { .. }",
                            "index",
                            format!("the {} backend traverses no BVH geometry", kind.name()),
                        ));
                    }
                }
                GeometryKind::CustomSpheres => {}
            }
            index.geometry = g;
        }
        if let Some(b) = self.batch_size {
            if b == 0 {
                return Err(ConfigError::invalid(
                    "batch_size",
                    0,
                    "a ray packet must hold at least one ray",
                ));
            }
            if kind != IndexKind::WideBatched {
                return Err(ConfigError::conflict(
                    "batch_size",
                    b,
                    "index",
                    format!(
                        "ray packets exist only on the wide batched backend, not {}",
                        kind.name()
                    ),
                ));
            }
            index.batch_size = b;
        }
        if let Some(m) = self.min_parallel_launch {
            index.min_parallel_launch = m;
        }
        if let Some(order) = self.query_order {
            // Valid for every backend: per-query backends have no packets
            // and answer in the caller's order regardless, which is
            // exactly what the knob's contract promises.
            index.query_order = order;
        }
        if let Some(layout) = self.wide_layout {
            if layout == WideLayout::Quantized && kind != IndexKind::WideBatched {
                return Err(ConfigError::conflict(
                    "wide_layout",
                    format!("{layout:?}"),
                    "index",
                    format!(
                        "the quantized node layout exists only on the wide batched backend, not {}",
                        kind.name()
                    ),
                ));
            }
            index.wide_layout = layout;
        }
        if let Some(simd) = self.simd {
            if simd != SimdPolicy::Auto && kind != IndexKind::WideBatched {
                return Err(ConfigError::conflict(
                    "simd",
                    format!("{simd:?}"),
                    "index",
                    format!(
                        "SIMD traversal kernels exist only on the wide batched backend, not {}",
                        kind.name()
                    ),
                ));
            }
            index.simd = simd;
        }
        if let Some(s) = self.shard_size {
            if s == 0 {
                return Err(ConfigError::invalid(
                    "shard_size",
                    0,
                    "a shard must hold at least one point",
                ));
            }
            if kind != IndexKind::WideBatched {
                return Err(ConfigError::conflict(
                    "shard_size",
                    s,
                    "index",
                    format!(
                        "two-level scenes shard the wide batched backend only, not {}",
                        kind.name()
                    ),
                ));
            }
            if s < index.max_leaf_size {
                return Err(ConfigError::conflict(
                    "shard_size",
                    s,
                    "max_leaf_size",
                    format!(
                        "a shard holds at least one full leaf ({} primitives)",
                        index.max_leaf_size
                    ),
                ));
            }
            index.sharding = Some(ShardingConfig::new(s));
        }
        if let Some(t) = self.telemetry {
            if t.heatmap_enabled() && !kind.is_bvh() {
                return Err(ConfigError::conflict(
                    "telemetry",
                    format!("{t:?}"),
                    "index",
                    format!(
                        "the node-visit heatmap profiles BVH traversal; the {} backend has \
                         no nodes to profile (use TelemetryConfig::Spans)",
                        kind.name()
                    ),
                ));
            }
            index.telemetry = t;
        }
        if let Some(budget) = self.memory_budget {
            if budget == MemoryBudget::Bytes(0) {
                return Err(ConfigError::invalid(
                    "memory_budget",
                    0,
                    "a zero-byte budget rejects every index; use at least 1 byte",
                ));
            }
            index.memory_budget = budget;
        }
        if let Some(plan) = self.fault {
            index.fault = plan;
        }
        if let Some(f) = self.wide_visit_fraction {
            if !f.is_finite() || f <= 0.0 || f > 1.0 {
                return Err(ConfigError::invalid(
                    "wide_visit_fraction",
                    f,
                    "must lie in (0, 1]",
                ));
            }
        }
        let mut device = self.device;
        if let Some(f) = self.wide_visit_fraction {
            device.rt.wide_visit_fraction = f;
            device.sm.wide_visit_fraction = f;
        }
        if let Some(bytes) = self.device_memory_bytes {
            if bytes == 0 {
                return Err(ConfigError::invalid(
                    "device_memory_bytes",
                    0,
                    "the simulated device needs a non-zero memory budget",
                ));
            }
            device.memory_bytes = bytes;
        }

        Ok(ClusterEngine {
            algo: self.algo,
            params,
            index,
            min_parallel_explicit: self.min_parallel_launch.is_some(),
            device,
        })
    }
}

/// The validated façade: one algorithm, one backend, one parameter set, one
/// cost model.  See the [module documentation](self) for the run modes.
#[derive(Debug, Clone)]
pub struct ClusterEngine {
    algo: Algo,
    params: DbscanParams,
    index: NeighborIndexBuilder,
    min_parallel_explicit: bool,
    device: DeviceModel,
}

impl ClusterEngine {
    /// Start configuring an engine.
    pub fn builder() -> ClusterEngineBuilder {
        ClusterEngineBuilder::default()
    }

    /// The configured algorithm.
    pub fn algo(&self) -> Algo {
        self.algo
    }

    /// The configured DBSCAN parameters.
    pub fn params(&self) -> DbscanParams {
        self.params
    }

    /// The configured backend kind.
    pub fn index_kind(&self) -> IndexKind {
        self.index.kind
    }

    /// The full backend configuration the engine builds indexes from.
    pub fn index_config(&self) -> NeighborIndexBuilder {
        self.index
    }

    /// The device cost model used by [`ClusterEngine::simulate`].
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Build the configured backend over `points` (the structure behind
    /// [`ClusterEngine::run`]; exposed so callers can drive the
    /// [`NeighborIndex`] trait object directly).
    pub fn build_index(&self, points: &[Point3]) -> Result<Box<dyn NeighborIndex>> {
        self.index.build(points, self.params.eps)
    }

    /// Price a finished run on the engine's device model.
    pub fn simulate(&self, run: &RunResult) -> SimulatedBreakdown {
        run.simulate_on(&self.device)
    }

    /// Launch-size validation that can only happen once the input is known.
    fn check_launch(&self, n: usize) -> std::result::Result<(), ConfigError> {
        if self.min_parallel_explicit && self.index.min_parallel_launch > n && n > 0 {
            return Err(ConfigError::invalid(
                "min_parallel_launch",
                self.index.min_parallel_launch,
                format!(
                    "exceeds the {n} input points: every launch would silently run sequentially"
                ),
            ));
        }
        Ok(())
    }

    /// Cluster `points` with the configured algorithm, backend and
    /// parameters.
    pub fn run(&self, points: &[Point3]) -> Result<RunResult> {
        self.run_with(points, self.params)
    }

    fn run_with(&self, points: &[Point3], params: DbscanParams) -> Result<RunResult> {
        params.validate()?;
        self.check_launch(points.len())?;
        let (index, build_time) = timed(|| self.index.build(points, params.eps));
        let index = index?;
        let mut result = self.dispatch(index.as_ref(), points, params)?;
        result.timings.build += build_time;
        Ok(result)
    }

    fn dispatch(
        &self,
        index: &dyn NeighborIndex,
        points: &[Point3],
        params: DbscanParams,
    ) -> Result<RunResult> {
        match self.algo {
            Algo::Rt => RtDbscan {
                compaction: self.index.compaction,
                builder: self.index.bvh_builder,
                geometry: self.index.geometry,
                min_parallel_launch: self.index.min_parallel_launch,
                ..RtDbscan::default()
            }
            .run_on(index, points, params),
            Algo::Fdbscan | Algo::FdbscanEarlyExit => Fdbscan {
                early_exit: self.algo == Algo::FdbscanEarlyExit,
                max_leaf_size: self.index.max_leaf_size,
            }
            .run_on(index, points, params),
            Algo::GDbscan => GDbscan {
                device_memory_bytes: self.device.memory_bytes,
            }
            .run_on(index, points, params),
            Algo::DclustPlus => CudaDclustPlus {
                device_memory_bytes: self.device.memory_bytes,
                ..CudaDclustPlus::default()
            }
            .run_on(index, points, params),
            Algo::Classic => ClassicDbscan.run_on(index, points, params),
        }
    }

    /// [`ClusterEngine::run`] under a deadline/cancellation scope.
    ///
    /// Both clustering stages poll `scope` at packet granularity; a trip
    /// surfaces as [`rtcore::Error::DeadlineExceeded`] carrying the work
    /// counted so far, and every partial stage result (counts, union-find
    /// merges, claims) is discarded — a cancelled run never returns a wrong
    /// clustering.  With [`CancelScope::none`] the counted work is
    /// bit-identical to [`ClusterEngine::run`]'s two-stage formulation.
    ///
    /// Like [`ClusterEngine::session`], this always runs the two-stage
    /// formulation over the engine's backend, whatever [`Algo`] was
    /// configured (stage boundaries are where cancellation composes);
    /// [`Algo::FdbscanEarlyExit`]'s stage-1 early exit is honoured.
    pub fn run_cancellable(&self, points: &[Point3], scope: &CancelScope) -> Result<RunResult> {
        self.params.validate()?;
        self.check_launch(points.len())?;
        let params = self.params;
        let (index, build_time) = timed(|| self.index.build(points, params.eps));
        let index = index?;
        let n = points.len();
        let path = if index.capabilities().rt_core {
            ExecutionPath::RtCore
        } else {
            ExecutionPath::ShaderCore
        };
        if n == 0 {
            return Ok(RunResult {
                clustering: Clustering::new(vec![], vec![]),
                timings: PhaseTimings {
                    build: build_time,
                    ..PhaseTimings::default()
                },
                counters: PhaseCounters::default(),
                path,
                device_bytes: 0,
            });
        }

        let early = (self.algo == Algo::FdbscanEarlyExit).then_some(params.min_pts);
        let (stage1, stage1_time) = timed(|| {
            let span = index.telemetry().map(|t| t.span(PhaseKind::Stage1Launch));
            let out = stages::count_all_neighbors_cancellable(
                index.as_ref(),
                points,
                params.eps,
                early,
                scope,
            );
            if let Some(mut s) = span {
                if let Ok((_, counters)) = &out {
                    s.add_counters(*counters);
                }
            }
            out
        });
        let (counts, stage1_counters) = stage1?;
        let core: Vec<bool> = counts
            .iter()
            .map(|&count| count as usize >= params.min_pts)
            .collect();

        let (stage2, stage2_time) = timed(|| {
            let span = index
                .telemetry()
                .map(|t| t.span(PhaseKind::Stage2UnionFind));
            let out =
                stages::form_clusters_cancellable(index.as_ref(), points, &core, params.eps, scope);
            if let Some(mut s) = span {
                if let Ok((_, counters)) = &out {
                    s.add_counters(*counters);
                }
            }
            out
        });
        let (labels, stage2_counters) = stage2?;

        let device_bytes = index.device_bytes()
            + std::mem::size_of_val(points) as u64
            + (n * std::mem::size_of::<usize>()) as u64 // union-find parents
            + 2 * n as u64; // core + claimed flags

        Ok(RunResult {
            clustering: Clustering::new(labels, core),
            timings: PhaseTimings {
                build: build_time,
                core_identification: stage1_time,
                cluster_formation: stage2_time,
            },
            counters: PhaseCounters {
                build: index.build_counters(),
                core_identification: stage1_counters,
                cluster_formation: stage2_counters,
            },
            path,
            device_bytes,
        })
    }

    /// Build the index and record every point's ε-neighbour count once,
    /// returning a [`ClusterSession`] that answers any `minPts` paying only
    /// for the cluster-formation stage.
    ///
    /// The session always uses the two-stage formulation (stage-1 counts
    /// are exactly what it caches), whatever [`Algo`] the engine was built
    /// with — the backend is still this engine's backend.
    pub fn session(&self, points: &[Point3]) -> Result<ClusterSession> {
        self.check_launch(points.len())?;
        let (index, build_time) = timed(|| self.index.build(points, self.params.eps));
        Ok(ClusterSession::create(
            index?,
            points,
            self.params.eps,
            build_time,
        ))
    }
}

impl DbscanAlgorithm for ClusterEngine {
    fn name(&self) -> &'static str {
        self.algo.name()
    }

    fn run(&self, points: &[Point3], params: DbscanParams) -> Result<RunResult> {
        self.run_with(points, params)
    }
}

/// A reusable clustering session: the index is built and stage 1 runs
/// exactly once; every [`ClusterSession::cluster`] call pays only for
/// stage 2.  This is the paper's Section VI-B parameter-exploration
/// workflow, generalised to every backend.
///
/// ```
/// use rtcore::geometry::Point3;
/// use rtdbscan::engine::{Algo, ClusterEngine, IndexKind};
///
/// let points: Vec<Point3> = (0..60)
///     .map(|i| Point3::new_2d(0.1 * (i % 30) as f32, (i / 30) as f32))
///     .collect();
/// let engine = ClusterEngine::builder()
///     .algorithm(Algo::Rt)
///     .index(IndexKind::WideBatched)
///     .eps(0.25)
///     .min_pts(1)
///     .build()
///     .unwrap();
/// let session = engine.session(&points).unwrap();
/// let strict = session.cluster(8).unwrap();
/// let loose = session.cluster(2).unwrap();
/// assert!(loose.clustering.core_count() >= strict.clustering.core_count());
/// ```
#[derive(Debug)]
pub struct ClusterSession {
    points: Vec<Point3>,
    eps: f32,
    index: Box<dyn NeighborIndex>,
    neighbor_counts: Vec<u64>,
    path: ExecutionPath,
    build_counters: WorkCounters,
    stage1_counters: WorkCounters,
    build_time: Duration,
    stage1_time: Duration,
}

impl ClusterSession {
    /// Record stage-1 neighbour counts over an already-built index.
    pub(crate) fn create(
        index: Box<dyn NeighborIndex>,
        points: &[Point3],
        eps: f32,
        build_time: Duration,
    ) -> Self {
        let path = if index.capabilities().rt_core {
            ExecutionPath::RtCore
        } else {
            ExecutionPath::ShaderCore
        };
        let ((neighbor_counts, stage1_counters), stage1_time) = timed(|| {
            let span = index.telemetry().map(|t| t.span(PhaseKind::Stage1Launch));
            let out = stages::count_all_neighbors(index.as_ref(), points, eps, None);
            if let Some(mut s) = span {
                s.add_counters(out.1);
            }
            out
        });
        ClusterSession {
            points: points.to_vec(),
            eps,
            build_counters: index.build_counters(),
            index,
            neighbor_counts,
            path,
            stage1_counters,
            build_time,
            stage1_time,
        }
    }

    /// The search radius this session was built for.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Number of points in the session.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the session holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The backend this session queries.
    pub fn index(&self) -> &dyn NeighborIndex {
        self.index.as_ref()
    }

    /// The recorded ε-neighbour count of every point (self excluded).
    pub fn neighbor_counts(&self) -> &[u64] {
        &self.neighbor_counts
    }

    /// Number of points that would be core points for a given `minPts`.
    pub fn core_count_for(&self, min_pts: usize) -> usize {
        self.neighbor_counts
            .iter()
            .filter(|&&c| c as usize >= min_pts)
            .count()
    }

    /// The `minPts` value at which a given fraction (0..1) of the points
    /// would qualify as core points — a parameter-selection helper for the
    /// exploration workflow.
    pub fn min_pts_for_core_fraction(&self, fraction: f64) -> usize {
        if self.neighbor_counts.is_empty() {
            return 1;
        }
        let mut counts: Vec<u64> = self.neighbor_counts.clone();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let idx = ((counts.len() as f64 * fraction.clamp(0.0, 1.0)).ceil() as usize)
            .clamp(1, counts.len());
        (counts[idx - 1] as usize).max(1)
    }

    /// Cluster with a given `minPts`, reusing the index and the recorded
    /// neighbour counts.  Only the cluster-formation stage executes; its
    /// cost is reported in the returned [`RunResult::counters`] (`build` and
    /// `core_identification` are zero because that work is shared across
    /// all calls on this session).
    pub fn cluster(&self, min_pts: usize) -> Result<RunResult> {
        DbscanParams::new(self.eps, min_pts)?;
        let n = self.points.len();
        if n == 0 {
            return Ok(RunResult {
                clustering: Clustering::new(vec![], vec![]),
                timings: PhaseTimings::default(),
                counters: PhaseCounters::default(),
                path: self.path,
                device_bytes: 0,
            });
        }
        let core: Vec<bool> = self
            .neighbor_counts
            .iter()
            .map(|&c| c as usize >= min_pts)
            .collect();
        let ((labels, stage2_counters), stage2_time) = timed(|| {
            let span = self
                .index
                .telemetry()
                .map(|t| t.span(PhaseKind::Stage2UnionFind));
            let out = stages::form_clusters(self.index.as_ref(), &self.points, &core, self.eps);
            if let Some(mut s) = span {
                s.add_counters(out.1);
            }
            out
        });

        Ok(RunResult {
            clustering: Clustering::new(labels, core),
            timings: PhaseTimings {
                build: Duration::ZERO,
                core_identification: Duration::ZERO,
                cluster_formation: stage2_time,
            },
            counters: PhaseCounters {
                build: WorkCounters::ZERO,
                core_identification: WorkCounters::ZERO,
                cluster_formation: stage2_counters,
            },
            path: self.path,
            device_bytes: self.index.device_bytes()
                + (n * std::mem::size_of::<Point3>()) as u64
                + 8 * n as u64,
        })
    }

    /// The one-off cost of building this session (index build plus the
    /// stage-1 launch): counters and wall-clock timings.
    pub fn setup_cost(&self) -> (PhaseCounters, PhaseTimings) {
        (
            PhaseCounters {
                build: self.build_counters,
                core_identification: self.stage1_counters,
                cluster_formation: WorkCounters::ZERO,
            },
            PhaseTimings {
                build: self.build_time,
                core_identification: self.stage1_time,
                cluster_formation: Duration::ZERO,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::same_clustering;

    fn blobs() -> Vec<Point3> {
        let mut pts = Vec::new();
        for c in 0..3 {
            let cx = c as f32 * 14.0;
            for i in 0..60 {
                let a = i as f32 * 0.37;
                let r = 0.8 * ((i % 9) as f32 / 9.0);
                pts.push(Point3::new_2d(cx + r * a.cos(), r * a.sin()));
            }
        }
        pts.push(Point3::new_2d(7.0, 30.0));
        pts
    }

    #[test]
    fn engine_defaults_match_the_direct_entry_points_exactly() {
        let pts = blobs();
        let params = DbscanParams::new(0.5, 5).unwrap();
        let direct = RtDbscan::default().run(&pts, params).unwrap();
        let engine = ClusterEngine::builder()
            .params(params)
            .build()
            .unwrap()
            .run(&pts)
            .unwrap();
        // Zero added cost: the façade produces bit-identical counters.
        assert_eq!(direct.counters.build, engine.counters.build);
        assert_eq!(
            direct.counters.core_identification,
            engine.counters.core_identification
        );
        assert_eq!(
            direct.counters.cluster_formation.rays,
            engine.counters.cluster_formation.rays
        );
        assert_eq!(
            direct.counters.cluster_formation.dist_comps,
            engine.counters.cluster_formation.dist_comps
        );
        assert_eq!(direct.clustering.core, engine.clustering.core);
        assert_eq!(direct.device_bytes, engine.device_bytes);
        assert_eq!(direct.path, engine.path);
    }

    #[test]
    fn every_algorithm_runs_on_every_backend() {
        let pts = blobs();
        let params = DbscanParams::new(0.5, 4).unwrap();
        let reference = ClassicDbscan::cluster(&pts, params).unwrap();
        for algo in Algo::ALL {
            for kind in IndexKind::ALL {
                let engine = ClusterEngine::builder()
                    .algorithm(algo)
                    .index(kind)
                    .params(params)
                    .build()
                    .unwrap();
                let run = engine
                    .run(&pts)
                    .unwrap_or_else(|e| panic!("{algo:?} on {kind:?}: {e}"));
                assert_eq!(
                    reference.core, run.clustering.core,
                    "{algo:?} on {kind:?} core flags"
                );
                assert!(
                    same_clustering(&reference, &run.clustering, &pts, params),
                    "{algo:?} on {kind:?} partition"
                );
            }
        }
    }

    #[test]
    fn builder_error_matrix_names_fields() {
        let b = || ClusterEngine::builder().eps(0.5).min_pts(3);
        let cases: Vec<(ConfigError, &'static str, Option<&'static str>)> = vec![
            (
                ClusterEngine::builder().min_pts(3).build().unwrap_err(),
                "eps",
                None,
            ),
            (b().eps(-1.0).build().unwrap_err(), "eps", None),
            (b().eps(f32::NAN).build().unwrap_err(), "eps", None),
            (
                ClusterEngine::builder().eps(0.5).build().unwrap_err(),
                "min_pts",
                None,
            ),
            (b().min_pts(0).build().unwrap_err(), "min_pts", None),
            (b().batch_size(0).build().unwrap_err(), "batch_size", None),
            (
                b().index(IndexKind::BinaryBvh)
                    .batch_size(64)
                    .build()
                    .unwrap_err(),
                "batch_size",
                Some("index"),
            ),
            (
                b().index(IndexKind::UniformGrid)
                    .compaction(true)
                    .build()
                    .unwrap_err(),
                "compaction",
                Some("index"),
            ),
            (
                b().algorithm(Algo::GDbscan)
                    .index(IndexKind::BinaryBvh)
                    .compaction(true)
                    .build()
                    .unwrap_err(),
                "compaction",
                Some("algorithm"),
            ),
            (
                b().index(IndexKind::BruteForce)
                    .geometry(GeometryKind::TriangleSpheres {
                        triangles_per_sphere: 12,
                    })
                    .build()
                    .unwrap_err(),
                "geometry",
                Some("index"),
            ),
            (
                b().index(IndexKind::UniformGrid)
                    .bvh_builder(BuilderKind::Lbvh)
                    .build()
                    .unwrap_err(),
                "bvh_builder",
                Some("index"),
            ),
            (
                b().max_leaf_size(0).build().unwrap_err(),
                "max_leaf_size",
                None,
            ),
            (
                b().index(IndexKind::BinaryBvh)
                    .wide_layout(WideLayout::Quantized)
                    .build()
                    .unwrap_err(),
                "wide_layout",
                Some("index"),
            ),
            (
                b().index(IndexKind::UniformGrid)
                    .simd(SimdPolicy::Avx2)
                    .build()
                    .unwrap_err(),
                "simd",
                Some("index"),
            ),
            (
                b().index(IndexKind::UniformGrid)
                    .telemetry(TelemetryConfig::Profile)
                    .build()
                    .unwrap_err(),
                "telemetry",
                Some("index"),
            ),
            (
                b().wide_visit_fraction(0.0).build().unwrap_err(),
                "wide_visit_fraction",
                None,
            ),
            (
                b().wide_visit_fraction(1.5).build().unwrap_err(),
                "wide_visit_fraction",
                None,
            ),
            (
                b().device_memory_bytes(0).build().unwrap_err(),
                "device_memory_bytes",
                None,
            ),
            (b().shard_size(0).build().unwrap_err(), "shard_size", None),
            (
                b().index(IndexKind::BinaryBvh)
                    .shard_size(256)
                    .build()
                    .unwrap_err(),
                "shard_size",
                Some("index"),
            ),
            (
                b().max_leaf_size(8).shard_size(4).build().unwrap_err(),
                "shard_size",
                Some("max_leaf_size"),
            ),
        ];
        for (err, field, conflicts_with) in cases {
            assert_eq!(err.field, field, "{err}");
            assert_eq!(err.conflicts_with, conflicts_with, "{err}");
            // The rendered message names the field too.
            assert!(err.to_string().contains(field), "{err}");
        }
    }

    #[test]
    fn oversized_min_parallel_launch_is_rejected_at_run_time() {
        let pts = blobs();
        let engine = ClusterEngine::builder()
            .eps(0.5)
            .min_pts(3)
            .min_parallel_launch(1_000_000)
            .build()
            .unwrap();
        match engine.run(&pts) {
            Err(rtcore::Error::InvalidConfig(msg)) => {
                assert!(msg.contains("min_parallel_launch"), "{msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // The default threshold is not an explicit request and stays valid
        // on small inputs.
        let default_engine = ClusterEngine::builder()
            .eps(0.5)
            .min_pts(3)
            .build()
            .unwrap();
        assert!(default_engine.run(&pts[..10]).is_ok());
    }

    #[test]
    fn session_matches_one_shot_runs() {
        let pts = blobs();
        let engine = ClusterEngine::builder()
            .eps(0.5)
            .min_pts(5)
            .build()
            .unwrap();
        let session = engine.session(&pts).unwrap();
        for min_pts in [2usize, 5, 40] {
            let params = DbscanParams::new(0.5, min_pts).unwrap();
            let one_shot = RtDbscan::default().run(&pts, params).unwrap().clustering;
            let reused = session.cluster(min_pts).unwrap().clustering;
            assert_eq!(one_shot.core, reused.core, "minPts={min_pts}");
            assert!(same_clustering(&one_shot, &reused, &pts, params));
        }
        let (setup, _) = session.setup_cost();
        assert!(setup.build.build_prims > 0);
        assert_eq!(setup.core_identification.rays as usize, pts.len());
    }

    #[test]
    fn engine_is_a_dbscan_algorithm_trait_object() {
        let pts = blobs();
        let params = DbscanParams::new(0.5, 4).unwrap();
        let engines: Vec<Box<dyn DbscanAlgorithm>> = Algo::ALL
            .iter()
            .map(|&algo| {
                Box::new(
                    ClusterEngine::builder()
                        .algorithm(algo)
                        .params(params)
                        .build()
                        .unwrap(),
                ) as Box<dyn DbscanAlgorithm>
            })
            .collect();
        let reference = ClassicDbscan::cluster(&pts, params).unwrap();
        for engine in &engines {
            let run = engine.run(&pts, params).unwrap();
            assert_eq!(reference.core, run.clustering.core, "{}", engine.name());
        }
    }

    #[test]
    fn coherence_knobs_preserve_the_clustering_and_reduce_wide_visits() {
        let pts = blobs();
        let params = DbscanParams::new(0.5, 5).unwrap();
        let plain = ClusterEngine::builder().params(params).build().unwrap();
        let tuned = ClusterEngine::builder()
            .params(params)
            .query_order(QueryOrder::Morton)
            .wide_layout(WideLayout::Quantized)
            .simd(SimdPolicy::Auto)
            .build()
            .unwrap();
        let a = plain.run(&pts).unwrap();
        let b = tuned.run(&pts).unwrap();
        assert_eq!(a.clustering.core, b.clustering.core);
        assert!(same_clustering(&a.clustering, &b.clustering, &pts, params));
        // Morton ordering is also accepted (as a no-op) on per-query
        // backends, so the knob can be swept uniformly.
        let grid = ClusterEngine::builder()
            .params(params)
            .index(IndexKind::UniformGrid)
            .query_order(QueryOrder::Morton)
            .build()
            .unwrap();
        assert_eq!(grid.run(&pts).unwrap().clustering.core, a.clustering.core);
    }

    #[test]
    fn sharded_scene_matches_flat_and_stitches_across_shards() {
        let pts = blobs();
        let params = DbscanParams::new(0.5, 5).unwrap();
        // Pin the LBVH builder: per-shard subtrees then align with the flat
        // tree's leaves, making candidate counters comparable exactly.
        let flat = ClusterEngine::builder()
            .params(params)
            .bvh_builder(BuilderKind::Lbvh)
            .build()
            .unwrap();
        let sharded = ClusterEngine::builder()
            .params(params)
            .bvh_builder(BuilderKind::Lbvh)
            .shard_size(48)
            .build()
            .unwrap();
        let f = flat.run(&pts).unwrap();
        let s = sharded.run(&pts).unwrap();
        assert_eq!(f.clustering.core, s.clustering.core);
        assert!(same_clustering(&f.clustering, &s.clustering, &pts, params));
        assert_eq!(
            f.counters.core_identification.dist_comps, s.counters.core_identification.dist_comps,
            "aligned shards must charge the flat path's candidate work"
        );
        assert_eq!(f.counters.total().tlas_node_visits, 0);
        assert!(s.counters.total().tlas_node_visits > 0);
        assert!(s.counters.total().blas_launches > 0);
    }

    #[test]
    fn sharded_session_records_two_level_phases() {
        let pts = blobs();
        let engine = ClusterEngine::builder()
            .eps(0.5)
            .min_pts(5)
            .shard_size(48)
            .telemetry(TelemetryConfig::Spans)
            .build()
            .unwrap();
        let session = engine.session(&pts).unwrap();
        let run = session.cluster(5).unwrap();
        assert!(run.counters.cluster_formation.tlas_node_visits > 0);
        let trace = session.index().telemetry().unwrap().chrome_trace_json();
        for phase in ["tlas_build", "tlas_visit", "shard_stitch"] {
            assert!(trace.contains(phase), "missing {phase} span in {trace}");
        }
    }

    #[test]
    fn wide_visit_fraction_flows_into_the_cost_model() {
        let pts = blobs();
        let params = DbscanParams::new(0.5, 5).unwrap();
        let cheap = ClusterEngine::builder()
            .params(params)
            .wide_visit_fraction(0.1)
            .build()
            .unwrap();
        let dear = ClusterEngine::builder()
            .params(params)
            .wide_visit_fraction(1.0)
            .build()
            .unwrap();
        let run = cheap.run(&pts).unwrap();
        let cheap_time = cheap.simulate(&run).total().as_secs_f64();
        let dear_time = dear.simulate(&run).total().as_secs_f64();
        assert!(
            cheap_time < dear_time,
            "cheap {cheap_time} vs dear {dear_time}"
        );
    }

    #[test]
    fn run_cancellable_with_no_scope_matches_run_exactly() {
        use rtcore::fault::CancelScope;
        let pts = blobs();
        let params = DbscanParams::new(0.5, 5).unwrap();
        // Flat and sharded backends: the none-scope cancellable path must be
        // bit-identical to the plain two-stage run (counters included — this
        // is the "deadline checks are free when unset" contract).
        for build in [
            ClusterEngine::builder().params(params),
            ClusterEngine::builder().params(params).shard_size(48),
        ] {
            let engine = build.build().unwrap();
            let plain = engine.run(&pts).unwrap();
            let cancellable = engine.run_cancellable(&pts, &CancelScope::none()).unwrap();
            assert_eq!(plain.clustering.core, cancellable.clustering.core);
            assert!(same_clustering(
                &plain.clustering,
                &cancellable.clustering,
                &pts,
                params
            ));
            assert_eq!(
                plain.counters.core_identification,
                cancellable.counters.core_identification
            );
            if engine.index_config().sharding.is_none() {
                // The sharded uncancellable path runs the stitched (two
                // launch) shape, which counts work differently; flat paths
                // must match bit for bit.
                assert_eq!(
                    plain.counters.cluster_formation,
                    cancellable.counters.cluster_formation
                );
            }
        }
    }

    #[test]
    fn run_cancellable_pre_cancelled_returns_structured_error() {
        use rtcore::fault::{CancelScope, CancelToken};
        let pts = blobs();
        let engine = ClusterEngine::builder()
            .eps(0.5)
            .min_pts(5)
            .build()
            .unwrap();
        let token = CancelToken::new();
        token.cancel();
        let scope = CancelScope::with_token(&token);
        match engine.run_cancellable(&pts, &scope) {
            Err(rtcore::Error::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_points_are_rejected_with_a_structured_error() {
        let params = DbscanParams::new(0.5, 3).unwrap();
        let engine = ClusterEngine::builder().params(params).build().unwrap();
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut pts = blobs();
            pts[7] = Point3::new_2d(bad, 0.0);
            match engine.run(&pts) {
                Err(rtcore::Error::InvalidPrimitive { index, .. }) => assert_eq!(index, 7),
                other => panic!("expected InvalidPrimitive for {bad}, got {other:?}"),
            }
            // The session path builds the same index and must reject too.
            assert!(matches!(
                engine.session(&pts),
                Err(rtcore::Error::InvalidPrimitive { .. })
            ));
        }
    }

    #[test]
    fn memory_budget_flows_into_the_index_and_rejects_zero() {
        use rtcore::fault::MemoryBudget;
        let err = ClusterEngine::builder()
            .eps(0.5)
            .min_pts(3)
            .memory_budget(MemoryBudget::Bytes(0))
            .build()
            .unwrap_err();
        assert_eq!(err.field, "memory_budget");

        // An impossible (1 byte) budget on a sharded engine degrades all the
        // way down and then refuses with the structured over-budget error.
        let pts = blobs();
        let engine = ClusterEngine::builder()
            .eps(0.5)
            .min_pts(5)
            .shard_size(48)
            .memory_budget(MemoryBudget::Bytes(1))
            .build()
            .unwrap();
        match engine.run(&pts) {
            Err(rtcore::Error::OverBudget { requested, budget }) => {
                assert_eq!(budget, 1);
                assert!(requested > 1);
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
        // A generous budget is a no-op: identical clustering to no budget.
        let roomy = ClusterEngine::builder()
            .eps(0.5)
            .min_pts(5)
            .shard_size(48)
            .memory_budget(MemoryBudget::Bytes(u64::MAX))
            .build()
            .unwrap();
        let params = DbscanParams::new(0.5, 5).unwrap();
        let unbudgeted = ClusterEngine::builder()
            .eps(0.5)
            .min_pts(5)
            .shard_size(48)
            .build()
            .unwrap();
        assert!(same_clustering(
            &roomy.run(&pts).unwrap().clustering,
            &unbudgeted.run(&pts).unwrap().clustering,
            &pts,
            params
        ));
    }
}

//! Cross-crate integration tests: every DBSCAN implementation must produce
//! equivalent clusterings on every dataset family, across a range of
//! parameters, including property-based random workloads.

use proptest::prelude::*;
use rtcore::geometry::Point3;
use rtdbscan::metrics::{adjusted_rand_index, same_clustering};
use rtdbscan::{
    ClassicDbscan, CudaDclustPlus, DbscanAlgorithm, DbscanParams, Fdbscan, GDbscan, RtDbscan,
};
use rtdbscan_datasets::{generate, PaperDataset};

fn all_algorithms() -> Vec<Box<dyn DbscanAlgorithm>> {
    vec![
        Box::new(RtDbscan::default()),
        Box::new(RtDbscan::without_compaction()),
        Box::new(RtDbscan::with_triangle_geometry(12)),
        Box::new(Fdbscan::default()),
        Box::new(Fdbscan::with_early_exit()),
        Box::new(GDbscan::default()),
        Box::new(CudaDclustPlus::default()),
    ]
}

/// Parameters that produce a non-trivial mix of clusters, border points and
/// noise for each synthetic dataset at the 3 000-point scale.
fn params_for(dataset: PaperDataset) -> DbscanParams {
    let (eps, min_pts) = match dataset {
        PaperDataset::RoadNetwork => (0.02, 4),
        PaperDataset::PortoTaxi => (0.5, 6),
        PaperDataset::Ngsim => (0.0005, 10),
        PaperDataset::Ionosphere3d => (0.6, 5),
    };
    DbscanParams::new(eps, min_pts).unwrap()
}

#[test]
fn every_algorithm_matches_the_reference_on_every_dataset() {
    for dataset in PaperDataset::ALL {
        let points = generate(dataset, 3_000, 11);
        let params = params_for(dataset);
        let reference = ClassicDbscan::cluster(&points, params).unwrap();
        for algo in all_algorithms() {
            let run = algo
                .run(&points, params)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", algo.name(), dataset.name()));
            assert_eq!(
                reference.core,
                run.clustering.core,
                "{} core points differ on {}",
                algo.name(),
                dataset.name()
            );
            assert!(
                same_clustering(&reference, &run.clustering, &points, params),
                "{} clustering differs on {}",
                algo.name(),
                dataset.name()
            );
            let ari = adjusted_rand_index(&reference, &run.clustering);
            assert!(
                ari > 0.99,
                "{} ARI {ari} too low on {}",
                algo.name(),
                dataset.name()
            );
        }
    }
}

#[test]
fn parameter_grid_agreement_between_rt_dbscan_and_fdbscan() {
    let points = generate(PaperDataset::RoadNetwork, 4_000, 3);
    for eps in [0.005f32, 0.02, 0.08] {
        for min_pts in [2usize, 5, 25] {
            let params = DbscanParams::new(eps, min_pts).unwrap();
            let rt = RtDbscan::default().run(&points, params).unwrap().clustering;
            let fd = Fdbscan::default().run(&points, params).unwrap().clustering;
            assert_eq!(rt.core, fd.core, "eps={eps} minPts={min_pts}");
            assert!(
                same_clustering(&rt, &fd, &points, params),
                "eps={eps} minPts={min_pts}"
            );
        }
    }
}

#[test]
fn clustering_results_are_deterministic_across_repeated_runs() {
    let points = generate(PaperDataset::PortoTaxi, 3_000, 5);
    let params = DbscanParams::new(0.4, 5).unwrap();
    let a = RtDbscan::default().run(&points, params).unwrap().clustering;
    for _ in 0..3 {
        let b = RtDbscan::default().run(&points, params).unwrap().clustering;
        assert_eq!(a.core, b.core);
        // Labels may be permuted between runs (parallel union order), but the
        // partition itself must be identical.
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }
}

#[test]
fn extreme_parameters_behave_identically_everywhere() {
    let points = generate(PaperDataset::Ionosphere3d, 1_500, 9);
    // eps so small nothing is a neighbour → all noise.
    let tiny = DbscanParams::new(1e-6, 2).unwrap();
    // eps so large everything is one cluster.
    let huge = DbscanParams::new(1e6, 2).unwrap();
    for algo in all_algorithms() {
        let all_noise = algo.run(&points, tiny).unwrap().clustering;
        assert_eq!(all_noise.num_clusters(), 0, "{}", algo.name());
        assert_eq!(all_noise.noise_count(), points.len(), "{}", algo.name());
        let one_cluster = algo.run(&points, huge).unwrap().clustering;
        assert_eq!(one_cluster.num_clusters(), 1, "{}", algo.name());
        assert_eq!(one_cluster.noise_count(), 0, "{}", algo.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: on arbitrary small random workloads (mixed blobs + noise +
    /// exact duplicates), RT-DBSCAN and FDBSCAN agree with the sequential
    /// reference.
    #[test]
    fn random_workloads_cluster_identically(
        blob_count in 1usize..4,
        points_per_blob in 5usize..40,
        noise in 0usize..30,
        duplicates in 0usize..20,
        eps in 0.3f32..2.0,
        min_pts in 2usize..8,
        seed in 0u64..1000,
    ) {
        let mut pts = Vec::new();
        // Blobs on a coarse grid so some merge and some do not, depending on eps.
        for b in 0..blob_count {
            let cx = (b % 2) as f32 * 6.0;
            let cy = (b / 2) as f32 * 6.0;
            for i in 0..points_per_blob {
                let angle = (i as f32 + seed as f32) * 0.7;
                let radius = 0.8 * ((i * 7 + b * 3) % 10) as f32 / 10.0;
                pts.push(Point3::new_2d(cx + radius * angle.cos(), cy + radius * angle.sin()));
            }
        }
        for i in 0..noise {
            pts.push(Point3::new_2d(
                20.0 + (i as f32 * 13.7 + seed as f32) % 40.0,
                -20.0 - (i as f32 * 7.3) % 40.0,
            ));
        }
        // Exact duplicates of existing points exercise the compaction path.
        for i in 0..duplicates.min(pts.len()) {
            pts.push(pts[i * 31 % pts.len()]);
        }

        let params = DbscanParams::new(eps, min_pts).unwrap();
        let reference = ClassicDbscan::cluster(&pts, params).unwrap();
        let rt = RtDbscan::default().run(&pts, params).unwrap().clustering;
        let fd = Fdbscan::default().run(&pts, params).unwrap().clustering;
        prop_assert_eq!(&reference.core, &rt.core);
        prop_assert_eq!(&reference.core, &fd.core);
        prop_assert!(same_clustering(&reference, &rt, &pts, params));
        prop_assert!(same_clustering(&reference, &fd, &pts, params));
    }
}

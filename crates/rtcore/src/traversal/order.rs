//! Coherence-aware query ordering for batched launches.
//!
//! Wide-batched traversal amortises node fetches across a ray packet: a
//! node reached by at least one packet member is fetched once and every
//! live member lane-tests against it.  That amortisation is only as good
//! as the packet's **spatial coherence** — a packet of scattered queries
//! reaches the union of all their subtrees, a packet of nearby queries
//! reaches nearly the same nodes.  Real RT hardware lives off exactly this
//! property, and datasets rarely arrive in a spatially coherent order.
//!
//! [`QueryOrder::Morton`] sorts query origins along the Z-order curve
//! (reusing the Morton machinery the LBVH builder linearises primitives
//! with) before packets are cut, and carries the permutation so every
//! output mode — sink callbacks, `batch_neighbor_counts`,
//! `batch_neighbors_csr` — is restored to caller order bit-identically.
//! Per-query traversal work is invariant under reordering (a query visits
//! the same nodes and candidates whichever packet it rides in), so
//! `rays`, `dist_comps` and `prim_tests` are unchanged; only the shared
//! `wide_node_visits` drop.

use crate::geometry::{morton_encode_3d, radix_sort_by_code, Aabb, MortonCode, Point3};

/// In what order a batched launch feeds queries into packets.
///
/// Reordering never changes *what* a launch answers: neighbour sets,
/// counts and CSR rows come back in caller order bit for bit, and the
/// per-candidate counters (`dist_comps`, `prim_tests`) are identical —
/// only the shared node-fetch work (`wide_node_visits`) shrinks.
/// Backends that answer queries one at a time (binary BVH, grid, brute
/// force) have no packets to make coherent and ignore the knob.
///
/// # Examples
///
/// ```
/// use rtcore::geometry::Point3;
/// use rtcore::hardware::WorkCounters;
/// use rtcore::index::{IndexKind, NeighborIndexBuilder, QueryOrder};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// // An incoherent interleaving of two far-apart clusters.
/// let points: Vec<Point3> = (0..256)
///     .map(|i| Point3::new_2d((i % 2) as f32 * 100.0 + (i / 2) as f32 * 0.1, 0.0))
///     .collect();
///
/// let run = |order: QueryOrder| {
///     let index = NeighborIndexBuilder {
///         query_order: order,
///         batch_size: 64,
///         ..NeighborIndexBuilder::new(IndexKind::WideBatched)
///     }
///     .build(&points, 0.5)
///     .unwrap();
///     let counts: Vec<AtomicU64> = (0..points.len()).map(|_| AtomicU64::new(0)).collect();
///     let mut c = WorkCounters::ZERO;
///     index.batch_neighbor_counts(&points, 0.5, true, None, &mut c, &counts);
///     let counts: Vec<u64> = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
///     (counts, c)
/// };
/// let (as_given, c_given) = run(QueryOrder::AsGiven);
/// let (morton, c_morton) = run(QueryOrder::Morton);
///
/// // Identical answers and per-candidate work, fewer shared node fetches.
/// assert_eq!(as_given, morton);
/// assert_eq!(c_given.dist_comps, c_morton.dist_comps);
/// assert!(c_morton.wide_node_visits < c_given.wide_node_visits);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueryOrder {
    /// Feed packets in the caller's order (the default).
    #[default]
    AsGiven,
    /// Morton-sort query origins before cutting packets, restoring caller
    /// order on every output.
    Morton,
}

impl QueryOrder {
    /// Report name used by benches and configuration dumps.
    pub fn name(&self) -> &'static str {
        match self {
            QueryOrder::AsGiven => "as-given",
            QueryOrder::Morton => "morton",
        }
    }
}

/// Grow-only working buffers for one reordered launch: the Morton codes,
/// the permutation and the permuted query array.  Pooled per worker by the
/// batched backends so the steady state stays allocation-light.
#[derive(Debug, Default)]
pub struct ReorderScratch {
    codes: Vec<MortonCode>,
    /// `perm[i]` is the caller index of the i-th query in sorted order.
    pub(crate) perm: Vec<u32>,
    /// The queries permuted into sorted order (`points[i] =
    /// queries[perm[i]]`).
    pub(crate) points: Vec<Point3>,
}

impl ReorderScratch {
    /// Sort `queries` along the Morton curve into this scratch's `perm` /
    /// `points` buffers.  Returns the number of sort scatter operations
    /// performed (charged as `misc_ops` by the callers — reordering is
    /// real launch-setup work, but it is not a candidate test).
    pub fn order_morton(&mut self, queries: &[Point3]) -> u64 {
        let bounds = Aabb::from_point_slice(queries);
        let extent = bounds.extent();
        self.codes.clear();
        self.codes.reserve(queries.len());
        for (i, &q) in queries.iter().enumerate() {
            self.codes.push(MortonCode {
                code: morton_encode_3d(q, bounds.min, extent),
                index: i as u32,
            });
        }
        let ops = radix_sort_by_code(&mut self.codes);
        self.perm.clear();
        self.points.clear();
        self.perm.reserve(queries.len());
        self.points.reserve(queries.len());
        for c in &self.codes {
            self.perm.push(c.index);
            self.points.push(queries[c.index as usize]);
        }
        ops + queries.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton_order_is_a_permutation_and_groups_neighbours() {
        let queries: Vec<Point3> = (0..100)
            .map(|i| Point3::new_2d((i % 2) as f32 * 50.0 + (i / 2) as f32 * 0.01, 0.0))
            .collect();
        let mut scratch = ReorderScratch::default();
        let ops = scratch.order_morton(&queries);
        assert!(ops > 0);
        let mut seen = vec![false; queries.len()];
        for (k, &orig) in scratch.perm.iter().enumerate() {
            assert!(!seen[orig as usize], "duplicate index {orig}");
            seen[orig as usize] = true;
            assert_eq!(scratch.points[k], queries[orig as usize]);
        }
        assert!(seen.iter().all(|&s| s));
        // The two interleaved clusters must come out contiguous: the first
        // half of the sorted order is entirely one cluster.
        let first_half_cluster: Vec<bool> =
            scratch.perm[..50].iter().map(|&i| i % 2 == 0).collect();
        assert!(
            first_half_cluster.iter().all(|&b| b) || first_half_cluster.iter().all(|&b| !b),
            "Morton order should separate the clusters"
        );
    }

    #[test]
    fn reorder_scratch_is_reusable_across_shapes() {
        let mut scratch = ReorderScratch::default();
        for n in [0usize, 1, 17, 5, 64] {
            let queries: Vec<Point3> = (0..n)
                .map(|i| Point3::new(i as f32 * 0.7, (i % 3) as f32, 0.0))
                .collect();
            scratch.order_morton(&queries);
            assert_eq!(scratch.perm.len(), n);
            assert_eq!(scratch.points.len(), n);
        }
        assert_eq!(QueryOrder::default(), QueryOrder::AsGiven);
        assert_eq!(QueryOrder::Morton.name(), "morton");
        assert_eq!(QueryOrder::AsGiven.name(), "as-given");
    }
}

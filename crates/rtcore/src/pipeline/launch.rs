//! Pipeline construction and (parallel) launch.

use super::program::{GeometryKind, ProgramFlow, RayProgram};
use crate::bvh::Bvh;
use crate::hardware::WorkCounters;
use crate::traversal::{traverse, Traversal};
use rayon::prelude::*;

/// Launch-time configuration, mirroring the switches the paper mentions in
/// Section IV (geometry type, AnyHit/ClosestHit disabled, etc.).
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// How spheres are presented to the hardware.
    pub geometry: GeometryKind,
    /// Minimum number of rays per rayon work item; launches smaller than this
    /// run sequentially to avoid parallel overhead on tiny scenes.
    pub min_parallel_launch: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            geometry: GeometryKind::CustomSpheres,
            min_parallel_launch: 256,
        }
    }
}

/// Result of a pipeline launch: one payload per launch index plus the work
/// counters accumulated across all rays (and the build work of the scene's
/// BVH, which is *not* included — the caller charges that separately so
/// build/traversal breakdowns stay separable, as in Section V-D).
#[derive(Debug, Clone)]
pub struct LaunchResult<P> {
    /// Final payload of every ray, indexed by launch index.
    pub payloads: Vec<P>,
    /// Traversal-side work performed by the launch.
    pub counters: WorkCounters,
}

/// A pipeline: a scene (built BVH) plus launch configuration.
#[derive(Debug, Clone, Copy)]
pub struct Pipeline<'a> {
    scene: &'a Bvh,
    config: PipelineConfig,
}

impl<'a> Pipeline<'a> {
    /// Create a pipeline over a built scene with default configuration.
    pub fn new(scene: &'a Bvh) -> Self {
        Pipeline {
            scene,
            config: PipelineConfig::default(),
        }
    }

    /// Create a pipeline with an explicit configuration.
    pub fn with_config(scene: &'a Bvh, config: PipelineConfig) -> Self {
        Pipeline { scene, config }
    }

    /// The scene this pipeline traverses.
    pub fn scene(&self) -> &Bvh {
        self.scene
    }

    /// The active configuration.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// Trace a single ray for `launch_index`, returning its payload and the
    /// work it performed.
    fn trace_one<P: RayProgram>(
        &self,
        program: &P,
        launch_index: usize,
    ) -> (P::Payload, WorkCounters) {
        let mut counters = WorkCounters::ZERO;
        counters.rays += 1;
        let (ray, mut payload) = program.ray_gen(launch_index);
        let geometry = self.config.geometry;
        let outcome = traverse(self.scene, &ray, &mut counters, |sphere, counters| {
            match geometry {
                GeometryKind::CustomSpheres => {
                    match program.intersection(launch_index, sphere, &ray, &mut payload, counters) {
                        ProgramFlow::Continue => Traversal::Continue,
                        ProgramFlow::TerminateRay => Traversal::Terminate,
                    }
                }
                GeometryKind::TriangleSpheres {
                    triangles_per_sphere,
                } => {
                    // The hardware tests every triangle of the tessellated
                    // sphere (cheap, done by the RT units) …
                    counters.prim_tests += triangles_per_sphere.saturating_sub(1) as u64;
                    // … and every *accepted* hit bounces back into the AnyHit
                    // program on the shader cores, which is where the 2–5×
                    // slowdown of Section VI-C comes from.
                    match program.intersection(launch_index, sphere, &ray, &mut payload, counters) {
                        ProgramFlow::Continue => {
                            counters.anyhit_invocations += 1;
                            match program.any_hit(
                                launch_index,
                                sphere,
                                &ray,
                                &mut payload,
                                counters,
                            ) {
                                ProgramFlow::Continue => Traversal::Continue,
                                ProgramFlow::TerminateRay => Traversal::Terminate,
                            }
                        }
                        ProgramFlow::TerminateRay => Traversal::Terminate,
                    }
                }
            }
        });
        if outcome.primitives_visited == 0 {
            program.miss(launch_index, &mut payload);
        }
        (payload, counters)
    }

    /// Launch `count` rays in parallel (one per launch index, like one CUDA
    /// thread per ray).  Falls back to a sequential launch below
    /// [`PipelineConfig::min_parallel_launch`].
    pub fn launch<P: RayProgram>(&self, count: usize, program: &P) -> LaunchResult<P::Payload> {
        if count < self.config.min_parallel_launch {
            return self.launch_sequential(count, program);
        }
        let results: Vec<(P::Payload, WorkCounters)> = (0..count)
            .into_par_iter()
            .map(|i| self.trace_one(program, i))
            .collect();
        let mut payloads = Vec::with_capacity(count);
        let mut counters = WorkCounters::ZERO;
        for (p, c) in results {
            payloads.push(p);
            counters += c;
        }
        LaunchResult { payloads, counters }
    }

    /// Launch `count` rays sequentially.  Produces bit-identical counters to
    /// [`Pipeline::launch`]; useful for tests and debugging.
    pub fn launch_sequential<P: RayProgram>(
        &self,
        count: usize,
        program: &P,
    ) -> LaunchResult<P::Payload> {
        let mut payloads = Vec::with_capacity(count);
        let mut counters = WorkCounters::ZERO;
        for i in 0..count {
            let (p, c) = self.trace_one(program, i);
            payloads.push(p);
            counters += c;
        }
        LaunchResult { payloads, counters }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bvh::{spheres_from_points, BvhBuilder, LbvhBuilder};
    use crate::geometry::{Point3, Ray, Sphere};

    /// Program that records whether each query point is inside any *other*
    /// point's sphere, terminating as soon as one is found.
    struct FindAny<'a> {
        points: &'a [Point3],
        radius: f32,
    }
    impl RayProgram for FindAny<'_> {
        type Payload = bool;
        fn ray_gen(&self, launch_index: usize) -> (Ray, bool) {
            (Ray::epsilon_ray(self.points[launch_index]), false)
        }
        fn intersection(
            &self,
            launch_index: usize,
            sphere: &Sphere,
            ray: &Ray,
            payload: &mut bool,
            counters: &mut WorkCounters,
        ) -> ProgramFlow {
            counters.dist_comps += 1;
            if sphere.point_index != launch_index as u32
                && sphere.center.distance_squared(ray.origin) <= self.radius * self.radius
            {
                *payload = true;
                return ProgramFlow::TerminateRay;
            }
            ProgramFlow::Continue
        }
        fn miss(&self, _launch_index: usize, payload: &mut bool) {
            *payload = false;
        }
    }

    fn cluster_points() -> Vec<Point3> {
        let mut pts: Vec<Point3> = (0..50)
            .map(|i| Point3::new(i as f32 * 0.1, 0.0, 0.0))
            .collect();
        pts.push(Point3::new(1000.0, 1000.0, 0.0)); // isolated point
        pts
    }

    #[test]
    fn terminate_ray_is_honoured() {
        let points = cluster_points();
        let bvh = LbvhBuilder::default()
            .build(spheres_from_points(&points, 0.25))
            .unwrap();
        let program = FindAny {
            points: &points,
            radius: 0.25,
        };
        let result = Pipeline::new(&bvh).launch(points.len(), &program);
        // All clustered points find a neighbour; the isolated one does not.
        assert!(result.payloads[..50].iter().all(|&b| b));
        assert!(!result.payloads[50]);
    }

    #[test]
    fn triangle_geometry_charges_anyhit() {
        let points = cluster_points();
        let bvh = LbvhBuilder::default()
            .build(spheres_from_points(&points, 0.25))
            .unwrap();
        struct CountAll<'a> {
            points: &'a [Point3],
            radius: f32,
        }
        impl RayProgram for CountAll<'_> {
            type Payload = u32;
            fn ray_gen(&self, launch_index: usize) -> (Ray, u32) {
                (Ray::epsilon_ray(self.points[launch_index]), 0)
            }
            fn intersection(
                &self,
                _launch_index: usize,
                sphere: &Sphere,
                ray: &Ray,
                payload: &mut u32,
                counters: &mut WorkCounters,
            ) -> ProgramFlow {
                counters.dist_comps += 1;
                if sphere.center.distance_squared(ray.origin) <= self.radius * self.radius {
                    *payload += 1;
                }
                ProgramFlow::Continue
            }
        }
        let program = CountAll {
            points: &points,
            radius: 0.25,
        };
        let sphere_cfg = PipelineConfig::default();
        let tri_cfg = PipelineConfig {
            geometry: GeometryKind::TriangleSpheres {
                triangles_per_sphere: 20,
            },
            ..PipelineConfig::default()
        };
        let sphere_run = Pipeline::with_config(&bvh, sphere_cfg).launch(points.len(), &program);
        let tri_run = Pipeline::with_config(&bvh, tri_cfg).launch(points.len(), &program);
        // Same results …
        assert_eq!(sphere_run.payloads, tri_run.payloads);
        // … but the triangle path performs strictly more primitive tests and
        // invokes AnyHit, while the sphere path never does.
        assert_eq!(sphere_run.counters.anyhit_invocations, 0);
        assert!(tri_run.counters.anyhit_invocations > 0);
        assert!(tri_run.counters.prim_tests > sphere_run.counters.prim_tests);
    }

    #[test]
    fn miss_program_runs_for_rays_outside_the_scene() {
        let points = vec![Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 0.0, 0.0)];
        let bvh = LbvhBuilder::default()
            .build(spheres_from_points(&points, 0.1))
            .unwrap();
        struct MissMarker;
        impl RayProgram for MissMarker {
            type Payload = i32;
            fn ray_gen(&self, _launch_index: usize) -> (Ray, i32) {
                (Ray::epsilon_ray(Point3::new(500.0, 500.0, 0.0)), 0)
            }
            fn intersection(
                &self,
                _launch_index: usize,
                _sphere: &Sphere,
                _ray: &Ray,
                payload: &mut i32,
                _counters: &mut WorkCounters,
            ) -> ProgramFlow {
                *payload = 1;
                ProgramFlow::Continue
            }
            fn miss(&self, _launch_index: usize, payload: &mut i32) {
                *payload = -1;
            }
        }
        let result = Pipeline::new(&bvh).launch_sequential(3, &MissMarker);
        assert_eq!(result.payloads, vec![-1, -1, -1]);
    }

    #[test]
    fn zero_ray_launch_is_empty() {
        let points = vec![Point3::ORIGIN];
        let bvh = LbvhBuilder::default()
            .build(spheres_from_points(&points, 1.0))
            .unwrap();
        let program = FindAny {
            points: &points,
            radius: 1.0,
        };
        let result = Pipeline::new(&bvh).launch(0, &program);
        assert!(result.payloads.is_empty());
        assert_eq!(result.counters, WorkCounters::ZERO);
    }
}

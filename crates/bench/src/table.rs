//! Plain-text experiment tables.

use std::fmt;

/// One regenerated table or figure: a title, a row label header, column
/// headers and numeric rows.  Figures in the paper are line plots; here they
/// are printed as the table of series values the plot would be drawn from.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    /// Which paper artefact this regenerates ("Figure 5a", "Table I", …).
    pub title: String,
    /// Header of the row-label column ("eps", "dataset size", …).
    pub row_header: String,
    /// One header per numeric column.
    pub columns: Vec<String>,
    /// Rows: label plus one value per column.  `None` marks a failed run
    /// (e.g. simulated out-of-memory), printed as "OOM".
    pub rows: Vec<(String, Vec<Option<f64>>)>,
    /// Free-text notes printed under the table (observations the paper makes
    /// about this experiment).
    pub notes: Vec<String>,
}

impl ExperimentTable {
    /// Create an empty table.
    pub fn new(
        title: impl Into<String>,
        row_header: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        ExperimentTable {
            title: title.into(),
            row_header: row_header.into(),
            columns,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the number of values does not match the number of columns.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<Option<f64>>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push((label.into(), values));
    }

    /// Append a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Value at (row, column), if the run succeeded.
    pub fn value(&self, row: usize, col: usize) -> Option<f64> {
        self.rows
            .get(row)
            .and_then(|r| r.1.get(col).copied().flatten())
    }

    /// Values of one column across all rows (failed cells skipped).
    pub fn column_values(&self, col: usize) -> Vec<f64> {
        self.rows
            .iter()
            .filter_map(|r| r.1.get(col).copied().flatten())
            .collect()
    }

    /// Index of a column by header name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Render as a GitHub-flavoured markdown table (used for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |", self.row_header));
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
        out.push_str(&format!("|{}|", "---|".repeat(self.columns.len() + 1)));
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("| {label} |"));
            for v in values {
                match v {
                    Some(v) => out.push_str(&format!(" {} |", format_value(*v))),
                    None => out.push_str(" OOM |"),
                }
            }
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("\n*{note}*\n"));
        }
        out
    }
}

/// Compact numeric formatting: scientific-ish for very small / large values,
/// fixed precision otherwise.
fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else if v.abs() >= 0.001 {
        format!("{v:.5}")
    } else {
        format!("{v:.3e}")
    }
}

impl fmt::Display for ExperimentTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([self.row_header.len()])
            .max()
            .unwrap_or(8)
            + 2;
        let col_width = self
            .columns
            .iter()
            .map(|c| c.len())
            .max()
            .unwrap_or(10)
            .max(12)
            + 2;
        write!(f, "{:<label_width$}", self.row_header)?;
        for c in &self.columns {
            write!(f, "{c:>col_width$}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:<label_width$}")?;
            for v in values {
                match v {
                    Some(v) => write!(f, "{:>col_width$}", format_value(*v))?,
                    None => write!(f, "{:>col_width$}", "OOM")?,
                }
            }
            writeln!(f)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentTable {
        let mut t = ExperimentTable::new(
            "Figure X",
            "eps",
            vec!["RT-DBSCAN".into(), "FDBSCAN".into()],
        );
        t.push_row("0.1", vec![Some(1.5), Some(3.0)]);
        t.push_row("0.2", vec![Some(0.0004), None]);
        t.push_note("RT-DBSCAN wins everywhere");
        t
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.value(0, 0), Some(1.5));
        assert_eq!(t.value(1, 1), None);
        assert_eq!(t.column_values(0), vec![1.5, 0.0004]);
        assert_eq!(t.column_index("FDBSCAN"), Some(1));
        assert_eq!(t.column_index("bogus"), None);
    }

    #[test]
    fn display_contains_everything() {
        let s = sample().to_string();
        assert!(s.contains("Figure X"));
        assert!(s.contains("RT-DBSCAN"));
        assert!(s.contains("OOM"));
        assert!(s.contains("note:"));
        assert!(s.contains("1.500"));
    }

    #[test]
    fn markdown_is_well_formed() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### Figure X"));
        assert!(md.contains("| eps | RT-DBSCAN | FDBSCAN |"));
        assert!(md.contains("| 0.2 |"));
        assert!(md.contains("OOM"));
        assert!(md.lines().filter(|l| l.starts_with('|')).count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = sample();
        t.push_row("bad", vec![Some(1.0)]);
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(1234.0), "1234");
        assert_eq!(format_value(1.23456), "1.235");
        assert_eq!(format_value(0.01234), "0.01234");
        assert!(format_value(0.0000123).contains('e'));
    }
}

//! Offline stand-in for the parts of `loom` this workspace uses: a
//! model checker that runs a closure under **every schedule** of its
//! threads' visible operations (up to a configurable preemption bound) and
//! lets assertions inside the closure veto bad interleavings.
//!
//! # What the model explores — and what it does not
//!
//! Execution is fully serialised: exactly one model thread runs at a time,
//! and control is handed over only at *yield points* — every operation on
//! a [`sync::atomic`] type, every [`sync::Mutex`] lock/unlock, spawn and
//! join.  The scheduler drives a depth-first search over the tree of
//! "which runnable thread performs the next operation" choices, re-running
//! the closure once per schedule until the tree is exhausted.  Atomic
//! operations execute with sequentially consistent semantics regardless of
//! the `Ordering` argument, so the checker finds **interleaving** bugs
//! (lost updates, torn read-modify-write sequences, broken CAS retry
//! loops, deadlocks) but does not model weak-memory reordering.  That is
//! the honest contract for this repo's lock-free code: the orderings in
//! the real code are documented per-site by the `atomic-ordering` lint,
//! while the algorithms' interleaving correctness is checked here.
//!
//! # Bounding
//!
//! A full interleaving tree is exponential in the number of operations.
//! [`Builder::preemption_bound`] applies the CHESS result: schedules with
//! at most *p* involuntary context switches (the running thread is
//! preempted while still runnable) find the overwhelming majority of real
//! concurrency bugs at small *p*.  Forced switches — a thread blocking or
//! finishing — are free, so every thread always runs to completion.  With
//! `preemption_bound: None` the exploration is exhaustive.
//!
//! # Example
//!
//! ```
//! use loom::sync::atomic::{AtomicU64, Ordering};
//! use loom::sync::Arc;
//!
//! let iterations = loom::model(|| {
//!     let c = Arc::new(AtomicU64::new(0));
//!     let c2 = Arc::clone(&c);
//!     let t = loom::thread::spawn(move || {
//!         c2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     c.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     // fetch_add is atomic: no interleaving can lose an update.
//!     assert_eq!(c.load(Ordering::Relaxed), 2);
//! });
//! assert!(iterations >= 2, "both orders of the two adds were explored");
//! ```

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar, Mutex as StdMutex};

// ---------------------------------------------------------------------------
// Execution state: one schedule of one model run
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting for the thread with this id to finish.
    BlockedJoin(usize),
    /// Waiting for the mutex with this token to unlock.
    BlockedMutex(usize),
    Finished,
}

#[derive(Debug, Clone, Copy)]
struct Branch {
    /// Number of runnable alternatives at this choice point.
    options: usize,
    /// Which alternative this run took.
    selected: usize,
}

#[derive(Debug)]
struct ExecState {
    statuses: Vec<Status>,
    /// The one thread allowed to run (usize::MAX once everything finished).
    current: usize,
    /// Selections to replay, from the previous runs' DFS backtrack.
    prefix: Vec<usize>,
    /// Choice points recorded by this run (forced moves are not recorded).
    branches: Vec<Branch>,
    preemptions: usize,
    preemption_bound: Option<usize>,
    branch_cap: usize,
    /// Set when any model thread panics, so every other thread unblocks
    /// and unwinds instead of waiting forever on the token.
    panicked: bool,
}

struct Execution {
    state: StdMutex<ExecState>,
    cond: Condvar,
    /// OS join handles of spawned model threads; the harness drains these
    /// at the end of each iteration so no thread leaks into the next one.
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
    /// The first real panic payload raised by any model thread; the
    /// harness re-raises it after reaping every thread so the original
    /// assertion message survives the teardown.
    first_panic: StdMutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Execution {
    fn new(prefix: Vec<usize>, preemption_bound: Option<usize>, branch_cap: usize) -> Execution {
        Execution {
            state: StdMutex::new(ExecState {
                statuses: vec![Status::Runnable],
                current: 0,
                prefix,
                branches: Vec::new(),
                preemptions: 0,
                preemption_bound,
                branch_cap,
                panicked: false,
            }),
            cond: Condvar::new(),
            os_handles: StdMutex::new(Vec::new()),
            first_panic: StdMutex::new(None),
        }
    }
}

thread_local! {
    /// (execution, model thread id) of the model thread running on this OS
    /// thread; `None` outside a model, where every shim type falls back to
    /// plain std behaviour.
    static CONTEXT: RefCell<Option<(StdArc<Execution>, usize)>> = const { RefCell::new(None) };
}

fn current_context() -> Option<(StdArc<Execution>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// Panic payload used to tear down sibling threads after a model thread
/// panicked; the harness recognises and swallows it so only the original
/// panic propagates.
struct Aborted;

fn lock_state(exec: &Execution) -> std::sync::MutexGuard<'_, ExecState> {
    // The shim never continues after a poisoning panic inside the guard
    // scope (every path holding the lock is panic-free or aborts the whole
    // model), so recovering the inner state is sound.
    exec.state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Core scheduling step.  Called with `still_runnable = true` by a thread
/// about to perform a visible operation (a voluntary yield point), and with
/// `still_runnable = false` by a thread that just blocked or finished.
/// Returns once the calling thread holds the token again (trivially, for a
/// finishing thread that hands it elsewhere).
fn schedule(exec: &StdArc<Execution>, me: usize, still_runnable: bool) {
    let mut st = lock_state(exec);
    if st.panicked {
        drop(st);
        std::panic::panic_any(Aborted);
    }
    debug_assert_eq!(st.current, me, "yield from a thread not holding the token");

    let others: Vec<usize> = (0..st.statuses.len())
        .filter(|&t| t != me && st.statuses[t] == Status::Runnable)
        .collect();
    let options: Vec<usize> = if still_runnable {
        let budget_left = st
            .preemption_bound
            .is_none_or(|bound| st.preemptions < bound);
        if budget_left {
            // The running thread continues as option 0 so that the DFS
            // explores the preemption-free schedule first.
            std::iter::once(me).chain(others.iter().copied()).collect()
        } else {
            vec![me]
        }
    } else {
        others
    };

    if options.is_empty() {
        // Nothing can run.  Fine if every other thread already finished
        // (the model is over); a deadlock otherwise.
        let stuck: Vec<usize> = (0..st.statuses.len())
            .filter(|&t| t != me && !matches!(st.statuses[t], Status::Finished))
            .collect();
        if stuck.is_empty() {
            st.current = usize::MAX;
            drop(st);
            exec.cond.notify_all();
            return;
        }
        st.panicked = true;
        drop(st);
        exec.cond.notify_all();
        panic!("loom: deadlock — threads {stuck:?} are blocked and nothing is runnable");
    }

    let selected = if options.len() == 1 {
        0
    } else {
        let k = st.branches.len();
        let sel = if k < st.prefix.len() { st.prefix[k] } else { 0 };
        assert!(sel < options.len(), "loom: stale replay prefix");
        st.branches.push(Branch {
            options: options.len(),
            selected: sel,
        });
        if st.branches.len() > st.branch_cap {
            let cap = st.branch_cap;
            st.panicked = true;
            drop(st);
            exec.cond.notify_all();
            panic!(
                "loom: schedule exceeded {cap} choice points — bound the model \
                 (fewer operations per thread, or a lower preemption bound)"
            );
        }
        sel
    };
    let chosen = options[selected];
    if still_runnable && chosen != me {
        st.preemptions += 1;
    }
    st.current = chosen;
    // Decide whether to wait BEFORE releasing the lock: once another
    // thread holds the token it may flip our status (finish a join target,
    // unlock a mutex), and consulting `statuses` unlocked would race.
    let me_finished = st.statuses[me] == Status::Finished;
    drop(st);
    exec.cond.notify_all();

    let must_wait = if still_runnable {
        chosen != me
    } else {
        // Blocked threads wait to be woken and rescheduled; a finished
        // thread returns for good.
        !me_finished
    };
    if must_wait {
        wait_for_token(exec, me);
    }
}

/// Block until this thread holds the token again (or the model aborted).
fn wait_for_token(exec: &StdArc<Execution>, me: usize) {
    let mut st = lock_state(exec);
    while st.current != me && !st.panicked {
        st = exec
            .cond
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    if st.panicked {
        drop(st);
        std::panic::panic_any(Aborted);
    }
}

/// A voluntary yield point: give the scheduler a chance to preempt before
/// the caller performs its next visible operation.
fn yield_point() {
    if let Some((exec, me)) = current_context() {
        schedule(&exec, me, true);
    }
}

fn finish_thread(exec: &StdArc<Execution>, me: usize) {
    {
        let mut st = lock_state(exec);
        st.statuses[me] = Status::Finished;
        for t in 0..st.statuses.len() {
            if st.statuses[t] == Status::BlockedJoin(me) {
                st.statuses[t] = Status::Runnable;
            }
        }
    }
    schedule(exec, me, false);
}

/// Record a real panic from a model thread: keep the first payload so the
/// harness can re-raise it with the original message, flag the model as
/// panicked, and wake every parked thread so they tear down via [`Aborted`].
fn mark_panicked(exec: &StdArc<Execution>, payload: Box<dyn std::any::Any + Send>) {
    {
        let mut slot = exec
            .first_panic
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    let mut st = lock_state(exec);
    st.panicked = true;
    drop(st);
    exec.cond.notify_all();
}

// ---------------------------------------------------------------------------
// Model harness
// ---------------------------------------------------------------------------

/// Exploration knobs.  `Builder::default()` bounds preemptions at 3 —
/// deep enough for every classic lost-update/CAS-retry bug shape — and
/// caps runaway models instead of hanging the test suite.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Max involuntary context switches per schedule; `None` = exhaustive.
    pub preemption_bound: Option<usize>,
    /// Abort if the DFS visits more schedules than this.
    pub max_iterations: usize,
    /// Abort any single schedule with more choice points than this.
    pub max_branches: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: Some(3),
            max_iterations: 5_000_000,
            max_branches: 50_000,
        }
    }
}

impl Builder {
    /// A builder with loom's field name for the preemption bound.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Run `f` once per schedule until the (bounded) interleaving tree is
    /// exhausted; panics inside `f` abort the exploration and propagate,
    /// with the failing schedule printed to stderr.  Returns the number of
    /// schedules explored.
    pub fn check<F>(&self, f: F) -> usize
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = StdArc::new(f);
        let mut prefix: Vec<usize> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            assert!(
                iterations <= self.max_iterations,
                "loom: exceeded {} schedules — tighten the preemption bound or shrink the model",
                self.max_iterations
            );
            let exec = StdArc::new(Execution::new(
                prefix.clone(),
                self.preemption_bound,
                self.max_branches,
            ));

            // Thread 0 (the model's "main" thread) runs on a fresh OS
            // thread so the caller's thread-local context stays untouched.
            let exec0 = StdArc::clone(&exec);
            let body = StdArc::clone(&f);
            let main = std::thread::spawn(move || {
                CONTEXT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&exec0), 0)));
                let result = catch_unwind(AssertUnwindSafe(|| body()));
                match result {
                    Ok(()) => finish_thread(&exec0, 0),
                    // Torn down because another thread raised the real
                    // panic; that payload is already in `first_panic`.
                    Err(payload) if payload.is::<Aborted>() => {}
                    Err(payload) => mark_panicked(&exec0, payload),
                }
            });
            let _ = main.join();

            // Drain every spawned OS thread before inspecting the run, so
            // no model thread survives into the next iteration.
            let handles = std::mem::take(&mut *lock_state_handles(&exec));
            for h in handles {
                let _ = h.join();
            }

            let panicked = lock_state(&exec).panicked;
            if panicked {
                eprintln!(
                    "loom: panic under schedule {:?} (iteration {})",
                    replay_of(&exec),
                    iterations
                );
                let payload = exec
                    .first_panic
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .unwrap_or_else(|| Box::new("loom: model panicked without a payload"));
                resume_unwind(payload);
            }

            // DFS backtrack: bump the deepest choice point that still has
            // an unexplored alternative; drop everything below it.
            let mut branches = {
                let st = lock_state(&exec);
                st.branches.clone()
            };
            while let Some(last) = branches.last() {
                if last.selected + 1 < last.options {
                    break;
                }
                branches.pop();
            }
            match branches.last_mut() {
                None => return iterations,
                Some(last) => {
                    last.selected += 1;
                    prefix = branches.iter().map(|b| b.selected).collect();
                }
            }
        }
    }
}

fn lock_state_handles(
    exec: &Execution,
) -> std::sync::MutexGuard<'_, Vec<std::thread::JoinHandle<()>>> {
    exec.os_handles
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn replay_of(exec: &Execution) -> Vec<usize> {
    lock_state(exec)
        .branches
        .iter()
        .map(|b| b.selected)
        .collect()
}

/// Explore `f` under the default [`Builder`]; returns schedules explored.
pub fn model<F>(f: F) -> usize
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

/// Model-aware replacements for `std::thread`.
pub mod thread {
    use super::*;

    /// Handle to a model thread; `join` is a blocking yield point.
    pub struct JoinHandle<T> {
        tid: usize,
        exec: StdArc<Execution>,
        result: StdArc<StdMutex<Option<std::thread::Result<T>>>>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and take its result.
        pub fn join(self) -> std::thread::Result<T> {
            let me = current_context()
                .map(|(_, id)| id)
                .expect("loom::thread::JoinHandle::join outside a model");
            loop {
                let finished = {
                    let st = lock_state(&self.exec);
                    st.statuses[self.tid] == Status::Finished
                };
                if finished {
                    break;
                }
                {
                    let mut st = lock_state(&self.exec);
                    // Re-check under the lock: the target may have finished
                    // since the unlocked peek above.
                    if st.statuses[self.tid] == Status::Finished {
                        break;
                    }
                    st.statuses[me] = Status::BlockedJoin(self.tid);
                }
                schedule(&self.exec, me, false);
            }
            self.result
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                .expect("loom thread result already taken")
        }
    }

    /// Spawn a model thread.  Panics when called outside [`crate::model`]
    /// (this shim has no free-threaded fallback — spawning real threads
    /// outside the scheduler would silently skip exploration).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (exec, me) = current_context().expect("loom::thread::spawn outside a model");
        let tid = {
            let mut st = lock_state(&exec);
            st.statuses.push(Status::Runnable);
            st.statuses.len() - 1
        };
        let result: StdArc<StdMutex<Option<std::thread::Result<T>>>> =
            StdArc::new(StdMutex::new(None));
        let slot = StdArc::clone(&result);
        let child_exec = StdArc::clone(&exec);
        let os = std::thread::spawn(move || {
            CONTEXT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&child_exec), tid)));
            wait_for_token(&child_exec, tid);
            let out = catch_unwind(AssertUnwindSafe(f));
            match out {
                Ok(value) => {
                    *slot
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Ok(value));
                    finish_thread(&child_exec, tid);
                }
                // Teardown marker: the real panic is in `first_panic` and
                // the model is already winding down — just exit quietly.
                Err(payload) if payload.is::<Aborted>() => {}
                Err(payload) => mark_panicked(&child_exec, payload),
            }
        });
        lock_state_handles(&exec).push(os);
        // Yield so the DFS can run the child before the parent continues.
        schedule(&exec, me, true);
        JoinHandle { tid, exec, result }
    }

    /// A pure yield point.
    pub fn yield_now() {
        super::yield_point();
    }
}

// ---------------------------------------------------------------------------
// sync
// ---------------------------------------------------------------------------

/// Model-aware replacements for `std::sync`.
pub mod sync {
    use super::*;

    pub use std::sync::Arc;

    /// Model-aware atomics.  Every operation is a yield point executed
    /// with sequentially consistent semantics; the `Ordering` argument is
    /// accepted for source compatibility and ignored (see the crate docs).
    pub mod atomic {
        use super::super::yield_point;
        pub use std::sync::atomic::Ordering;

        macro_rules! model_atomic {
            ($name:ident, $std:ty, $int:ty) => {
                /// Model-aware atomic: each operation is a scheduler yield
                /// point followed by the real (SeqCst) std operation.
                #[derive(Debug, Default)]
                pub struct $name(pub(crate) $std);

                impl $name {
                    /// Create a new atomic with `value`.
                    pub const fn new(value: $int) -> Self {
                        Self(<$std>::new(value))
                    }

                    /// Model-aware load.
                    pub fn load(&self, _order: Ordering) -> $int {
                        yield_point();
                        self.0.load(Ordering::SeqCst)
                    }

                    /// Model-aware store.
                    pub fn store(&self, value: $int, _order: Ordering) {
                        yield_point();
                        self.0.store(value, Ordering::SeqCst)
                    }

                    /// Model-aware fetch_add (wrapping, like std).
                    pub fn fetch_add(&self, value: $int, _order: Ordering) -> $int {
                        yield_point();
                        self.0.fetch_add(value, Ordering::SeqCst)
                    }

                    /// Model-aware fetch_sub (wrapping, like std).
                    pub fn fetch_sub(&self, value: $int, _order: Ordering) -> $int {
                        yield_point();
                        self.0.fetch_sub(value, Ordering::SeqCst)
                    }

                    /// Model-aware compare_exchange.
                    pub fn compare_exchange(
                        &self,
                        current: $int,
                        new: $int,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$int, $int> {
                        yield_point();
                        self.0
                            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    }

                    /// Model-aware compare_exchange_weak.  Never fails
                    /// spuriously (the code under test must already handle
                    /// both outcomes; genuine CAS losses are explored via
                    /// interleaving).
                    pub fn compare_exchange_weak(
                        &self,
                        current: $int,
                        new: $int,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$int, $int> {
                        self.compare_exchange(current, new, success, failure)
                    }

                    /// Read the value without a yield point (single-threaded
                    /// contexts: after joins, or via `&mut`).
                    pub fn into_inner(self) -> $int {
                        self.0.into_inner()
                    }
                }
            };
        }

        model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        model_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
        model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        /// Model-aware `AtomicBool` (the subset of ops this workspace
        /// uses).
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Create a new atomic bool.
            pub const fn new(value: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(value))
            }

            /// Model-aware load.
            pub fn load(&self, _order: Ordering) -> bool {
                yield_point();
                self.0.load(Ordering::SeqCst)
            }

            /// Model-aware store.
            pub fn store(&self, value: bool, _order: Ordering) {
                yield_point();
                self.0.store(value, Ordering::SeqCst)
            }

            /// Model-aware compare_exchange.
            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<bool, bool> {
                yield_point();
                self.0
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }
        }
    }

    /// Model-aware mutex: contended locks park the thread in the scheduler
    /// (never on the OS) so every handoff order is explored.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: StdMutex<T>,
    }

    /// Guard returned by [`Mutex::lock`]; dropping it unlocks and wakes
    /// scheduler-parked waiters.
    pub struct MutexGuard<'a, T> {
        // Option so drop can release the std guard before waking waiters.
        std_guard: Option<std::sync::MutexGuard<'a, T>>,
        token: usize,
        ctx: Option<(StdArc<Execution>, usize)>,
    }

    impl<T> Mutex<T> {
        /// Create a new mutex.
        pub fn new(value: T) -> Self {
            Mutex {
                inner: StdMutex::new(value),
            }
        }

        /// Acquire the lock.  Inside a model this is a yield point, and a
        /// contended acquire blocks in the scheduler; outside a model it
        /// is a plain (poison-recovering) std lock.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let token = self as *const _ as usize;
            match current_context() {
                None => MutexGuard {
                    std_guard: Some(
                        self.inner
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner),
                    ),
                    token,
                    ctx: None,
                },
                Some((exec, me)) => loop {
                    schedule(&exec, me, true);
                    // Execution is token-serialised, so try_lock only fails
                    // when a preempted thread genuinely holds the lock.
                    match self.inner.try_lock() {
                        Ok(guard) => {
                            return MutexGuard {
                                std_guard: Some(guard),
                                token,
                                ctx: Some((exec, me)),
                            }
                        }
                        Err(std::sync::TryLockError::Poisoned(p)) => {
                            return MutexGuard {
                                std_guard: Some(p.into_inner()),
                                token,
                                ctx: Some((exec, me)),
                            }
                        }
                        Err(std::sync::TryLockError::WouldBlock) => {
                            {
                                let mut st = lock_state(&exec);
                                st.statuses[me] = Status::BlockedMutex(token);
                            }
                            schedule(&exec, me, false);
                        }
                    }
                },
            }
        }

        /// Consume the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.std_guard.as_ref().expect("guard taken")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.std_guard.as_mut().expect("guard taken")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the std lock first, then wake scheduler-parked
            // waiters so their next try_lock can succeed.
            self.std_guard = None;
            if let Some((exec, _me)) = &self.ctx {
                let mut st = lock_state(exec);
                for t in 0..st.statuses.len() {
                    if st.statuses[t] == Status::BlockedMutex(self.token) {
                        st.statuses[t] = Status::Runnable;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Mutex};
    use std::collections::BTreeSet;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn explores_more_than_one_schedule() {
        let iters = super::model(|| {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = Arc::clone(&a);
            let t = super::thread::spawn(move || a2.store(1, Ordering::Relaxed));
            a.store(2, Ordering::Relaxed);
            t.join().unwrap();
        });
        assert!(iters >= 2, "only {iters} schedules explored");
    }

    #[test]
    fn finds_the_lost_update_in_a_racy_increment() {
        // load-then-store increment from two threads: some interleaving
        // must lose an update (final 1), some must not (final 2).  This is
        // the canary proving the checker actually explores interleavings.
        let outcomes = Arc::new(StdMutex::new(BTreeSet::new()));
        let sink = Arc::clone(&outcomes);
        super::model(move || {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = super::thread::spawn(move || {
                let v = c2.load(Ordering::Relaxed);
                c2.store(v + 1, Ordering::Relaxed);
            });
            let v = c.load(Ordering::Relaxed);
            c.store(v + 1, Ordering::Relaxed);
            t.join().unwrap();
            sink.lock().unwrap().insert(c.load(Ordering::Relaxed));
        });
        let seen = outcomes.lock().unwrap();
        assert!(seen.contains(&1), "lost-update interleaving never explored");
        assert!(seen.contains(&2), "race-free interleaving never explored");
    }

    #[test]
    fn atomic_fetch_add_never_loses_updates() {
        super::model(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = super::thread::spawn(move || {
                c2.fetch_add(1, Ordering::Relaxed);
            });
            c.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::Relaxed), 2);
        });
    }

    #[test]
    fn mutex_serialises_critical_sections() {
        let outcomes = Arc::new(StdMutex::new(BTreeSet::new()));
        let sink = Arc::clone(&outcomes);
        super::model(move || {
            let m = Arc::new(Mutex::new(0u64));
            let m2 = Arc::clone(&m);
            let t = super::thread::spawn(move || {
                let mut g = m2.lock();
                let v = *g;
                // The guard is held across the "compute" step, so the
                // read-modify-write is indivisible under every schedule.
                *g = v + 1;
            });
            {
                let mut g = m.lock();
                let v = *g;
                *g = v + 1;
            }
            t.join().unwrap();
            sink.lock().unwrap().insert(*m.lock());
        });
        let seen = outcomes.lock().unwrap();
        assert_eq!(
            seen.iter().copied().collect::<Vec<_>>(),
            vec![2],
            "mutex-protected increments must never lose an update"
        );
    }

    #[test]
    fn three_threads_interleave() {
        let outcomes = Arc::new(StdMutex::new(BTreeSet::new()));
        let sink = Arc::clone(&outcomes);
        super::model(move || {
            let c = Arc::new(AtomicU64::new(0));
            let mk = |mult: u64| {
                let c = Arc::clone(&c);
                super::thread::spawn(move || {
                    let v = c.load(Ordering::Relaxed);
                    c.store(v * 10 + mult, Ordering::Relaxed);
                })
            };
            let t1 = mk(1);
            let t2 = mk(2);
            t1.join().unwrap();
            t2.join().unwrap();
            sink.lock().unwrap().insert(c.load(Ordering::Relaxed));
        });
        let seen = outcomes.lock().unwrap();
        // Sequential orders give 12 and 21; racy overlaps give 1 or 2.
        for expect in [12, 21, 1, 2] {
            assert!(seen.contains(&expect), "outcome {expect} missing: {seen:?}");
        }
    }

    #[test]
    fn deterministic_schedule_count() {
        let count = || {
            super::Builder::default().check(|| {
                let c = Arc::new(AtomicU64::new(0));
                let c2 = Arc::clone(&c);
                let t = super::thread::spawn(move || {
                    c2.fetch_add(3, Ordering::Relaxed);
                });
                c.fetch_add(5, Ordering::Relaxed);
                t.join().unwrap();
                assert_eq!(c.load(Ordering::Relaxed), 8);
            })
        };
        assert_eq!(count(), count(), "exploration must be deterministic");
    }

    #[test]
    fn panics_propagate_with_all_threads_reaped() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let c = Arc::new(AtomicU64::new(0));
                let c2 = Arc::clone(&c);
                let t = super::thread::spawn(move || {
                    let v = c2.load(Ordering::Relaxed);
                    c2.store(v + 1, Ordering::Relaxed);
                });
                let v = c.load(Ordering::Relaxed);
                c.store(v + 1, Ordering::Relaxed);
                t.join().unwrap();
                // Fails on the lost-update schedule.
                assert_eq!(c.load(Ordering::Relaxed), 2);
            });
        });
        assert!(result.is_err(), "the lost-update schedule must be found");
    }

    #[test]
    fn atomics_work_outside_models() {
        let c = AtomicU64::new(7);
        c.fetch_add(1, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 8);
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }
}
